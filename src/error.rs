//! The unified `marchgen` error taxonomy.
//!
//! Each workspace crate keeps its own precise error type
//! ([`ParseFaultError`], [`GenerateError`], [`ScheduleError`],
//! [`ParseMarchError`]); this module folds them into one [`Error`] enum
//! with `std::error::Error` sources, so service-layer callers handle a
//! single type and `?` works across the whole facade.

use marchgen_faults::ParseFaultError;
use marchgen_generator::{GenerateError, ScheduleError};
use marchgen_march::ParseMarchError;
use std::fmt;

/// Any error the `marchgen` facade can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A fault list failed to parse.
    Parse(ParseFaultError),
    /// A March test string failed to parse.
    ParseMarch(ParseMarchError),
    /// The generation engine failed outright.
    Generate(GenerateError),
    /// A Test Pattern tour could not be scheduled into a March test.
    Schedule(ScheduleError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(_) => f.write_str("invalid fault list"),
            Error::ParseMarch(_) => f.write_str("invalid march test"),
            Error::Generate(_) => f.write_str("generation failed"),
            Error::Schedule(_) => f.write_str("tour scheduling failed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::ParseMarch(e) => Some(e),
            Error::Generate(e) => Some(e),
            Error::Schedule(e) => Some(e),
        }
    }
}

impl From<ParseFaultError> for Error {
    fn from(e: ParseFaultError) -> Error {
        Error::Parse(e)
    }
}

impl From<ParseMarchError> for Error {
    fn from(e: ParseMarchError) -> Error {
        Error::ParseMarch(e)
    }
}

impl From<GenerateError> for Error {
    fn from(e: GenerateError) -> Error {
        Error::Generate(e)
    }
}

impl From<ScheduleError> for Error {
    fn from(e: ScheduleError) -> Error {
        Error::Schedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn sources_chain() {
        let parse_err = marchgen_faults::parse_fault_list("NOPE").unwrap_err();
        let err: Error = parse_err.clone().into();
        assert_eq!(err, Error::Parse(parse_err.clone()));
        let source = err.source().expect("has source");
        assert_eq!(source.to_string(), parse_err.to_string());
    }

    #[test]
    fn question_mark_composes_across_crates() {
        fn flow() -> Result<usize, Error> {
            let models = marchgen_faults::parse_fault_list("SAF")?;
            let outcome =
                marchgen_generator::generate(&marchgen_generator::GenerateRequest::new(models))?;
            Ok(outcome.complexity())
        }
        assert_eq!(flow().unwrap(), 4);
    }

    #[test]
    fn generate_errors_wrap() {
        let err = flow_err().unwrap_err();
        assert!(matches!(
            err,
            Error::Generate(GenerateError::EmptyFaultList)
        ));
        fn flow_err() -> Result<(), Error> {
            marchgen_generator::generate(&marchgen_generator::GenerateRequest::default())?;
            Ok(())
        }
    }
}
