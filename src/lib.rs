//! # marchgen
//!
//! Automatic generation of **optimal March tests** for random access
//! memories — a full Rust reproduction of
//!
//! > A. Benso, S. Di Carlo, G. Di Natale, P. Prinetto, *"An Optimal
//! > Algorithm for the Automatic Generation of March Tests"*, DATE 2002,
//! > pp. 938–943 (DOI 10.1109/DATE.2002.998412).
//!
//! Give it a memory fault list; it returns a minimal, non-redundant March
//! test that is **proven** against a behavioural fault simulator:
//!
//! ```
//! use marchgen::Generator;
//!
//! let outcome = Generator::from_fault_list("SAF, TF, ADF, CFin, CFid")?
//!     .run()
//!     .expect("catalog fault lists always generate");
//! assert_eq!(outcome.test.complexity(), 10); // a March C−-class test
//! assert!(outcome.verified);
//! assert_eq!(outcome.non_redundant, Some(true));
//! # Ok::<(), marchgen::faults::ParseFaultError>(())
//! ```
//!
//! # API layering
//!
//! The public surface is organized in three layers; each is built on the
//! one below and all three are supported entry points:
//!
//! 1. **Typed request/outcome core.** [`GenerateRequest`] captures every
//!    engine knob as plain data; [`generate`] maps it to a
//!    [`GenerateOutcome`] carrying the test, the tour, the verification
//!    report and structured per-phase [`Diagnostics`]. Both types are
//!    JSON-serializable behind the default-on `serde` feature (see the
//!    [`json`] kit), and every failure folds into the unified
//!    [`Error`] taxonomy. Extension points are trait-based: the ATSP
//!    solver is an [`atsp::AtspSolver`] selected per request via
//!    [`SolverChoice`] against a [`SolverRegistry`], and verification
//!    backends implement [`sim::Verifier`].
//! 2. **Batch service layer.** [`service::Batch`] executes a vector of
//!    requests across worker threads with progress events — the
//!    in-process core a network service wraps. [`cache::OutcomeCache`]
//!    memoizes outcomes by the content hash of the canonical request
//!    ([`GenerateRequest::normalize`]) with single-flight coalescing
//!    and an optional persistent store ([`service::Batch::run_cached`]
//!    threads the two together); the [`daemon`] crate and the
//!    `marchgend` binary put an HTTP/1.1 front-end on top.
//! 3. **Builder facade.** [`Generator`] is a thin compatibility shim
//!    over layer 1 for ergonomic one-off runs; the `marchgen` CLI sits
//!    on layers 1–2 and exposes `--json` for machine consumers.
//!
//! # Architecture
//!
//! The facade re-exports the workspace crates:
//!
//! | Module | Paper artifact | Contents |
//! |--------|----------------|----------|
//! | [`model`] | §3, Figures 1–2 | two-cell Mealy memory model `M0`/`Mᵢ` |
//! | [`faults`] | §3, §5, Figure 3 | fault taxonomy, BFEs, Test Patterns, equivalence classes |
//! | [`tpg`] | §4, Figure 4, f.4.1/f.4.4 | Test Pattern Graph, path-ATSP reduction |
//! | [`atsp`] | §4 \[12\] | Held–Karp, Hungarian AP, branch-and-bound, heuristics, solver registry |
//! | [`march`] | §1 \[1\] | March test algebra, notation, classical test library |
//! | [`generator`] | §4.1–4.3 | request/outcome core, GTS, scheduler, pipeline, baseline |
//! | [`sim`] | §6 | fault simulator, coverage matrix, set covering, verifier trait |
//! | [`rtl`] | §1 (March BIST) | SystemVerilog backend: patgen FSM, BIST wrapper, testbench, SV lint |
//! | [`cache`] | — | content-addressed outcome cache (keys, LRU, disk, single-flight) |
//! | [`daemon`] | — | dependency-free HTTP/1.1 service engine behind `marchgend` |
//!
//! The most common entry points are lifted to the crate root:
//! [`generate`], [`GenerateRequest`], [`GenerateOutcome`],
//! [`Generator`], [`MarchTest`], [`FaultModel`], [`known`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use marchgen_atsp as atsp;
pub use marchgen_faults as faults;

/// The content-addressed outcome cache behind `--cache-dir` and the
/// daemon (`serde` feature: entries persist as schema-v1 documents).
#[cfg(feature = "serde")]
pub use marchgen_cache as cache;

/// The dependency-free HTTP/1.1 service engine behind `marchgend`
/// (`serde` feature: the wire format is schema-v1 JSON).
#[cfg(feature = "serde")]
pub use marchgen_daemon as daemon;
pub use marchgen_generator as generator;
pub use marchgen_march as march;
pub use marchgen_model as model;

/// The observability kit behind `marchgend` (`serde` feature): the
/// lock-sharded metrics registry rendered at `GET /metrics` and the
/// span tracer behind `?trace=1` / `X-Trace: 1` request tracing.
#[cfg(feature = "serde")]
pub use marchgen_obs as obs;

/// The SystemVerilog BIST backend: compiles a verified March test into a
/// synthesizable pattern generator, BIST wrapper and self-checking
/// testbench (`serde` feature: `RtlOptions` is JSON-codable for the
/// daemon's `/v1/rtl` endpoint and the CLI `--json` envelope).
pub use marchgen_rtl as rtl;
pub use marchgen_sim as sim;
pub use marchgen_tpg as tpg;

/// The JSON document kit behind the `serde` feature (re-exported so
/// downstream code can build and inspect serialized requests without a
/// separate dependency).
#[cfg(feature = "serde")]
pub use marchgen_json as json;

mod error;
pub mod resume;
pub mod service;

pub use error::Error;
pub use marchgen_atsp::{AtspSolver, LocalSearchSolver, SolveStats, SolverChoice, SolverRegistry};
pub use marchgen_faults::{parse_fault_list, FaultModel};
pub use marchgen_generator::{
    generate, generate_with, generate_with_registry, Diagnostics, GenerateOutcome, GenerateRequest,
    Generator, Outcome, VerifierChoice,
};
pub use marchgen_march::{known, Direction, MarchElement, MarchOp, MarchTest};
pub use marchgen_sim::{BitSimVerifier, SimVerifier, Verifier};

/// Convenience prelude for examples and downstream quick starts.
pub mod prelude {
    pub use crate::faults::{parse_fault_list, FaultModel, TestPattern};
    pub use crate::generator::{
        generate, Diagnostics, GenerateOutcome, GenerateRequest, Generator, Outcome, VerifierChoice,
    };
    pub use crate::march::{known, Direction, MarchElement, MarchOp, MarchTest};
    pub use crate::service::Batch;
    pub use crate::sim::coverage::{coverage_report, covers_all};
    pub use crate::Error;
}
