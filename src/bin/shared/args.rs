//! Argument-extraction helpers shared by the `marchgen` and `marchgend`
//! binaries (included via `#[path]`; this directory is not a binary
//! target). All helpers remove what they match, so whatever remains in
//! `args` after extraction can be validated as positional input.

/// Removes `flag` from `args` if present; returns whether it was there.
pub fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Removes `--name VALUE` from `args`; returns the parsed integer.
pub fn take_option(args: &mut Vec<String>, name: &str) -> Result<Option<usize>, String> {
    match take_str_option(args, name)? {
        None => Ok(None),
        Some(text) => text
            .parse::<usize>()
            .map(Some)
            .map_err(|_| format!("{name} needs an integer, got {text:?}")),
    }
}

/// Removes `--name VALUE` from `args`; returns the raw string value.
pub fn take_str_option(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{name} needs a value"));
    }
    let value = args[pos + 1].clone();
    args.drain(pos..=pos + 1);
    Ok(Some(value))
}
