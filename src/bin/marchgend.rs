//! `marchgend` — the long-running March-test generation service.
//!
//! A dependency-free HTTP/1.1 daemon (std `TcpListener` + worker pool,
//! no async runtime) wiring the three service bricks together: the
//! [`marchgen_daemon`] connection engine in front, the
//! [`marchgen_cache`] content-addressed outcome cache in the middle
//! (single-flight: concurrent identical requests fund one computation),
//! and [`marchgen::service::Batch`] underneath. The wire format is
//! exactly JSON schema v1 — the same documents `marchgen --json`
//! reads and writes.
//!
//! ```text
//! marchgend --addr 127.0.0.1:8378 --cache-dir .marchgen-cache
//!
//! POST /v1/generate   one GenerateRequest  → one GenerateOutcome
//! POST /v1/batch      [GenerateRequest...] → [{"outcome"|"error"}...]
//! GET|POST /v1/stream [GenerateRequest...] → chunked JSON-lines progress frames
//!     ?resume=ID&from=N                    → replay + re-attach to a running batch
//! POST /v1/rtl        march or GenerateRequest → SystemVerilog BIST bundle
//! GET  /v1/health     liveness + version
//! GET  /v1/stats      server / cache / stream / per-phase timing counters (JSON)
//! GET  /metrics       the same counters as Prometheus text exposition
//! GET|POST /v1/failpoints  fault-injection admin (no-op without the feature)
//! POST /v1/shutdown   graceful drain and exit
//! ```
//!
//! Observability ([`marchgen::obs`], docs/OBSERVABILITY.md): every
//! request feeds per-endpoint counters and latency histograms plus
//! per-phase duration histograms in one lock-sharded registry.
//! `GET /metrics` renders it in Prometheus format; `/v1/stats` is the
//! JSON view over the *same* atomics (mirrored at snapshot time), so
//! the two can never drift. A request carrying `?trace=1` or
//! `X-Trace: 1` additionally gets a span tree in its response's
//! `diagnostics.trace` block.
//!
//! Every `/v1/stream` batch is backed by a replay ring
//! ([`marchgen::resume`]): the first frame announces a `batch_id`,
//! every frame carries a monotone `seq`, and a client that loses its
//! connection mid-batch reconnects with `?resume=<batch_id>&from=<seq>`
//! to get the missed frames replayed byte-identically and then follow
//! live — the computation never restarts.

use marchgen::cache::{canonical_key_text, key_for_text, OutcomeCache, ShardedLru};
use marchgen::daemon::{
    FromJson, Json, RateLimitConfig, Reply, Request, Response, Server, ServerConfig, ServerStats,
    StreamResponse, ToJson,
};
use marchgen::faults::FAULT_CLASS_LABELS;
use marchgen::obs::{Histogram, Registry, SpanNode, Tracer};
use marchgen::resume::{CompleteOnDrop, FollowError, StreamRegistry};
use marchgen::rtl::RtlOptions;
use marchgen::service::Batch;
use marchgen::{known, Diagnostics, GenerateOutcome, GenerateRequest, MarchTest};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

#[path = "shared/args.rs"]
#[allow(dead_code)]
mod args;
use args::{take_option, take_str_option};

const USAGE: &str = "\
marchgend — HTTP service daemon for March test generation (JSON schema v1)

usage:
  marchgend [--addr HOST:PORT] [--cache-dir DIR] [--cache-capacity N]
            [--workers N] [--queue-capacity N] [--max-body-bytes N]
            [--rate-limit PER_SECOND] [--rate-burst N]
            [--slow-request-ms N]

  --addr            listen address (default 127.0.0.1:8378; port 0 picks
                    a free port — the bound address is printed on stdout)
  --cache-dir       persist outcomes as one JSON file per request hash;
                    shared across restarts and with `marchgen --cache-dir`
  --cache-capacity  in-memory LRU size, outcomes (default 4096)
  --workers         connection worker threads (default: one per CPU)
  --queue-capacity  bounded accept queue; beyond it clients get 429
                    (default 256)
  --max-body-bytes  largest accepted request body; beyond it 413
                    (default 1048576)
  --rate-limit      per-peer connection budget, connections/second
                    (fractions accepted; 0 = unlimited, the default).
                    Over-budget peers get 429 + Retry-After before
                    reaching a worker.
  --rate-burst      per-peer burst bucket size (default: 2x rate-limit,
                    at least 1); only meaningful with --rate-limit
  --slow-request-ms warn on stderr when serving a request (handler +
                    response write) takes at least this long
                    (default 1000; 0 disables)

endpoints: POST /v1/generate, POST /v1/batch, GET|POST /v1/stream
           (?resume=ID&from=N re-attaches to a running batch),
           POST /v1/rtl, GET /v1/health, GET /v1/stats, GET /metrics,
           GET|POST /v1/failpoints, POST /v1/shutdown
";

/// Capacity of the `/v1/rtl` render cache, in entries. Deliberately
/// smaller than the outcome cache: one RTL bundle is a multi-kilobyte
/// source file, and re-rendering from a cached outcome is cheap — the
/// cache only has to absorb repeated fetches of the same bundle.
const RTL_CACHE_CAPACITY: usize = 256;

/// One rendered `/v1/rtl` bundle. The canonical key text is stored next
/// to the code so a 128-bit key collision degrades to a re-render, never
/// to serving another request's bytes — the same safety contract as
/// [`OutcomeCache`].
struct RtlEntry {
    canonical: String,
    test: String,
    complexity: usize,
    name: String,
    code: String,
}

impl RtlEntry {
    /// The response document — the `marchgen codegen --json` envelope
    /// plus the `cache_hit` bit.
    fn to_json(&self, cache_hit: bool) -> Json {
        Json::object([
            ("schema", Json::Int(1)),
            ("test", Json::Str(self.test.clone())),
            ("complexity", Json::from(self.complexity)),
            ("lang", Json::from("sv")),
            ("name", Json::from(self.name.as_str())),
            ("code", Json::from(self.code.as_str())),
            ("cache_hit", Json::Bool(cache_hit)),
        ])
    }
}

/// Cumulative per-phase timing over every *computed* (non-cache-hit)
/// outcome this daemon produced, plus the wall time spent producing
/// them. Cache hits by design contribute nothing here — that is the
/// point of the cache — so `computed × phase` averages stay honest.
#[derive(Default)]
struct PhaseAggregates {
    computed: AtomicU64,
    expand_micros: AtomicU64,
    search_micros: AtomicU64,
    verify_micros: AtomicU64,
    wall_micros: AtomicU64,
}

impl PhaseAggregates {
    fn record(&self, diagnostics: &Diagnostics, wall_micros: u64) {
        self.computed.fetch_add(1, Ordering::Relaxed);
        self.expand_micros
            .fetch_add(diagnostics.expand_micros, Ordering::Relaxed);
        self.search_micros
            .fetch_add(diagnostics.search_micros, Ordering::Relaxed);
        self.verify_micros
            .fetch_add(diagnostics.verify_micros, Ordering::Relaxed);
        self.wall_micros.fetch_add(wall_micros, Ordering::Relaxed);
    }

    /// Folds one batch/stream call's results into the aggregates:
    /// per-phase micros for every *computed* (non-cache-hit) outcome,
    /// plus the call's shared wall time exactly once — and only when
    /// something was actually computed, so all-hit calls stay invisible
    /// (phases are per outcome; wall time is per call).
    fn record_batch<E>(&self, results: &[Result<GenerateOutcome, E>], wall_micros: u64) {
        let mut computed = false;
        for outcome in results.iter().flatten() {
            if !outcome.diagnostics.cache_hit {
                computed = true;
                self.record(&outcome.diagnostics, 0);
            }
        }
        if computed {
            self.wall_micros.fetch_add(wall_micros, Ordering::Relaxed);
        }
    }

    fn to_json(&self) -> Json {
        Json::object([
            (
                "computed",
                Json::from(self.computed.load(Ordering::Relaxed)),
            ),
            (
                "expand_micros",
                Json::from(self.expand_micros.load(Ordering::Relaxed)),
            ),
            (
                "search_micros",
                Json::from(self.search_micros.load(Ordering::Relaxed)),
            ),
            (
                "verify_micros",
                Json::from(self.verify_micros.load(Ordering::Relaxed)),
            ),
            (
                "wall_micros",
                Json::from(self.wall_micros.load(Ordering::Relaxed)),
            ),
        ])
    }
}

/// Bucket bounds for every duration histogram, µs: 100µs to 30s.
/// Generation runs span sub-millisecond cache hits to multi-second
/// pair-fault searches, so the grid is logarithmic-ish.
const DURATION_BUCKETS_MICROS: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000,
];

/// Family name + help for per-phase duration histograms — shared
/// between the tracer's observer (live spans: `request`, `decode`,
/// `generate`, `render`) and [`Metrics::record_outcome`] (generator
/// phases measured by the pipeline itself: `expand`, `search`,
/// `solve`, `schedule`, `verify`).
const PHASE_FAMILY: &str = "marchgend_phase_duration_microseconds";
const PHASE_HELP: &str = "Duration of one request phase, microseconds, labeled by phase \
                          (request/decode/generate/render are daemon wall time; \
                          expand/search/solve/schedule/verify come from generator diagnostics \
                          of computed, non-cache-hit outcomes).";

/// The daemon's metric surface: one shared lock-sharded [`Registry`]
/// holding both *owned* instruments (updated inline on the request
/// path) and *mirror* instruments (synced from the authoritative
/// atomics of other subsystems by [`App::sync_metrics`] at snapshot
/// time, so `/v1/stats` and `GET /metrics` can never disagree).
struct Metrics {
    registry: Arc<Registry>,
}

impl Metrics {
    fn new() -> Metrics {
        let registry = Arc::new(Registry::new());
        registry
            .gauge(
                "marchgend_build_info",
                "Constant 1, labeled with the daemon version.",
                &[("version", env!("CARGO_PKG_VERSION"))],
            )
            .set(1);
        Metrics { registry }
    }

    fn phase(&self, phase: &str) -> Arc<Histogram> {
        self.registry.histogram(
            PHASE_FAMILY,
            PHASE_HELP,
            &[("phase", phase)],
            DURATION_BUCKETS_MICROS,
        )
    }

    /// One routed request: endpoint/status-class counter plus the
    /// handler-latency histogram. For streaming endpoints the latency
    /// covers handler setup, not body delivery (the engine's
    /// slow-request warning covers the write).
    fn observe_http(&self, endpoint: &'static str, status: u16, micros: u64) {
        self.registry
            .counter(
                "marchgend_http_requests_total",
                "Requests dispatched to the application router, by endpoint and status class.",
                &[("endpoint", endpoint), ("class", status_class(status))],
            )
            .inc();
        self.registry
            .histogram(
                "marchgend_http_request_duration_microseconds",
                "Handler wall time per endpoint, microseconds (streaming endpoints count \
                 handler setup, not body delivery).",
                &[("endpoint", endpoint)],
                DURATION_BUCKETS_MICROS,
            )
            .observe(micros);
    }

    /// Phase histograms + solver counters for one *computed*
    /// (non-cache-hit) outcome. Cache hits contribute nothing — same
    /// contract as [`PhaseAggregates`].
    fn record_outcome(&self, diagnostics: &Diagnostics) {
        let (solve, schedule) = solve_schedule_split(diagnostics);
        self.phase("expand").observe(diagnostics.expand_micros);
        self.phase("search").observe(diagnostics.search_micros);
        self.phase("solve").observe(solve);
        self.phase("schedule").observe(schedule);
        // The verify phase is fed per shard when the backend sharded it
        // (one observation per verification shard, so the histogram
        // shows the distributed work units), falling back to the single
        // wall-clock observation for unsharded backends and documents
        // predating the sharded verifier.
        if diagnostics.verify_shard_micros.is_empty() {
            self.phase("verify").observe(diagnostics.verify_micros);
        } else {
            let verify = self.phase("verify");
            for &micros in &diagnostics.verify_shard_micros {
                verify.observe(micros);
            }
        }
        let verifier = if diagnostics.verifier.is_empty() {
            "none"
        } else {
            diagnostics.verifier.as_str()
        };
        self.registry
            .counter(
                "marchgend_verifier_outcomes_total",
                "Computed outcomes by resolved verification backend (\"none\" when \
                 verification was disabled).",
                &[("backend", verifier)],
            )
            .inc();
        let backend = if diagnostics.solver.is_empty() {
            "unknown"
        } else {
            diagnostics.solver.as_str()
        };
        self.registry
            .counter(
                "marchgend_solver_outcomes_total",
                "Computed outcomes by resolved ATSP solver backend.",
                &[("backend", backend)],
            )
            .inc();
        self.registry
            .counter(
                "marchgend_solver_iterations_total",
                "Improving local-search moves across computed outcomes, by backend.",
                &[("backend", backend)],
            )
            .add(diagnostics.solver_iterations);
        self.registry
            .counter(
                "marchgend_solver_restarts_total",
                "Local-search perturbation restarts across computed outcomes, by backend.",
                &[("backend", backend)],
            )
            .add(diagnostics.solver_restarts);
    }

    /// A per-request [`Tracer`]: its observer feeds the phase
    /// histograms on every live span drop; the span *tree* is
    /// collected only when the client asked for one.
    fn tracer(&self, collect_tree: bool) -> Tracer {
        let registry = Arc::clone(&self.registry);
        Tracer::new(collect_tree).with_observer(move |name, micros| {
            registry
                .histogram(
                    PHASE_FAMILY,
                    PHASE_HELP,
                    &[("phase", name)],
                    DURATION_BUCKETS_MICROS,
                )
                .observe(micros);
        })
    }
}

/// Splits `search_micros` into its solver and scheduling shares.
/// `shard_micros` are per-TP-set solve times that may overlap in wall
/// time (shards run in parallel), so the solve share is clamped to the
/// measured search wall time; the remainder is enumeration+scheduling.
fn solve_schedule_split(diagnostics: &Diagnostics) -> (u64, u64) {
    let solve = diagnostics
        .shard_micros
        .iter()
        .sum::<u64>()
        .min(diagnostics.search_micros);
    (solve, diagnostics.search_micros - solve)
}

/// Synthesizes the generator's own phase timings (already measured by
/// the pipeline and reported in [`Diagnostics`]) as children of the
/// currently open span, so a traced request shows where the computed
/// time went: `expand`, `search` (→ `solve` + `schedule`), `verify`.
/// These go through [`Tracer::record`], which bypasses the observer —
/// [`Metrics::record_outcome`] already feeds the histograms.
fn record_phases(tracer: &Tracer, diagnostics: &Diagnostics) {
    let (solve, schedule) = solve_schedule_split(diagnostics);
    tracer.record("expand", diagnostics.expand_micros, |_| {});
    tracer.record("search", diagnostics.search_micros, |t| {
        t.record("solve", solve, |_| {});
        t.record("schedule", schedule, |_| {});
    });
    tracer.record("verify", diagnostics.verify_micros, |_| {});
}

/// `2xx`/`4xx`-style label value for the status-class counter.
fn status_class(status: u16) -> &'static str {
    match status / 100 {
        1 => "1xx",
        2 => "2xx",
        3 => "3xx",
        4 => "4xx",
        5 => "5xx",
        _ => "other",
    }
}

/// Stable `endpoint` label values — a fixed vocabulary, so hostile
/// paths cannot mint unbounded label sets.
fn endpoint_label(route_path: &str) -> &'static str {
    match route_path {
        "/v1/generate" => "/v1/generate",
        "/v1/batch" => "/v1/batch",
        "/v1/stream" => "/v1/stream",
        "/v1/rtl" => "/v1/rtl",
        "/v1/health" => "/v1/health",
        "/v1/stats" => "/v1/stats",
        "/v1/failpoints" => "/v1/failpoints",
        "/v1/shutdown" => "/v1/shutdown",
        "/metrics" => "/metrics",
        _ => "other",
    }
}

/// `true` when the client asked for a span tree in the response
/// (`?trace=1` or `X-Trace: 1`).
fn trace_requested(request: &Request) -> bool {
    request.query_param("trace") == Some("1")
        || request.header("x-trace").map(str::trim) == Some("1")
}

/// Injects the assembled span tree into the outcome document's
/// `diagnostics` object as its `trace` key (top-level fallback only if
/// a future document shape drops `diagnostics`).
fn attach_trace(doc: &mut Json, root: &SpanNode) {
    let trace = span_json(root);
    if let Json::Object(pairs) = doc {
        if let Some((_, Json::Object(diagnostics))) =
            pairs.iter_mut().find(|(key, _)| key == "diagnostics")
        {
            diagnostics.push(("trace".to_owned(), trace));
        } else {
            pairs.push(("trace".to_owned(), trace));
        }
    }
}

/// `{"name": ..., "micros": ..., "children": [...]}` — leaves omit
/// `children` (docs/WIRE_FORMAT.md).
fn span_json(node: &SpanNode) -> Json {
    let mut pairs = vec![
        ("name".to_owned(), Json::from(node.name)),
        ("micros".to_owned(), Json::from(node.micros)),
    ];
    if !node.children.is_empty() {
        pairs.push((
            "children".to_owned(),
            Json::array(node.children.iter().map(span_json).collect::<Vec<_>>()),
        ));
    }
    Json::Object(pairs)
}

/// Help text of the per-`fault_class` request counter (shared by the
/// increment path and the fixed-vocabulary pre-registration).
const FAULT_CLASS_REQUESTS_HELP: &str =
    "Generation requests by fault class (one tick per distinct class in the request's \
     fault list; fixed label vocabulary).";

/// Help text of the per-`fault_class` verification-outcome counter.
const FAULT_CLASS_VERIFY_HELP: &str =
    "Served generation outcomes by fault class and verification outcome \
     (verified|unverified; fixed label vocabulary).";

/// The application half of the daemon: routing, codec glue, cache and
/// batch wiring. Shared by every connection worker.
struct App {
    cache: OutcomeCache,
    batch: Batch,
    // Resumable `/v1/stream` batches: batch_id → replay ring.
    streams: StreamRegistry,
    timing: PhaseAggregates,
    generate_requests: AtomicU64,
    batch_requests: AtomicU64,
    stream_requests: AtomicU64,
    rtl_requests: AtomicU64,
    // `/v1/rtl` render cache: canonical (march ⊕ normalized RTL knobs)
    // key text → emitted SystemVerilog. Separate from the outcome cache
    // because the value is rendered source, not a generation outcome.
    rtl_cache: ShardedLru<Arc<RtlEntry>>,
    rtl_hits: AtomicU64,
    rtl_misses: AtomicU64,
    // Set right after bind (the server owns counter allocation), read
    // by `/v1/stats`.
    server_stats: OnceLock<Arc<ServerStats>>,
    // The shared metrics registry behind `GET /metrics` and the
    // `/v1/stats` mirrors (docs/OBSERVABILITY.md).
    metrics: Metrics,
    // Process start, for `uptime_seconds`.
    started: Instant,
    // Monotone `/v1/stats` snapshot sequence: scrapers detect stale
    // snapshots (seq not advancing) and restarts (seq going backwards).
    stats_seq: AtomicU64,
}

impl App {
    /// Routes one request. Takes the owning [`Arc`] (not a plain
    /// `&self`) because the streaming endpoint's producer outlives this
    /// call: it runs on the connection worker after the response head
    /// is on the wire, so it must carry its own strong reference.
    fn handle(self: &Arc<App>, request: &Request) -> Reply {
        let endpoint = endpoint_label(request.route_path());
        let started = Instant::now();
        let reply = self.route(request);
        let status = match &reply {
            Reply::Full(response) => response.status,
            Reply::Stream(stream) => stream.status,
        };
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.metrics.observe_http(endpoint, status, micros);
        reply
    }

    fn route(self: &Arc<App>, request: &Request) -> Reply {
        // Routing matches on the path *without* its query string —
        // `/v1/stream?resume=...` still routes to the stream endpoint.
        match (request.method.as_str(), request.route_path()) {
            ("POST", "/v1/generate") => self.generate_endpoint(request).into(),
            ("POST", "/v1/batch") => self.batch_endpoint(&request.body).into(),
            ("POST", "/v1/rtl") => self.rtl_endpoint(&request.body).into(),
            // GET is accepted alongside POST so interactive clients
            // (curl without -d, browsers) can watch an empty-body
            // stream fail fast with a structured 400 instead of a
            // method error, and so resumption (which carries no body)
            // works from anything that can issue a plain GET.
            ("GET" | "POST", "/v1/stream") => self.stream_endpoint(request),
            ("GET" | "POST", "/v1/failpoints") => self.failpoints_endpoint(request).into(),
            ("GET", "/v1/health") => health_endpoint().into(),
            ("GET", "/v1/stats") => self.stats_endpoint().into(),
            ("GET", "/metrics") => self.metrics_endpoint().into(),
            ("POST", "/v1/shutdown") => {
                Response::json(&Json::object([("stopping", Json::Bool(true))]))
                    .with_shutdown()
                    .into()
            }
            (_, "/v1/generate" | "/v1/batch" | "/v1/rtl" | "/v1/shutdown") => Response::error(
                405,
                "method_not_allowed",
                format!("{} requires POST", request.route_path()),
            )
            .into(),
            (_, "/v1/health" | "/v1/stats" | "/metrics") => Response::error(
                405,
                "method_not_allowed",
                format!("{} requires GET", request.route_path()),
            )
            .into(),
            (_, "/v1/stream" | "/v1/failpoints") => Response::error(
                405,
                "method_not_allowed",
                format!("{} requires GET or POST", request.route_path()),
            )
            .into(),
            _ => Response::error(
                404,
                "not_found",
                format!("no endpoint {:?}; see /v1/health", request.path),
            )
            .into(),
        }
    }

    /// Decodes one request document; splits syntax (`400`) from schema
    /// (`422`) failures.
    fn decode_request(body: &[u8]) -> Result<GenerateRequest, Response> {
        let text = std::str::from_utf8(body)
            .map_err(|_| Response::error(400, "invalid_json", "body is not UTF-8"))?;
        let doc =
            Json::parse(text).map_err(|e| Response::error(400, "invalid_json", e.to_string()))?;
        GenerateRequest::from_json(&doc)
            .map_err(|e| Response::error(422, "invalid_request", e.message))
    }

    /// Runs one decoded request through the shared outcome cache — the
    /// compute core of `/v1/generate` and the generated-test path of
    /// `/v1/rtl`. Applies the daemon's anti-oversubscription rule and
    /// folds computed (non-cache-hit) outcomes into the timing
    /// aggregates; failures come back as a ready-to-send 422.
    fn run_generate(
        &self,
        mut request: GenerateRequest,
        tracer: &Tracer,
    ) -> Result<GenerateOutcome, Response> {
        // Same anti-oversubscription rule as `Batch::run_workers`: an
        // auto-threaded request would spawn one shard worker per CPU
        // inside a daemon that already runs one connection worker per
        // CPU. Pin it to a single shard worker whenever another request
        // is being served concurrently (the snapshot includes this
        // request, so in-flight ≥ 2 means real contention); a lone
        // request keeps the full machine. Never changes the outcome —
        // sharding is deterministic — or the cache key.
        let contended = self
            .server_stats
            .get()
            .map(|stats| stats.snapshot().in_flight >= 2)
            .unwrap_or(false);
        if contended && request.search_threads == 0 {
            request = request.with_search_threads(1);
        }
        self.count_fault_classes(&request);
        let started = Instant::now();
        let generate_span = tracer.span("generate");
        match self.cache.get_or_compute(&request, marchgen::generate) {
            Ok(outcome) => {
                self.count_verify_outcomes(&request, outcome.verified);
                if !outcome.diagnostics.cache_hit {
                    let wall = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    self.timing.record(&outcome.diagnostics, wall);
                    self.metrics.record_outcome(&outcome.diagnostics);
                    // Synthesize the pipeline's own phase timings under
                    // the still-open `generate` span. Cache hits get no
                    // phase children: their Diagnostics micros describe
                    // the *original* computation, not this request.
                    record_phases(tracer, &outcome.diagnostics);
                }
                drop(generate_span);
                Ok(outcome)
            }
            Err(error) => Err(Response::error(
                422,
                "generation_failed",
                error_chain(&error),
            )),
        }
    }

    fn generate_endpoint(&self, request: &Request) -> Response {
        self.generate_requests.fetch_add(1, Ordering::Relaxed);
        // Chaos site: a fault inside the handler itself, before any
        // decoding — exercises the engine's structured-error path.
        marchgen_failpoint::fail_point!("marchgend.generate", |msg: String| Response::error(
            500,
            "injected_fault",
            msg
        ));
        let tracer = self.metrics.tracer(trace_requested(request));
        let mut doc = {
            let _request_span = tracer.span("request");
            let decoded = {
                let _decode = tracer.span("decode");
                App::decode_request(&request.body)
            };
            let generate_request = match decoded {
                Ok(generate_request) => generate_request,
                Err(response) => return response,
            };
            match self.run_generate(generate_request, &tracer) {
                Ok(outcome) => {
                    let _render = tracer.span("render");
                    outcome.to_json()
                }
                Err(response) => return response,
            }
        };
        // The `request` span just closed; attach the assembled tree to
        // the outcome's diagnostics when the client asked for it.
        if let Some(root) = tracer.finish().into_iter().next() {
            attach_trace(&mut doc, &root);
        }
        Response::json(&doc)
    }

    /// `POST /v1/rtl`: compiles a March test into the synthesizable
    /// SystemVerilog BIST bundle (`marchgen::rtl::emit_sv` — pattern
    /// generator FSM, BIST wrapper, self-checking testbench). The body
    /// either names the test directly —
    /// `{"march": "March C-", "rtl": {...}}`, accepting a known-test
    /// name or March notation — or is a plain [`GenerateRequest`]
    /// document with an optional `"rtl"` sibling key, in which case the
    /// test is generated (through the shared outcome cache) and must
    /// verify before any RTL is emitted. Rendered bundles are cached by
    /// the canonical (march ⊕ normalized options) key, so repeated
    /// fetches of the same hardware are a string clone.
    fn rtl_endpoint(&self, body: &[u8]) -> Response {
        self.rtl_requests.fetch_add(1, Ordering::Relaxed);
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(_) => return Response::error(400, "invalid_json", "body is not UTF-8"),
        };
        let doc = match Json::parse(text) {
            Ok(doc) => doc,
            Err(e) => return Response::error(400, "invalid_json", e.to_string()),
        };
        let options = match doc.get("rtl") {
            None => RtlOptions::default(),
            Some(node) => match RtlOptions::from_json(node) {
                Ok(options) => options,
                Err(e) => {
                    return Response::error(
                        422,
                        "invalid_request",
                        format!("\"rtl\": {}", e.message),
                    )
                }
            },
        };
        let options = options.normalize();
        let fragment = options.canonical_fragment();

        // Two ways to name the hardware under test: a march given
        // directly (validated, not re-generated), or a fault list the
        // generator turns into one. The canonical key text mirrors the
        // split so the two namespaces can never collide.
        let (test, canonical) = if let Some(node) = doc.get("march") {
            let Some(march) = node.as_str() else {
                return Response::error(
                    422,
                    "invalid_request",
                    "\"march\" must be a string (a known test name or March notation)",
                );
            };
            let parsed = known::by_name(march)
                .map(Ok)
                .unwrap_or_else(|| march.parse::<MarchTest>());
            let test = match parsed {
                Ok(test) => test,
                Err(e) => {
                    return Response::error(422, "invalid_request", format!("\"march\": {e}"))
                }
            };
            if let Err(e) = test.check_consistency() {
                return Response::error(
                    422,
                    "invalid_request",
                    format!("inconsistent march test: {e}"),
                );
            }
            let canonical = format!("rtl-direct/v1;march={};{fragment}", test.to_ascii());
            (test, canonical)
        } else {
            let request = match GenerateRequest::from_json(&doc) {
                Ok(request) => request,
                Err(e) => return Response::error(422, "invalid_request", e.message),
            };
            let canonical = format!("{};{fragment}", canonical_key_text(&request));
            let outcome = match self.run_generate(request, &Tracer::disabled()) {
                Ok(outcome) => outcome,
                Err(response) => return response,
            };
            if !outcome.verified {
                return Response::error(
                    422,
                    "generation_failed",
                    "generated test failed verification; refusing to emit unproven RTL",
                );
            }
            (outcome.test, canonical)
        };

        let key = key_for_text(&canonical);
        if let Some(entry) = self.rtl_cache.get(key) {
            if entry.canonical == canonical {
                self.rtl_hits.fetch_add(1, Ordering::Relaxed);
                return Response::json(&entry.to_json(true));
            }
        }
        self.rtl_misses.fetch_add(1, Ordering::Relaxed);
        let code = match marchgen::rtl::emit_sv(&test, &options) {
            Ok(code) => code,
            Err(e) => return Response::error(422, "invalid_request", e.to_string()),
        };
        let entry = Arc::new(RtlEntry {
            canonical,
            test: test.to_string(),
            complexity: test.complexity(),
            name: options.name.clone(),
            code,
        });
        self.rtl_cache.insert(key, Arc::clone(&entry));
        Response::json(&entry.to_json(false))
    }

    /// Decodes a batch document — a JSON array of request documents, or
    /// `{"requests": [...]}` — shared by `/v1/batch` and `/v1/stream`.
    /// Decode errors reject the whole document (the request itself is
    /// malformed); generation failures later stay per-item.
    fn decode_batch(body: &[u8]) -> Result<Vec<GenerateRequest>, Response> {
        let text = std::str::from_utf8(body)
            .map_err(|_| Response::error(400, "invalid_json", "body is not UTF-8"))?;
        let doc =
            Json::parse(text).map_err(|e| Response::error(400, "invalid_json", e.to_string()))?;
        let items = doc
            .as_array()
            .or_else(|| doc.get("requests").and_then(Json::as_array))
            .ok_or_else(|| {
                Response::error(
                    422,
                    "invalid_request",
                    "batch body must be an array of requests (or {\"requests\": [...]})",
                )
            })?;
        let mut requests = Vec::with_capacity(items.len());
        for (index, item) in items.iter().enumerate() {
            match GenerateRequest::from_json(item) {
                Ok(request) => requests.push(request),
                Err(e) => {
                    return Err(Response::error(
                        422,
                        "invalid_request",
                        format!("request #{index}: {}", e.message),
                    ))
                }
            }
        }
        Ok(requests)
    }

    /// `POST /v1/batch`: a JSON array of request documents (or
    /// `{"requests": [...]}`), answered as an array of
    /// `{"outcome": ...}` / `{"error": ...}` entries in input order —
    /// one bad generation never poisons its neighbours (decode errors
    /// do reject the whole document: the request itself is malformed).
    fn batch_endpoint(&self, body: &[u8]) -> Response {
        self.batch_requests.fetch_add(1, Ordering::Relaxed);
        let requests = match App::decode_batch(body) {
            Ok(requests) => requests,
            Err(response) => return response,
        };
        let started = Instant::now();
        let results = self.batch.run_cached(&self.cache, requests, |_| {});
        let wall = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.timing.record_batch(&results, wall);
        let entries = results.iter().map(|result| match result {
            Ok(outcome) => Json::object([("outcome", outcome.to_json())]),
            Err(error) => Json::object([("error", Json::Str(error_chain(error)))]),
        });
        Response::json(&Json::array(entries.collect::<Vec<_>>()))
    }

    /// `GET|POST /v1/stream`: the same batch document as `/v1/batch`,
    /// answered as a chunked JSON-lines stream of
    /// [`BatchEvent`](marchgen::service::BatchEvent) frames
    /// (`started` / `item` / terminal `completed`) emitted while the
    /// batch runs — long-running requests report progress instead of a
    /// silent multi-second POST. Decode errors are answered *buffered*
    /// (400/422 with the usual structured body): the status line is
    /// already on the wire once streaming starts, so all validation
    /// happens first.
    ///
    /// Every stream is resumable: the batch runs on its own thread and
    /// *publishes* frames into a [`marchgen::resume::BatchStream`]
    /// replay ring, announced up front by a `{"event":"batch"}` frame
    /// carrying the `batch_id` token; every frame carries a monotone
    /// `seq`. This connection is merely the ring's first follower — a
    /// peer hanging up cancels nothing (the batch keeps feeding the
    /// ring and any coalesced cache waiters), and the client comes back
    /// via `?resume=<batch_id>&from=<seq>` ([`App::resume_stream`]).
    fn stream_endpoint(self: &Arc<App>, request: &Request) -> Reply {
        self.stream_requests.fetch_add(1, Ordering::Relaxed);
        if let Some(batch_id) = request.query_param("resume") {
            return self.resume_stream(batch_id, request.query_param("from"));
        }
        let requests = match App::decode_batch(&request.body) {
            Ok(requests) => requests,
            Err(response) => return response.into(),
        };
        let app = Arc::clone(self);
        let stream = self.streams.begin();
        let request_id = request.request_id.clone();
        StreamResponse::new(move |sink| {
            stream.publish(|seq| {
                frame_line(
                    Json::object([
                        ("event", Json::from("batch")),
                        ("batch_id", Json::from(stream.id())),
                    ]),
                    seq,
                    &request_id,
                )
            });
            let produced = std::thread::scope(|scope| {
                let producer_stream = Arc::clone(&stream);
                let producer_request_id = request_id.clone();
                let producer = scope.spawn(move || {
                    // Completes the ring even if the batch panics, so
                    // followers (this connection and any resumers) are
                    // always released.
                    let _done = CompleteOnDrop(Arc::clone(&producer_stream));
                    let started = Instant::now();
                    let results = app.batch.run_cached(&app.cache, requests, |event| {
                        let doc = event.to_json();
                        producer_stream.publish(|seq| frame_line(doc, seq, &producer_request_id));
                    });
                    let wall = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    app.timing.record_batch(&results, wall);
                });
                let followed = stream.follow(0, |line| sink.send(line.as_bytes()));
                // The batch always runs to completion — coalesced cache
                // waiters and future resumers depend on it — so a dead
                // peer merely stops this follower while the join waits.
                (producer.join(), followed)
            });
            let (ran, followed) = produced;
            if ran.is_err() {
                return Err(std::io::Error::other("stream batch producer panicked"));
            }
            match followed {
                Ok(()) => Ok(()),
                Err(FollowError::Io(error)) => Err(error),
                Err(FollowError::Gap { .. }) => Err(std::io::Error::other(
                    "stream client fell behind the replay ring",
                )),
            }
        })
        .into()
    }

    /// `GET /v1/stream?resume=<batch_id>&from=<seq>`: re-attaches to a
    /// live or recently-completed batch stream — frames still in the
    /// replay ring are resent byte-identically from `from`, then the
    /// follower tails live publishes to the terminal frame. Validation
    /// happens before the response head is written: a malformed `from`
    /// is a 422, an unknown/expired/evicted token a structured 404
    /// (`resume_unknown` — resubmit the batch), a start sequence that
    /// already left the ring a 410 (`resume_gap`).
    fn resume_stream(&self, batch_id: &str, from: Option<&str>) -> Reply {
        let from = match from.map_or(Ok(0), str::parse::<u64>) {
            Ok(from) => from,
            Err(_) => {
                return Response::error(
                    422,
                    "invalid_request",
                    "\"from\" must be a non-negative frame sequence number",
                )
                .into()
            }
        };
        let Some(stream) = self.streams.resume(batch_id) else {
            return Response::error(
                404,
                "resume_unknown",
                format!(
                    "no resumable batch {batch_id:?} (unknown, expired, or evicted); \
                     resubmit the batch"
                ),
            )
            .into();
        };
        if let Err(oldest) = stream.check_from(from) {
            return Response::error(
                410,
                "resume_gap",
                format!(
                    "frames before seq {oldest} have left the replay ring; \
                     resume with from={oldest} (accepting a gap) or resubmit the batch"
                ),
            )
            .into();
        }
        StreamResponse::new(move |sink| {
            match stream.follow(from, |line| sink.send(line.as_bytes())) {
                Ok(()) => Ok(()),
                Err(FollowError::Io(error)) => Err(error),
                // An eviction raced the check above; refuse to skip
                // frames silently — the truncated stream (no terminal
                // frame) tells the client to start over.
                Err(FollowError::Gap { oldest }) => Err(std::io::Error::other(format!(
                    "replay ring overtook the resume point (oldest retained seq {oldest})"
                ))),
            }
        })
        .into()
    }

    /// `GET /v1/failpoints` lists armed fault-injection sites;
    /// `POST /v1/failpoints` re-arms them with the same grammar as the
    /// `MARCHGEND_FAILPOINTS` environment variable —
    /// `{"config": "cache.disk.write=err(boom);daemon.socket.write=delay(50)"}`
    /// merges sites (`site=off` disarms one), `{"clear": true}` disarms
    /// everything. In a build without the `failpoints` cargo feature the
    /// sites do not exist: GET reports `"enabled": false` and POST
    /// answers 501 `failpoints_disabled`.
    fn failpoints_endpoint(&self, request: &Request) -> Response {
        if request.method == "GET" {
            return failpoints_table();
        }
        if !marchgen_failpoint::enabled() {
            return Response::error(
                501,
                "failpoints_disabled",
                "this build has no fault-injection sites; rebuild with --features failpoints",
            );
        }
        let text = match std::str::from_utf8(&request.body) {
            Ok(text) => text,
            Err(_) => return Response::error(400, "invalid_json", "body is not UTF-8"),
        };
        let doc = match Json::parse(text) {
            Ok(doc) => doc,
            Err(e) => return Response::error(400, "invalid_json", e.to_string()),
        };
        if let Some(node) = doc.get("config") {
            let Some(config) = node.as_str() else {
                return Response::error(422, "invalid_request", "\"config\" must be a string");
            };
            if let Err(message) = marchgen_failpoint::configure(config) {
                return Response::error(422, "invalid_request", message);
            }
        } else if doc.get("clear").and_then(Json::as_bool) == Some(true) {
            marchgen_failpoint::clear();
        } else {
            return Response::error(
                422,
                "invalid_request",
                "body must be {\"config\": \"site=spec;...\"} or {\"clear\": true}",
            );
        }
        failpoints_table()
    }

    /// `GET /metrics`: the registry in Prometheus text exposition
    /// format. Mirror instruments are synced first, so a scrape and a
    /// concurrent `/v1/stats` read the same authoritative atomics.
    fn metrics_endpoint(&self) -> Response {
        // Chaos site: a fault inside the scrape path itself — verifies
        // a panicking/failing exposition answers structured errors
        // without poisoning the registry for the next scrape.
        marchgen_failpoint::fail_point!("marchgend.metrics", |msg: String| Response::error(
            500,
            "injected_fault",
            msg
        ));
        self.sync_metrics();
        self.metrics
            .registry
            .counter(
                "marchgend_metrics_scrapes_total",
                "Completed GET /metrics expositions.",
                &[],
            )
            .inc();
        Response::text(self.metrics.registry.render(), "text/plain; version=0.0.4")
    }

    /// Increments the per-`fault_class` request counters: one tick per
    /// distinct class label in the request's fault list. The label set
    /// is the fixed [`FAULT_CLASS_LABELS`] vocabulary, so cardinality
    /// is bounded regardless of request contents.
    fn count_fault_classes(&self, request: &GenerateRequest) {
        let mut seen: Vec<&'static str> = request
            .faults
            .iter()
            .map(marchgen::FaultModel::class_label)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        for label in seen {
            self.metrics
                .registry
                .counter(
                    "marchgend_fault_class_requests_total",
                    FAULT_CLASS_REQUESTS_HELP,
                    &[("fault_class", label)],
                )
                .inc();
        }
    }

    /// Increments the per-`fault_class` verification-outcome counters
    /// for a served generation (cache hits included — the outcome is
    /// what the client received).
    fn count_verify_outcomes(&self, request: &GenerateRequest, verified: bool) {
        let outcome = if verified { "verified" } else { "unverified" };
        let mut seen: Vec<&'static str> = request
            .faults
            .iter()
            .map(marchgen::FaultModel::class_label)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        for label in seen {
            self.metrics
                .registry
                .counter(
                    "marchgend_fault_class_verify_total",
                    FAULT_CLASS_VERIFY_HELP,
                    &[("fault_class", label), ("outcome", outcome)],
                )
                .inc();
        }
    }

    /// Copies every externally owned statistic (server stats, outcome
    /// cache, RTL cache, stream registry, uptime) into its mirror
    /// instrument. Called on both snapshot paths (`/v1/stats` and
    /// `/metrics`) — both views therefore render from the same
    /// registry state and cannot drift.
    fn sync_metrics(&self) {
        let registry = &self.metrics.registry;
        registry
            .gauge(
                "marchgend_uptime_seconds",
                "Seconds since process start.",
                &[],
            )
            .set(i64::try_from(self.started.elapsed().as_secs()).unwrap_or(i64::MAX));

        let server = self
            .server_stats
            .get()
            .map(|stats| stats.snapshot())
            .unwrap_or_default();
        let mirror = |name: &str, help: &str, labels: &[(&str, &str)], value: u64| {
            registry.counter(name, help, labels).store(value);
        };
        mirror(
            "marchgend_connections_total",
            "TCP connections accepted, including ones later rejected.",
            &[],
            server.connections,
        );
        mirror(
            "marchgend_requests_total",
            "Requests fully parsed and dispatched to the application handler.",
            &[],
            server.requests,
        );
        registry
            .gauge(
                "marchgend_in_flight",
                "Requests currently being served (handler execution plus response write).",
                &[],
            )
            .set(i64::try_from(server.in_flight).unwrap_or(i64::MAX));
        let rejected_help =
            "Connections/requests turned away before dispatch, by reason (queue_full and \
             rate_limited answer 429; shutdown answers 503).";
        mirror(
            "marchgend_rejected_total",
            rejected_help,
            &[("reason", "queue_full")],
            server.rejected_queue_full,
        );
        mirror(
            "marchgend_rejected_total",
            rejected_help,
            &[("reason", "rate_limited")],
            server.rejected_rate_limited,
        );
        mirror(
            "marchgend_rejected_total",
            rejected_help,
            &[("reason", "shutdown")],
            server.rejected_shutdown,
        );
        let limiter_help = "Per-peer rate limiter decisions by outcome (zero when no limiter \
                            is configured).";
        mirror(
            "marchgend_limiter_decisions_total",
            limiter_help,
            &[("outcome", "allow")],
            server.rate_limit_allowed,
        );
        mirror(
            "marchgend_limiter_decisions_total",
            limiter_help,
            &[("outcome", "reject")],
            server.rejected_rate_limited,
        );
        mirror(
            "marchgend_protocol_errors_total",
            "Requests rejected at the protocol layer (4xx before dispatch).",
            &[],
            server.protocol_errors,
        );
        mirror(
            "marchgend_streams_started_total",
            "Streaming responses started (each pins a worker for its duration).",
            &[],
            server.streams,
        );
        registry
            .gauge(
                "marchgend_streams_active",
                "Streaming responses currently on the wire.",
                &[],
            )
            .set(i64::try_from(server.streams_active).unwrap_or(i64::MAX));

        let cache = self.cache.stats();
        let hits_help = "Outcome cache hits by tier.";
        mirror(
            "marchgend_cache_hits_total",
            hits_help,
            &[("tier", "memory")],
            cache.memory_hits,
        );
        mirror(
            "marchgend_cache_hits_total",
            hits_help,
            &[("tier", "disk")],
            cache.disk_hits,
        );
        mirror(
            "marchgend_cache_misses_total",
            "Outcome cache misses (a generation was computed).",
            &[],
            cache.misses,
        );
        mirror(
            "marchgend_cache_inserts_total",
            "Outcomes inserted into the cache.",
            &[],
            cache.inserts,
        );
        mirror(
            "marchgend_cache_evictions_total",
            "Outcomes evicted from the in-memory LRU.",
            &[],
            cache.evictions,
        );
        mirror(
            "marchgend_cache_coalesced_total",
            "Requests served by waiting on an identical in-flight computation \
             (single-flight).",
            &[],
            cache.coalesced,
        );
        mirror(
            "marchgend_cache_key_mismatches_total",
            "128-bit key collisions detected by canonical-text comparison (each degraded \
             to a recompute, never to serving foreign bytes).",
            &[],
            cache.key_mismatches,
        );
        mirror(
            "marchgend_cache_key_schema_stale_total",
            "Misses whose request still has a persisted entry under the previous cache \
             key schema — recomputes forced by a schema bump, not a cold cache.",
            &[],
            cache.key_schema_stale,
        );
        // Fixed fault-class vocabulary: every series exists from the
        // first scrape (zeros, not gaps), and cardinality is bounded by
        // the taxonomy rather than by traffic.
        for label in FAULT_CLASS_LABELS {
            let _ = registry.counter(
                "marchgend_fault_class_requests_total",
                FAULT_CLASS_REQUESTS_HELP,
                &[("fault_class", label)],
            );
            for outcome in ["verified", "unverified"] {
                let _ = registry.counter(
                    "marchgend_fault_class_verify_total",
                    FAULT_CLASS_VERIFY_HELP,
                    &[("fault_class", label), ("outcome", outcome)],
                );
            }
        }
        // Fixed verification-backend vocabulary, same contract: the
        // trait names of the in-tree backends plus "none" for
        // verification-disabled requests.
        for backend in ["simulator", "bitsim", "widesim", "none"] {
            let _ = registry.counter(
                "marchgend_verifier_outcomes_total",
                "Computed outcomes by resolved verification backend (\"none\" when \
                 verification was disabled).",
                &[("backend", backend)],
            );
        }
        registry
            .gauge(
                "marchgend_cache_resident",
                "Outcomes currently resident in the in-memory LRU.",
                &[],
            )
            .set(i64::try_from(self.cache.resident()).unwrap_or(i64::MAX));
        // Disk-tier families exist only when a disk tier is configured
        // — same contract as the JSON view: absent, not zero.
        if let Some(disk) = cache.disk {
            registry
                .gauge(
                    "marchgend_cache_disk_degraded",
                    "1 while the disk tier is in degraded (memory-only) mode, else 0.",
                    &[],
                )
                .set(i64::from(disk.degraded));
            mirror(
                "marchgend_cache_disk_quarantined_total",
                "Corrupt disk entries quarantined instead of served.",
                &[],
                disk.quarantined,
            );
            mirror(
                "marchgend_cache_disk_write_failures_total",
                "Failed disk-tier writes (each pushes toward degraded mode).",
                &[],
                disk.write_failures,
            );
            mirror(
                "marchgend_cache_disk_probes_total",
                "Recovery probes issued while the disk tier was degraded.",
                &[],
                disk.probes,
            );
        }

        let rtl_help = "RTL render cache traffic.";
        mirror(
            "marchgend_rtl_cache_hits_total",
            rtl_help,
            &[],
            self.rtl_hits.load(Ordering::Relaxed),
        );
        mirror(
            "marchgend_rtl_cache_misses_total",
            rtl_help,
            &[],
            self.rtl_misses.load(Ordering::Relaxed),
        );
        mirror(
            "marchgend_rtl_cache_evictions_total",
            rtl_help,
            &[],
            self.rtl_cache.evictions(),
        );
        registry
            .gauge(
                "marchgend_rtl_cache_resident",
                "RTL bundles currently resident in the render cache.",
                &[],
            )
            .set(i64::try_from(self.rtl_cache.len()).unwrap_or(i64::MAX));

        let streams = self.streams.snapshot();
        registry
            .gauge(
                "marchgend_stream_batches_retained",
                "Batches currently resumable (running or within retention).",
                &[],
            )
            .set(i64::try_from(streams.retained).unwrap_or(i64::MAX));
        mirror(
            "marchgend_stream_batches_started_total",
            "Batch replay rings ever registered.",
            &[],
            streams.started,
        );
        mirror(
            "marchgend_stream_resumes_total",
            "Successful ?resume= re-attachments.",
            &[],
            streams.resumed,
        );
        mirror(
            "marchgend_stream_batches_expired_total",
            "Completed batches dropped after their retention window.",
            &[],
            streams.expired,
        );
        mirror(
            "marchgend_stream_batches_evicted_total",
            "Batches dropped early because the registry hit its retention cap.",
            &[],
            streams.evicted,
        );
        mirror(
            "marchgend_stream_frames_published_total",
            "Frames published into replay rings.",
            &[],
            streams.frames_published,
        );
        mirror(
            "marchgend_stream_frames_replayed_total",
            "Frames delivered to followers (ring replays and live tails alike).",
            &[],
            streams.frames_replayed,
        );
        mirror(
            "marchgend_stream_frames_dropped_total",
            "Frames evicted from a ring that outgrew its capacity.",
            &[],
            streams.frames_dropped,
        );
        registry
            .gauge(
                "marchgend_stream_ring_frames",
                "Frames currently held across every retained replay ring.",
                &[],
            )
            .set(i64::try_from(streams.ring_frames).unwrap_or(i64::MAX));
    }

    fn stats_endpoint(&self) -> Response {
        // Keep the Prometheus mirrors in lockstep with this JSON
        // snapshot — both endpoints sample the same atomics.
        self.sync_metrics();
        let stats_seq = self.stats_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let server = self
            .server_stats
            .get()
            .map(|stats| stats.snapshot())
            .unwrap_or_default();
        let cache = self.cache.stats();
        let streams = self.streams.snapshot();
        let mut cache_pairs: Vec<(String, Json)> = [
            ("memory_hits", Json::from(cache.memory_hits)),
            ("disk_hits", Json::from(cache.disk_hits)),
            ("hits", Json::from(cache.hits())),
            ("misses", Json::from(cache.misses)),
            ("inserts", Json::from(cache.inserts)),
            ("evictions", Json::from(cache.evictions)),
            ("coalesced", Json::from(cache.coalesced)),
            ("key_mismatches", Json::from(cache.key_mismatches)),
            ("key_schema_stale", Json::from(cache.key_schema_stale)),
            ("resident", Json::from(self.cache.resident())),
        ]
        .into_iter()
        .map(|(key, value)| (key.to_owned(), value))
        .collect();
        // Disk-tier health appears only when a disk tier is configured:
        // `disk_degraded: false` on a memory-only daemon would read as
        // "the disk is fine" when there is no disk.
        if let Some(disk) = cache.disk {
            cache_pairs.extend([
                ("disk_degraded".to_owned(), Json::Bool(disk.degraded)),
                ("disk_quarantined".to_owned(), Json::from(disk.quarantined)),
                (
                    "disk_write_failures".to_owned(),
                    Json::from(disk.write_failures),
                ),
                ("disk_probes".to_owned(), Json::from(disk.probes)),
            ]);
        }
        Response::json(&Json::object([
            (
                "uptime_seconds",
                Json::from(self.started.elapsed().as_secs()),
            ),
            ("stats_seq", Json::from(stats_seq)),
            (
                "server",
                Json::object([
                    ("connections", Json::from(server.connections)),
                    ("requests", Json::from(server.requests)),
                    ("in_flight", Json::from(server.in_flight)),
                    (
                        "rejected_queue_full",
                        Json::from(server.rejected_queue_full),
                    ),
                    (
                        "rejected_rate_limited",
                        Json::from(server.rejected_rate_limited),
                    ),
                    ("rate_limit_allowed", Json::from(server.rate_limit_allowed)),
                    ("rejected_shutdown", Json::from(server.rejected_shutdown)),
                    ("protocol_errors", Json::from(server.protocol_errors)),
                    ("streams", Json::from(server.streams)),
                    ("streams_active", Json::from(server.streams_active)),
                ]),
            ),
            ("cache", Json::object(cache_pairs)),
            (
                "streams",
                Json::object([
                    ("retained", Json::from(streams.retained)),
                    ("started", Json::from(streams.started)),
                    ("resumed", Json::from(streams.resumed)),
                    ("expired", Json::from(streams.expired)),
                    ("evicted", Json::from(streams.evicted)),
                    ("frames_published", Json::from(streams.frames_published)),
                    ("frames_replayed", Json::from(streams.frames_replayed)),
                    ("frames_dropped", Json::from(streams.frames_dropped)),
                    ("ring_frames", Json::from(streams.ring_frames)),
                ]),
            ),
            (
                "rtl_cache",
                Json::object([
                    ("hits", Json::from(self.rtl_hits.load(Ordering::Relaxed))),
                    (
                        "misses",
                        Json::from(self.rtl_misses.load(Ordering::Relaxed)),
                    ),
                    ("resident", Json::from(self.rtl_cache.len())),
                    ("evictions", Json::from(self.rtl_cache.evictions())),
                ]),
            ),
            ("timing", self.timing.to_json()),
            (
                "endpoints",
                Json::object([
                    (
                        "generate",
                        Json::from(self.generate_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "batch",
                        Json::from(self.batch_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "stream",
                        Json::from(self.stream_requests.load(Ordering::Relaxed)),
                    ),
                    ("rtl", Json::from(self.rtl_requests.load(Ordering::Relaxed))),
                ]),
            ),
        ]))
    }
}

/// Renders one stream frame: the event document plus the originating
/// request's `"request_id"` and the ring-assigned `"seq"` (appended in
/// that order, so the frame prefix clients already parse is unchanged
/// and `"seq"` stays the terminal key). The request id rides on every
/// frame because a resumed follower replays ring bytes verbatim and
/// never saw the original response headers — this is its only way to
/// correlate frames with the submitting request's access-log lines.
fn frame_line(mut doc: Json, seq: u64, request_id: &str) -> String {
    if let Json::Object(pairs) = &mut doc {
        pairs.push(("request_id".to_owned(), Json::from(request_id)));
        pairs.push(("seq".to_owned(), Json::from(seq)));
    }
    let mut line = doc.render();
    line.push('\n');
    line
}

/// The `/v1/failpoints` response body: whether the build carries
/// injection sites at all, and which are currently armed.
fn failpoints_table() -> Response {
    Response::json(&Json::object([
        ("enabled", Json::Bool(marchgen_failpoint::enabled())),
        (
            "failpoints",
            Json::array(
                marchgen_failpoint::list()
                    .into_iter()
                    .map(|(name, spec)| {
                        Json::object([("name", Json::Str(name)), ("config", Json::Str(spec))])
                    })
                    .collect::<Vec<_>>(),
            ),
        ),
    ]))
}

fn health_endpoint() -> Response {
    Response::json(&Json::object([
        ("status", Json::from("ok")),
        ("service", Json::from("marchgend")),
        ("version", Json::from(env!("CARGO_PKG_VERSION"))),
        // The wire *document* schema (docs/WIRE_FORMAT.md), not the
        // cache KEY_SCHEMA — the two version independently.
        ("schema", Json::Int(1)),
    ]))
}

/// Flattens an error and its sources into one line.
fn error_chain(error: &dyn std::error::Error) -> String {
    let mut text = error.to_string();
    let mut source = error.source();
    while let Some(cause) = source {
        text.push_str(": ");
        text.push_str(&cause.to_string());
        source = cause.source();
    }
    text
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return Ok(());
    }
    let addr = take_str_option(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:8378".to_owned());
    let cache_dir = take_str_option(&mut args, "--cache-dir")?;
    let cache_capacity = take_option(&mut args, "--cache-capacity")?.unwrap_or(4096);
    // One stderr line per served request, carrying the request id —
    // the daemon's only log stream, so operators can correlate client
    // reports (which echo the same id) with server-side activity.
    let mut config = ServerConfig {
        log_requests: true,
        ..ServerConfig::default()
    };
    if let Some(workers) = take_option(&mut args, "--workers")? {
        config.workers = workers;
    }
    if let Some(queue) = take_option(&mut args, "--queue-capacity")? {
        config.queue_capacity = queue;
    }
    if let Some(max_body) = take_option(&mut args, "--max-body-bytes")? {
        config.max_body_bytes = max_body;
    }
    if let Some(millis) = take_option(&mut args, "--slow-request-ms")? {
        config.slow_request_millis = millis as u64;
    }
    let take_f64 = |args: &mut Vec<String>, name: &str| -> Result<Option<f64>, String> {
        match take_str_option(args, name)? {
            None => Ok(None),
            Some(text) => text
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .map(Some)
                .ok_or_else(|| format!("{name} needs a non-negative number, got {text:?}")),
        }
    };
    let rate_limit = take_f64(&mut args, "--rate-limit")?;
    let rate_burst = take_f64(&mut args, "--rate-burst")?;
    match rate_limit {
        // 0 (the default) disables limiting entirely.
        None | Some(0.0) => {
            if rate_burst.is_some() {
                return Err("--rate-burst needs --rate-limit".to_owned());
            }
        }
        Some(per_second) => {
            // Default burst: double the sustained rate, so short spikes
            // from a healthy client pool ride through while a sustained
            // overrun still hits the limit within a couple of seconds.
            let burst = rate_burst.unwrap_or(per_second * 2.0);
            config.rate_limit = Some(RateLimitConfig::new(per_second, burst));
        }
    }
    if !args.is_empty() {
        return Err(format!("unrecognized arguments {args:?}\n\n{USAGE}"));
    }

    let mut cache = OutcomeCache::new(cache_capacity);
    if let Some(dir) = &cache_dir {
        cache = cache
            .with_disk(dir)
            .map_err(|e| format!("cannot open cache dir {dir:?}: {e}"))?;
    }
    let app = Arc::new(App {
        cache,
        batch: Batch::new(),
        streams: StreamRegistry::new(),
        timing: PhaseAggregates::default(),
        generate_requests: AtomicU64::new(0),
        batch_requests: AtomicU64::new(0),
        stream_requests: AtomicU64::new(0),
        rtl_requests: AtomicU64::new(0),
        rtl_cache: ShardedLru::new(RTL_CACHE_CAPACITY),
        rtl_hits: AtomicU64::new(0),
        rtl_misses: AtomicU64::new(0),
        server_stats: OnceLock::new(),
        metrics: Metrics::new(),
        started: Instant::now(),
        stats_seq: AtomicU64::new(0),
    });

    let handler_app = Arc::clone(&app);
    let server = Server::bind(addr.as_str(), config, move |request: &Request| {
        handler_app.handle(request)
    })
    .map_err(|e| format!("cannot bind {addr:?}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    app.server_stats
        .set(server.stats())
        .unwrap_or_else(|_| unreachable!("stats set once, right after bind"));

    // One parseable line on stdout: smoke tests and process managers
    // scrape the bound address from it (important with port 0). Writes
    // are fallible on purpose — a supervisor may close the pipe after
    // scraping, and a dead stdout must not kill a draining daemon.
    use std::io::Write as _;
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "marchgend listening on http://{bound}");
    let _ = stdout.flush();

    server.run();
    let _ = writeln!(stdout, "marchgend: drained and shut down");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
