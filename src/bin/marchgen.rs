//! `marchgen` — command-line front end to the March test generator.
//!
//! ```text
//! marchgen generate <fault-list>          generate a verified March test
//! marchgen validate <march> <fault-list>  simulate a test against faults
//! marchgen analyze  <march>               static detection conditions
//! marchgen codegen  <march> [c|rust]      emit BIST source code
//! marchgen known    [name]                show the classical library
//! ```

use marchgen::march::analysis;
use marchgen::march::codegen;
use marchgen::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("codegen") => codegen_cmd(&args[1..]),
        Some("known") => known_cmd(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
marchgen — automatic generation of optimal March tests (Benso et al., DATE 2002)

usage:
  marchgen generate <fault-list>            e.g. marchgen generate \"SAF, TF, CFin\"
  marchgen validate <march> <fault-list>    e.g. marchgen validate \"m(w0); u(r0,w1); d(r1)\" SAF
  marchgen analyze  <march>                 static detection conditions
  marchgen codegen  <march> [c|rust]        emit BIST source code
  marchgen known    [name]                  list/show the classical test library
";

fn generate(args: &[String]) -> Result<(), String> {
    let list = args.first().ok_or("generate needs a fault list")?;
    let generator = Generator::from_fault_list(list).map_err(|e| e.to_string())?;
    let outcome = generator.run().map_err(|e| e.to_string())?;
    println!("march test : {}", outcome.test);
    println!("complexity : {}n", outcome.test.complexity());
    if outcome.test.delay_count() > 0 {
        println!("delays     : {}", outcome.test.delay_count());
    }
    println!("verified   : {}", outcome.verified);
    if let Some(nr) = outcome.non_redundant {
        println!("non-redund.: {nr}");
    }
    if !outcome.verified {
        if let Some(report) = &outcome.report {
            println!("{report}");
        }
        return Err("generated test failed verification".into());
    }
    Ok(())
}

fn parse_march_arg(s: &str) -> Result<MarchTest, String> {
    known::by_name(s)
        .map(Ok)
        .unwrap_or_else(|| s.parse::<MarchTest>().map_err(|e| e.to_string()))
}

fn validate(args: &[String]) -> Result<(), String> {
    let [march, faults] = args else {
        return Err("validate needs <march> and <fault-list>".into());
    };
    let test = parse_march_arg(march)?;
    test.check_consistency().map_err(|e| format!("inconsistent march test: {e}"))?;
    let models = parse_fault_list(faults).map_err(|e| e.to_string())?;
    let report = marchgen::sim::coverage::coverage_report(&test, &models, 6);
    print!("{report}");
    if report.complete() {
        println!("verdict: full coverage");
        Ok(())
    } else {
        Err("coverage incomplete".into())
    }
}

fn analyze_cmd(args: &[String]) -> Result<(), String> {
    let march = args.first().ok_or("analyze needs a march test")?;
    let test = parse_march_arg(march)?;
    test.check_consistency().map_err(|e| format!("inconsistent march test: {e}"))?;
    let c = analysis::analyze(&test);
    println!("test       : {test}");
    println!("complexity : {}n", test.complexity());
    println!("SAF        : {}", c.saf);
    println!("TF         : {}", c.tf);
    println!("AF         : {}", c.af);
    println!("SOF        : {}", c.sof);
    println!("DRF        : {}", c.drf);
    println!("(sufficient conditions; use `validate` for exact simulation)");
    Ok(())
}

fn codegen_cmd(args: &[String]) -> Result<(), String> {
    let march = args.first().ok_or("codegen needs a march test")?;
    let test = parse_march_arg(march)?;
    test.check_consistency().map_err(|e| format!("inconsistent march test: {e}"))?;
    match args.get(1).map(String::as_str).unwrap_or("c") {
        "c" => print!("{}", codegen::to_c(&test, "march_test")),
        "rust" => print!("{}", codegen::to_rust(&test, "march_test")),
        other => return Err(format!("unknown language {other:?} (use c or rust)")),
    }
    Ok(())
}

fn known_cmd(args: &[String]) -> Result<(), String> {
    match args.first() {
        None => {
            for (name, test) in known::all() {
                println!("{name:<10} {:>3}n  {}", test.complexity(), test);
            }
            Ok(())
        }
        Some(name) => {
            let test = known::by_name(name).ok_or_else(|| format!("unknown test {name:?}"))?;
            println!("{test}");
            Ok(())
        }
    }
}
