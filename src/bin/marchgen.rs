//! `marchgen` — command-line front end to the March test generator.
//!
//! ```text
//! marchgen generate <fault-list> [--json]     generate a verified March test
//! marchgen validate <march> <fault-list> [--json]
//!                                             simulate a test against faults
//! marchgen analyze  <march> [--json]          static detection conditions
//! marchgen codegen  <march> [--lang c|rust|sv] [--json]
//!                                             emit BIST source code or RTL
//! marchgen known    [name]                    show the classical library
//! marchgen batch    <file> [--json] [--threads N]
//!                                             run one fault list per line
//! ```

use marchgen::march::analysis;
use marchgen::march::codegen;
use marchgen::prelude::*;
use std::process::ExitCode;

#[path = "shared/args.rs"]
mod args;
use args::{take_flag, take_option, take_str_option};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag(&mut args, "--json");
    // Engine knobs are only meaningful for the generating subcommands;
    // leaving them in `args` elsewhere makes a stray `--verifier` on
    // e.g. `validate` a loud usage error instead of a silent no-op.
    let generating = matches!(args.first().map(String::as_str), Some("generate" | "batch"));
    let (threads, knobs) = if generating {
        match take_global_options(&mut args) {
            Ok(options) => options,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    } else {
        (None, RequestKnobs::default())
    };
    let result = match args.first().map(String::as_str) {
        Some("generate") => generate_cmd(&args[1..], json, knobs),
        Some("validate") => validate(&args[1..], json),
        Some("analyze") => analyze_cmd(&args[1..], json),
        Some("codegen") => codegen_cmd(&args[1..], json),
        Some("known") => known_cmd(&args[1..]),
        Some("batch") => batch_cmd(&args[1..], json, threads, knobs),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
marchgen — automatic generation of optimal March tests (Benso et al., DATE 2002)

usage:
  marchgen generate <fault-list> [--json] [--solver NAME] [--verifier auto|scalar|bitsim|wide]
                    [--search-threads N] [--cache-dir DIR]
                                            e.g. marchgen generate \"SAF, TF, CFin\"
  marchgen validate <march> <fault-list> [--json]
                                            e.g. marchgen validate \"m(w0); u(r0,w1); d(r1)\" SAF
  marchgen analyze  <march> [--json]        static detection conditions
  marchgen codegen  <march> [--lang c|rust|sv] [--json] [--name IDENT]
                    [--addr-width N] [--data-width N] [--delay-cycles N] [--no-testbench]
                                            emit BIST source code; `sv` produces a
                                            synthesizable patgen + BIST wrapper +
                                            testbench bundle (see docs/RTL notes)
                                            e.g. marchgen codegen \"March C-\" --lang sv
  marchgen known    [name]                  list/show the classical test library
  marchgen batch    <file> [--json] [--threads N] [--solver NAME] [--verifier auto|scalar|bitsim|wide]
                    [--search-threads N] [--cache-dir DIR]
                                            one fault list per line through the batch service

  --solver          ATSP backend: auto (exact up to 40 nodes, then the
                    LKH-style local search; the default), held-karp,
                    branch-bound, heuristic, or local-search
  --verifier        verification backend: auto (packed backend by scenario
                    lane count: bitsim up to 64 lanes, wide beyond; the
                    default), scalar, bitsim (64-lane bit-parallel), or
                    wide (multi-word lanes + sharded verify)
  --search-threads  worker threads for the sharded in-request candidate
                    search (0 = one per CPU; never changes the result)
  --cache-dir       persistent content-addressed outcome cache: identical
                    requests (modulo fault-list order and execution knobs)
                    are replayed instead of recomputed, across processes

fault lists:        families SAF TF SOF ADF CFin CFid CFst RDF DRDF IRF
                    DRF, dynamic dRDF dDRDF dIRF (case-sensitive d),
                    linked LCF; or qualified instances like SA0, TF<u>,
                    CFid<u,0>, dRDF<1>, LCF<0>
";

/// Request-level knobs applied uniformly by `generate` and `batch`.
#[derive(Clone, Default)]
struct RequestKnobs {
    solver: Option<marchgen::SolverChoice>,
    verifier: Option<VerifierChoice>,
    search_threads: Option<usize>,
    cache_dir: Option<String>,
}

impl RequestKnobs {
    /// Opens the persistent outcome cache when `--cache-dir` was given.
    #[cfg(feature = "serde")]
    fn open_cache(&self) -> Result<Option<marchgen::cache::OutcomeCache>, String> {
        match &self.cache_dir {
            None => Ok(None),
            Some(dir) => marchgen::cache::OutcomeCache::new(1024)
                .with_disk(dir)
                .map(Some)
                .map_err(|e| format!("cannot open cache dir {dir:?}: {e}")),
        }
    }

    /// Without the `serde` feature there is no cache (entries are JSON
    /// documents); `--cache-dir` is a loud error rather than a no-op.
    #[cfg(not(feature = "serde"))]
    fn reject_cache_dir(&self) -> Result<(), String> {
        match self.cache_dir {
            None => Ok(()),
            Some(_) => {
                Err("this build has no cache support (rebuild with the `serde` feature)".into())
            }
        }
    }
}

/// Parses the options shared by `generate` and `batch`: `--threads`,
/// `--search-threads`, `--solver`, `--verifier` and `--cache-dir`.
fn take_global_options(args: &mut Vec<String>) -> Result<(Option<usize>, RequestKnobs), String> {
    let threads = take_option(args, "--threads")?;
    let search_threads = take_option(args, "--search-threads")?;
    let cache_dir = take_str_option(args, "--cache-dir")?;
    let solver = match take_str_option(args, "--solver")? {
        None => None,
        Some(name) => {
            // Validate eagerly against the built-in registry so a typo
            // fails at the command line, not deep inside generation.
            let choice = marchgen::SolverChoice::from_key(&name);
            let registry = marchgen::SolverRegistry::default();
            if registry.resolve(&choice).is_err() {
                return Err(format!(
                    "--solver must be one of {}, got {name:?}",
                    registry.names().join(", ")
                ));
            }
            Some(choice)
        }
    };
    let verifier = match take_str_option(args, "--verifier")? {
        None => None,
        Some(name) => Some(VerifierChoice::from_key(&name).ok_or_else(|| {
            format!("--verifier must be auto, scalar, bitsim or wide, got {name:?}")
        })?),
    };
    Ok((
        threads,
        RequestKnobs {
            solver,
            verifier,
            search_threads,
            cache_dir,
        },
    ))
}

impl RequestKnobs {
    fn apply(&self, mut request: GenerateRequest) -> GenerateRequest {
        if let Some(solver) = &self.solver {
            request = request.with_solver(solver.clone());
        }
        if let Some(verifier) = self.verifier {
            request = request.with_verifier(verifier);
        }
        if let Some(threads) = self.search_threads {
            request = request.with_search_threads(threads);
        }
        request
    }
}

#[cfg(feature = "serde")]
fn generate_maybe_cached(
    knobs: &RequestKnobs,
    request: &GenerateRequest,
) -> Result<GenerateOutcome, String> {
    match knobs.open_cache()? {
        Some(cache) => cache
            .get_or_compute(request, generate)
            .map_err(|e| e.to_string()),
        None => generate(request).map_err(|e| e.to_string()),
    }
}

#[cfg(not(feature = "serde"))]
fn generate_maybe_cached(
    knobs: &RequestKnobs,
    request: &GenerateRequest,
) -> Result<GenerateOutcome, String> {
    knobs.reject_cache_dir()?;
    generate(request).map_err(|e| e.to_string())
}

fn generate_cmd(args: &[String], json: bool, knobs: RequestKnobs) -> Result<(), String> {
    let list = args.first().ok_or("generate needs a fault list")?;
    let request = knobs.apply(GenerateRequest::from_fault_list(list).map_err(|e| e.to_string())?);
    let outcome = generate_maybe_cached(&knobs, &request)?;
    if json {
        print_outcome_json(&outcome)?;
    } else {
        print_outcome_text(&outcome);
    }
    if !outcome.verified {
        if let (false, Some(report)) = (json, &outcome.report) {
            println!("{report}");
        }
        return Err("generated test failed verification".into());
    }
    Ok(())
}

fn print_outcome_text(outcome: &GenerateOutcome) {
    println!("march test : {}", outcome.test);
    println!("complexity : {}n", outcome.test.complexity());
    if outcome.test.delay_count() > 0 {
        println!("delays     : {}", outcome.test.delay_count());
    }
    println!("verified   : {}", outcome.verified);
    if let Some(nr) = outcome.non_redundant {
        println!("non-redund.: {nr}");
    }
    let d = &outcome.diagnostics;
    println!(
        "search     : {} combinations, {} tours, {} candidates, {} µs",
        d.combinations,
        d.tours_tried,
        d.candidates,
        d.total_micros()
    );
    if d.solver_iterations > 0 || d.solver_restarts > 0 {
        println!(
            "solver     : {} ({} iterations, {} restarts)",
            d.solver, d.solver_iterations, d.solver_restarts
        );
    } else if !d.solver.is_empty() {
        println!("solver     : {} (exact)", d.solver);
    }
}

#[cfg(feature = "serde")]
fn print_outcome_json(outcome: &GenerateOutcome) -> Result<(), String> {
    use marchgen::json::ToJson;
    print!("{}", outcome.to_json_pretty());
    Ok(())
}

#[cfg(not(feature = "serde"))]
fn print_outcome_json(_outcome: &GenerateOutcome) -> Result<(), String> {
    Err("this build has no JSON support (rebuild with the `serde` feature)".into())
}

fn parse_march_arg(s: &str) -> Result<MarchTest, String> {
    known::by_name(s)
        .map(Ok)
        .unwrap_or_else(|| s.parse::<MarchTest>().map_err(|e| e.to_string()))
}

fn validate(args: &[String], json: bool) -> Result<(), String> {
    let [march, faults] = args else {
        return Err("validate needs <march> and <fault-list>".into());
    };
    let test = parse_march_arg(march)?;
    test.check_consistency()
        .map_err(|e| format!("inconsistent march test: {e}"))?;
    let models = parse_fault_list(faults).map_err(|e| e.to_string())?;
    let report = marchgen::sim::coverage::coverage_report(&test, &models, 6);
    if json {
        print_report_json(&test, &report)?;
    } else {
        print!("{report}");
    }
    if report.complete() {
        if !json {
            println!("verdict: full coverage");
        }
        Ok(())
    } else {
        Err("coverage incomplete".into())
    }
}

#[cfg(feature = "serde")]
fn print_report_json(
    test: &MarchTest,
    report: &marchgen::sim::CoverageReport,
) -> Result<(), String> {
    use marchgen::json::Json;
    let doc = Json::object([
        ("test", Json::Str(test.to_string())),
        ("complexity", Json::from(test.complexity())),
        ("report", marchgen::generator::serde::report_to_json(report)),
    ]);
    print!("{}", doc.render_pretty());
    Ok(())
}

#[cfg(not(feature = "serde"))]
fn print_report_json(
    _test: &MarchTest,
    _report: &marchgen::sim::CoverageReport,
) -> Result<(), String> {
    Err("this build has no JSON support (rebuild with the `serde` feature)".into())
}

fn analyze_cmd(args: &[String], json: bool) -> Result<(), String> {
    let march = args.first().ok_or("analyze needs a march test")?;
    let test = parse_march_arg(march)?;
    test.check_consistency()
        .map_err(|e| format!("inconsistent march test: {e}"))?;
    let c = analysis::analyze(&test);
    if json {
        return print_conditions_json(&test, &c);
    }
    println!("test       : {test}");
    println!("complexity : {}n", test.complexity());
    println!("SAF        : {}", c.saf);
    println!("TF         : {}", c.tf);
    println!("AF         : {}", c.af);
    println!("SOF        : {}", c.sof);
    println!("DRF        : {}", c.drf);
    println!("(sufficient conditions; use `validate` for exact simulation)");
    Ok(())
}

#[cfg(feature = "serde")]
fn print_conditions_json(test: &MarchTest, c: &analysis::Conditions) -> Result<(), String> {
    use marchgen::json::Json;
    let doc = Json::object([
        ("test", Json::Str(test.to_string())),
        ("complexity", Json::from(test.complexity())),
        (
            "conditions",
            Json::object([
                ("saf", Json::Bool(c.saf)),
                ("tf", Json::Bool(c.tf)),
                ("af", Json::Bool(c.af)),
                ("sof", Json::Bool(c.sof)),
                ("drf", Json::Bool(c.drf)),
            ]),
        ),
    ]);
    print!("{}", doc.render_pretty());
    Ok(())
}

#[cfg(not(feature = "serde"))]
fn print_conditions_json(_test: &MarchTest, _c: &analysis::Conditions) -> Result<(), String> {
    Err("this build has no JSON support (rebuild with the `serde` feature)".into())
}

fn codegen_cmd(args: &[String], json: bool) -> Result<(), String> {
    use marchgen::rtl::RtlOptions;

    let mut args = args.to_vec();
    let lang_flag = take_str_option(&mut args, "--lang")?;
    let name = take_str_option(&mut args, "--name")?;
    let addr_width = take_option(&mut args, "--addr-width")?;
    let data_width = take_option(&mut args, "--data-width")?;
    let delay_cycles = take_option(&mut args, "--delay-cycles")?;
    let no_testbench = take_flag(&mut args, "--no-testbench");

    let march = args.first().ok_or("codegen needs a march test")?;
    let test = parse_march_arg(march)?;
    test.check_consistency()
        .map_err(|e| format!("inconsistent march test: {e}"))?;

    // `--lang` is the documented spelling; the second positional is kept
    // for compatibility with the original `codegen <march> [c|rust]`.
    let lang = match (lang_flag, args.get(1).map(String::as_str)) {
        (Some(flag), Some(pos)) if flag != pos => {
            return Err(format!("both --lang {flag:?} and positional {pos:?} given"));
        }
        (Some(flag), _) => flag,
        (None, Some(pos)) => pos.to_owned(),
        (None, None) => "c".to_owned(),
    };
    if !matches!(lang.as_str(), "c" | "rust" | "sv") {
        return Err(format!("unknown language {lang:?} (use c, rust or sv)"));
    }
    // The RTL knobs only shape SystemVerilog; reject them elsewhere so a
    // stray `--addr-width` on `--lang c` is a loud error, not a no-op.
    if lang != "sv" {
        for (flag, given) in [
            ("--addr-width", addr_width.is_some()),
            ("--data-width", data_width.is_some()),
            ("--delay-cycles", delay_cycles.is_some()),
            ("--no-testbench", no_testbench),
        ] {
            if given {
                return Err(format!("{flag} only applies to --lang sv"));
            }
        }
    }

    let name = name.unwrap_or_else(|| "march_test".to_owned());
    let code = match lang.as_str() {
        "c" => codegen::to_c(&test, &name),
        "rust" => codegen::to_rust(&test, &name),
        _ => {
            let mut options = RtlOptions::default().with_name(&name);
            if let Some(w) = addr_width {
                options = options.with_addr_width(u32::try_from(w).unwrap_or(u32::MAX));
            }
            if let Some(w) = data_width {
                options = options.with_data_width(u32::try_from(w).unwrap_or(u32::MAX));
            }
            if let Some(cycles) = delay_cycles {
                options = options.with_delay_cycles(u32::try_from(cycles).unwrap_or(u32::MAX));
            }
            options = options.with_testbench(!no_testbench);
            marchgen::rtl::emit_sv(&test, &options).map_err(|e| e.to_string())?
        }
    };
    if json {
        print_codegen_json(&test, &lang, &codegen::sanitize_ident(&name), &code)
    } else {
        print!("{code}");
        Ok(())
    }
}

#[cfg(feature = "serde")]
fn print_codegen_json(test: &MarchTest, lang: &str, name: &str, code: &str) -> Result<(), String> {
    use marchgen::json::Json;
    let doc = Json::object([
        ("schema", Json::Int(1)),
        ("test", Json::Str(test.to_string())),
        ("complexity", Json::from(test.complexity())),
        ("lang", Json::from(lang)),
        ("name", Json::from(name)),
        ("code", Json::from(code)),
    ]);
    print!("{}", doc.render_pretty());
    Ok(())
}

#[cfg(not(feature = "serde"))]
fn print_codegen_json(
    _test: &MarchTest,
    _lang: &str,
    _name: &str,
    _code: &str,
) -> Result<(), String> {
    Err("this build has no JSON support (rebuild with the `serde` feature)".into())
}

fn known_cmd(args: &[String]) -> Result<(), String> {
    match args.first() {
        None => {
            for (name, test) in known::all() {
                println!("{name:<10} {:>3}n  {}", test.complexity(), test);
            }
            Ok(())
        }
        Some(name) => {
            let test = known::by_name(name).ok_or_else(|| format!("unknown test {name:?}"))?;
            println!("{test}");
            Ok(())
        }
    }
}

fn batch_cmd(
    args: &[String],
    json: bool,
    threads: Option<usize>,
    knobs: RequestKnobs,
) -> Result<(), String> {
    let path = args
        .first()
        .ok_or("batch needs a file of fault lists (one per line)")?;
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut lists: Vec<&str> = Vec::new();
    let mut requests = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let request = knobs.apply(
            GenerateRequest::from_fault_list(line)
                .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?,
        );
        lists.push(line);
        requests.push(request);
    }
    if requests.is_empty() {
        return Err(format!("{path}: no fault lists found"));
    }

    let mut batch = Batch::new();
    if let Some(threads) = threads {
        batch = batch.threads(threads);
    }
    let total = requests.len();
    let on_event = |event: marchgen::service::BatchEvent<'_>| match event {
        marchgen::service::BatchEvent::Started { index, request } => {
            eprintln!(
                "[{}/{total}] generating for {} models...",
                index + 1,
                request.faults.len()
            );
        }
        marchgen::service::BatchEvent::Finished { index, outcome } => {
            eprintln!("[{}/{total}] done: {}n", index + 1, outcome.complexity());
        }
        marchgen::service::BatchEvent::Failed { index, error } => {
            eprintln!("[{}/{total}] failed: {error}", index + 1);
        }
        marchgen::service::BatchEvent::Completed {
            total: batch_total,
            succeeded,
            failed,
        } => {
            eprintln!("batch complete: {succeeded}/{batch_total} generated, {failed} failed");
        }
    };
    #[cfg(feature = "serde")]
    let results = match knobs.open_cache()? {
        Some(cache) => batch.run_cached(&cache, requests, on_event),
        None => batch.run_with_progress(requests, on_event),
    };
    #[cfg(not(feature = "serde"))]
    let results = {
        knobs.reject_cache_dir()?;
        batch.run_with_progress(requests, on_event)
    };

    if json {
        print_batch_json(&lists, &results)?;
    } else {
        for (list, result) in lists.iter().zip(&results) {
            match result {
                Ok(outcome) => println!(
                    "{list:<40} {:>3}n  verified={}  {}",
                    outcome.complexity(),
                    outcome.verified,
                    outcome.test
                ),
                Err(error) => println!("{list:<40} ERROR {error}"),
            }
        }
    }
    let all_ok = results
        .iter()
        .all(|r| r.as_ref().map(|outcome| outcome.verified).unwrap_or(false));
    if all_ok {
        Ok(())
    } else {
        Err("some batch entries failed or did not verify".into())
    }
}

#[cfg(feature = "serde")]
fn print_batch_json(
    lists: &[&str],
    results: &[Result<GenerateOutcome, Error>],
) -> Result<(), String> {
    use marchgen::json::{Json, ToJson};
    let entries = lists
        .iter()
        .zip(results)
        .map(|(list, result)| match result {
            Ok(outcome) => Json::object([
                ("faults", Json::from(*list)),
                ("outcome", outcome.to_json()),
            ]),
            Err(error) => Json::object([
                ("faults", Json::from(*list)),
                ("error", Json::Str(error_chain(error))),
            ]),
        });
    print!("{}", Json::array(entries).render_pretty());
    Ok(())
}

#[cfg(not(feature = "serde"))]
fn print_batch_json(
    _lists: &[&str],
    _results: &[Result<GenerateOutcome, Error>],
) -> Result<(), String> {
    Err("this build has no JSON support (rebuild with the `serde` feature)".into())
}

/// Flattens an error and its sources into one line.
#[cfg(feature = "serde")]
fn error_chain(error: &Error) -> String {
    use std::error::Error as _;
    let mut text = error.to_string();
    let mut source = error.source();
    while let Some(cause) = source {
        text.push_str(": ");
        text.push_str(&cause.to_string());
        source = cause.source();
    }
    text
}
