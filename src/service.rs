//! The batch service layer: execute many [`GenerateRequest`]s across
//! worker threads with progress events.
//!
//! This is the first brick of the ROADMAP's production-scale service: a
//! synchronous, in-process scheduler with the shape a network front-end
//! needs — typed requests in, typed outcomes out, a shared pluggable
//! [`SolverRegistry`], and a callback stream for progress reporting.
//!
//! ```
//! use marchgen::service::Batch;
//! use marchgen::GenerateRequest;
//!
//! let requests = vec![
//!     GenerateRequest::from_fault_list("SAF").unwrap(),
//!     GenerateRequest::from_fault_list("SAF, TF").unwrap(),
//! ];
//! let results = Batch::new().run(requests);
//! assert_eq!(results[0].as_ref().unwrap().complexity(), 4);
//! assert_eq!(results[1].as_ref().unwrap().complexity(), 5);
//! ```

use crate::error::Error;
use marchgen_atsp::SolverRegistry;
#[cfg(feature = "serde")]
use marchgen_cache::{canonical_key_text, key_for_text, OutcomeCache};
use marchgen_generator::{generate_with_registry, GenerateOutcome, GenerateRequest};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A progress event emitted while a batch runs. Events for different
/// requests interleave arbitrarily; `index` ties them back to the input
/// order.
#[derive(Debug)]
pub enum BatchEvent<'a> {
    /// A worker picked up request `index`.
    Started {
        /// Position in the input vector.
        index: usize,
        /// The request being run.
        request: &'a GenerateRequest,
    },
    /// Request `index` finished successfully.
    Finished {
        /// Position in the input vector.
        index: usize,
        /// The produced outcome.
        outcome: &'a GenerateOutcome,
    },
    /// Request `index` failed.
    Failed {
        /// Position in the input vector.
        index: usize,
        /// The error it failed with.
        error: &'a Error,
    },
    /// The whole batch is done: every worker has drained and every
    /// per-request event has been delivered. Emitted exactly once, last
    /// — daemons and CLIs can key completion off this instead of
    /// counting `Finished`/`Failed` events.
    Completed {
        /// Requests in the batch.
        total: usize,
        /// How many produced an outcome.
        succeeded: usize,
        /// How many failed (`total - succeeded`).
        failed: usize,
    },
}

#[cfg(feature = "serde")]
impl BatchEvent<'_> {
    /// Encodes the event as one self-describing JSON object — the frame
    /// format of the daemon's `/v1/stream` endpoint (one frame per
    /// line). The `"event"` discriminator takes three values:
    ///
    /// * `"started"` — a worker picked up item `index`; carries the
    ///   item's canonical fault list,
    /// * `"item"` — item `index` finished; `"ok"` tells success from
    ///   failure, successes carry the outcome summary (headline results
    ///   plus per-phase diagnostics, see
    ///   [`GenerateOutcome::to_summary_json`]), failures carry the
    ///   error text,
    /// * `"completed"` — the terminal frame with the batch totals,
    ///   emitted exactly once, last.
    #[must_use]
    pub fn to_json(&self) -> marchgen_json::Json {
        use marchgen_json::Json;
        match self {
            BatchEvent::Started { index, request } => Json::object([
                ("event", Json::from("started")),
                ("index", Json::from(*index)),
                (
                    "faults",
                    Json::array(request.faults.iter().map(|m| Json::Str(m.name()))),
                ),
            ]),
            BatchEvent::Finished { index, outcome } => Json::object([
                ("event", Json::from("item")),
                ("index", Json::from(*index)),
                ("ok", Json::Bool(true)),
                ("outcome", outcome.to_summary_json()),
            ]),
            BatchEvent::Failed { index, error } => Json::object([
                ("event", Json::from("item")),
                ("index", Json::from(*index)),
                ("ok", Json::Bool(false)),
                ("error", Json::Str(error.to_string())),
            ]),
            BatchEvent::Completed {
                total,
                succeeded,
                failed,
            } => Json::object([
                ("event", Json::from("completed")),
                ("total", Json::from(*total)),
                ("succeeded", Json::from(*succeeded)),
                ("failed", Json::from(*failed)),
            ]),
        }
    }
}

/// A configurable multi-threaded batch executor over the generation
/// engine.
///
/// Requests are pulled from a shared queue by `threads` workers (scoped
/// threads — no `'static` bounds), each resolved against one shared
/// [`SolverRegistry`]. Results come back in input order, one
/// `Result` per request, so a single bad request never poisons the
/// batch.
pub struct Batch {
    threads: NonZeroUsize,
    registry: SolverRegistry,
}

impl Default for Batch {
    /// One worker per available CPU, built-in solver registry — the
    /// canonical configuration. `Default` owns the construction logic
    /// (rather than bouncing through [`Batch::new`]) so derived holders
    /// like `#[derive(Default)]` service structs get a fully working
    /// executor.
    fn default() -> Batch {
        let threads = std::thread::available_parallelism()
            .unwrap_or(NonZeroUsize::new(1).expect("1 is non-zero"));
        Batch {
            threads,
            registry: SolverRegistry::default(),
        }
    }
}

impl Batch {
    /// A batch executor with one worker per available CPU and the
    /// built-in solver registry (alias of [`Batch::default`]).
    #[must_use]
    pub fn new() -> Batch {
        Batch::default()
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Batch {
        self.threads = NonZeroUsize::new(threads.max(1)).expect("clamped to >= 1");
        self
    }

    /// Replaces the solver registry shared by all workers (register
    /// custom [`AtspSolver`](marchgen_atsp::AtspSolver) strategies here
    /// and select them per request via `SolverChoice::Custom`).
    #[must_use]
    pub fn registry(mut self, registry: SolverRegistry) -> Batch {
        self.registry = registry;
        self
    }

    /// Runs every request, returning one result per request in input
    /// order.
    #[must_use]
    pub fn run(&self, requests: Vec<GenerateRequest>) -> Vec<Result<GenerateOutcome, Error>> {
        self.run_with_progress(requests, |_| {})
    }

    /// [`Batch::run`] with a progress callback. The callback is invoked
    /// from worker threads (hence `Sync`) and must be cheap; it sees
    /// every [`BatchEvent`] exactly once, ending with the terminal
    /// [`BatchEvent::Completed`].
    #[must_use]
    pub fn run_with_progress(
        &self,
        requests: Vec<GenerateRequest>,
        on_event: impl Fn(BatchEvent<'_>) + Sync,
    ) -> Vec<Result<GenerateOutcome, Error>> {
        let total = requests.len();
        let results = self.run_workers(requests, &on_event, &|request| {
            generate_with_registry(request, &self.registry).map_err(Error::from)
        });
        let succeeded = results.iter().filter(|r| r.is_ok()).count();
        on_event(BatchEvent::Completed {
            total,
            succeeded,
            failed: total - succeeded,
        });
        results
    }

    /// The worker-pool core shared by [`Batch::run_with_progress`] and
    /// [`Batch::run_cached`]: runs every request through `compute`,
    /// emits the per-request events (not the terminal one — the caller
    /// owns batch totals).
    fn run_workers(
        &self,
        requests: Vec<GenerateRequest>,
        on_event: &(impl Fn(BatchEvent<'_>) + Sync),
        compute: &(impl Fn(&GenerateRequest) -> Result<GenerateOutcome, Error> + Sync),
    ) -> Vec<Result<GenerateOutcome, Error>> {
        let total = requests.len();
        let mut results: Vec<Option<Result<GenerateOutcome, Error>>> = Vec::new();
        results.resize_with(total, || None);
        let results = Mutex::new(results);
        let next = AtomicUsize::new(0);
        let workers = self.threads.get().min(total.max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(request) = requests.get(index) else {
                        break;
                    };
                    on_event(BatchEvent::Started { index, request });
                    // Requests left on automatic search threading would
                    // each spawn one shard worker per CPU *inside* a
                    // batch that already runs one worker per CPU — pin
                    // them to a single shard worker instead. Explicit
                    // `search_threads` choices are honored as-is, and
                    // the pinning never changes an outcome (sharding is
                    // deterministic by construction) or a cache key
                    // (`search_threads` is excluded from hashing).
                    let result = if workers > 1 && request.search_threads == 0 {
                        compute(&request.clone().with_search_threads(1))
                    } else {
                        compute(request)
                    };
                    match &result {
                        Ok(outcome) => on_event(BatchEvent::Finished { index, outcome }),
                        Err(error) => on_event(BatchEvent::Failed { index, error }),
                    }
                    results.lock().expect("results lock")[index] = Some(result);
                });
            }
        });

        results
            .into_inner()
            .expect("results lock")
            .into_iter()
            .map(|slot| slot.expect("every request ran"))
            .collect()
    }

    /// [`Batch::run`] through a content-addressed [`OutcomeCache`]:
    /// cached requests are answered without computing (their outcomes
    /// re-stamped `cache_hit`), identical misses *within* the batch are
    /// deduplicated onto one computation, and fresh outcomes are
    /// inserted for the next caller. Results stay in input order, one
    /// per request. Per-request progress events fire only for the
    /// deduplicated computations (cache hits are silent) but carry the
    /// *original input index* of the leading request, and the terminal
    /// [`BatchEvent::Completed`] covers the full request count.
    ///
    /// Leaders compute through [`OutcomeCache::get_or_compute`], so the
    /// single-flight guarantee holds *across* concurrent callers too: a
    /// batch racing another batch (or a single cached generate) for the
    /// same uncached problem funds one pipeline run, and the stored
    /// entry is always the canonical
    /// ([`GenerateRequest::normalize`]d) computation.
    #[cfg(feature = "serde")]
    #[must_use]
    pub fn run_cached(
        &self,
        cache: &OutcomeCache,
        requests: Vec<GenerateRequest>,
        on_event: impl Fn(BatchEvent<'_>) + Sync,
    ) -> Vec<Result<GenerateOutcome, Error>> {
        let total = requests.len();
        // Identity is the canonical key *text*, not the 128-bit hash:
        // FNV collisions between different requests must lead to two
        // computations, never to one request being served the other's
        // outcome.
        let canonicals: Vec<String> = requests.iter().map(canonical_key_text).collect();
        let mut slots: Vec<Option<Result<GenerateOutcome, Error>>> = Vec::new();
        slots.resize_with(total, || None);

        // Serve what the cache already has, then deduplicate the
        // remaining work by canonical text: one computation may answer
        // many slots.
        let mut leaders: Vec<usize> = Vec::new();
        for (index, canonical) in canonicals.iter().enumerate() {
            // `peek`, not `lookup`: a miss here is not a final answer —
            // the leader's `get_or_compute` does the miss accounting.
            if let Some(hit) = cache.peek(key_for_text(canonical), canonical) {
                slots[index] = Some(Ok(hit));
            } else if !leaders.iter().any(|&l| canonicals[l] == *canonical) {
                leaders.push(index);
            }
        }
        let miss_requests: Vec<GenerateRequest> =
            leaders.iter().map(|&l| requests[l].clone()).collect();
        // Translate worker indices (into the miss list) back to the
        // original input positions so progress lines stay meaningful.
        let computed = self.run_workers(
            miss_requests,
            &|event| {
                on_event(match event {
                    BatchEvent::Started { index, request } => BatchEvent::Started {
                        index: leaders[index],
                        request,
                    },
                    BatchEvent::Finished { index, outcome } => BatchEvent::Finished {
                        index: leaders[index],
                        outcome,
                    },
                    BatchEvent::Failed { index, error } => BatchEvent::Failed {
                        index: leaders[index],
                        error,
                    },
                    terminal @ BatchEvent::Completed { .. } => terminal,
                });
            },
            &|request| {
                cache
                    .get_or_compute(request, |normalized| {
                        generate_with_registry(normalized, &self.registry)
                    })
                    .map_err(Error::from)
            },
        );
        for (&leader, result) in leaders.iter().zip(computed) {
            // Fan the leader's result out to every slot sharing its
            // canonical text (`get_or_compute` already stored
            // successful outcomes).
            for index in leader..total {
                if slots[index].is_none() && canonicals[index] == canonicals[leader] {
                    slots[index] = Some(match &result {
                        Ok(outcome) if index != leader => {
                            let mut replay = outcome.clone();
                            replay.diagnostics.cache_hit = true;
                            Ok(replay)
                        }
                        other => other.clone(),
                    });
                }
            }
        }
        let succeeded = slots
            .iter()
            .filter(|slot| matches!(slot, Some(Ok(_))))
            .count();
        on_event(BatchEvent::Completed {
            total,
            succeeded,
            failed: total - succeeded,
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every request served"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_generator::GenerateError;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_batch() {
        assert!(Batch::new().run(Vec::new()).is_empty());
    }

    #[test]
    fn results_keep_input_order_and_isolate_failures() {
        let requests = vec![
            GenerateRequest::from_fault_list("SAF, TF").unwrap(),
            GenerateRequest::default(), // empty fault list → fails
            GenerateRequest::from_fault_list("SAF").unwrap(),
        ];
        let results = Batch::new().threads(2).run(requests);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().complexity(), 5);
        assert_eq!(
            results[1].as_ref().unwrap_err(),
            &Error::Generate(GenerateError::EmptyFaultList)
        );
        assert_eq!(results[2].as_ref().unwrap().complexity(), 4);
    }

    #[test]
    fn progress_events_cover_every_request_and_terminate() {
        let requests = vec![
            GenerateRequest::from_fault_list("SAF").unwrap(),
            GenerateRequest::default(),
            GenerateRequest::from_fault_list("TF").unwrap(),
        ];
        let started = AtomicUsize::new(0);
        let finished = AtomicUsize::new(0);
        let failed = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let _ = Batch::new()
            .threads(3)
            .run_with_progress(requests, |event| {
                match event {
                    BatchEvent::Started { .. } => started.fetch_add(1, Ordering::Relaxed),
                    BatchEvent::Finished { .. } => finished.fetch_add(1, Ordering::Relaxed),
                    BatchEvent::Failed { .. } => failed.fetch_add(1, Ordering::Relaxed),
                    BatchEvent::Completed {
                        total,
                        succeeded,
                        failed,
                    } => {
                        // Terminal event: every per-request event has
                        // already been delivered by now.
                        assert_eq!((total, succeeded, failed), (3, 2, 1));
                        assert_eq!(started.load(Ordering::Relaxed), 3);
                        completed.fetch_add(1, Ordering::Relaxed)
                    }
                };
            });
        assert_eq!(started.load(Ordering::Relaxed), 3);
        assert_eq!(finished.load(Ordering::Relaxed), 2);
        assert_eq!(failed.load(Ordering::Relaxed), 1);
        assert_eq!(
            completed.load(Ordering::Relaxed),
            1,
            "exactly one terminal event"
        );
    }

    /// `run_cached` answers repeats from the cache, deduplicates
    /// identical in-batch requests onto one computation, and keeps
    /// results in input order.
    #[cfg(feature = "serde")]
    #[test]
    fn run_cached_serves_hits_and_dedupes() {
        let cache = OutcomeCache::new(64);
        let saf = GenerateRequest::from_fault_list("SAF").unwrap();
        let saf_permuted = GenerateRequest::from_fault_list("SA1, SA0").unwrap();
        let tf = GenerateRequest::from_fault_list("TF").unwrap();
        let batch = Batch::new().threads(2);

        let first = batch.run_cached(
            &cache,
            vec![saf.clone(), tf.clone(), saf_permuted.clone()],
            |_| {},
        );
        assert_eq!(first.len(), 3);
        assert!(!first[0].as_ref().unwrap().diagnostics.cache_hit);
        assert!(
            first[2].as_ref().unwrap().diagnostics.cache_hit,
            "in-batch duplicate rides the leader's computation"
        );
        assert_eq!(
            first[0].as_ref().unwrap().test,
            first[2].as_ref().unwrap().test
        );
        // Two unique problems → two computations.
        assert_eq!(cache.stats().inserts, 2);

        // A re-run is all hits: no new computation.
        let again = batch.run_cached(&cache, vec![tf, saf], |_| {});
        assert!(again
            .iter()
            .all(|r| r.as_ref().unwrap().diagnostics.cache_hit));
        assert_eq!(cache.stats().inserts, 2);

        // Failures pass through per-slot and are never cached.
        let mixed = batch.run_cached(&cache, vec![GenerateRequest::default()], |_| {});
        assert!(mixed[0].is_err());
        assert_eq!(cache.stats().inserts, 2);
    }

    /// Every event kind encodes as a self-describing one-line frame
    /// with the `"event"` discriminator the stream clients switch on.
    #[cfg(feature = "serde")]
    #[test]
    fn batch_events_serialize_as_stream_frames() {
        use std::sync::Mutex;
        let requests = vec![
            GenerateRequest::from_fault_list("SAF").unwrap(),
            GenerateRequest::default(), // empty fault list → fails
        ];
        let frames: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let _ = Batch::new()
            .threads(1)
            .run_with_progress(requests, |event| {
                frames.lock().unwrap().push(event.to_json().render());
            });
        let frames = frames.into_inner().unwrap();
        assert_eq!(
            frames.len(),
            5,
            "started×2 + item×2 + completed: {frames:?}"
        );
        assert!(frames
            .iter()
            .all(|f| !f.contains('\n') && f.starts_with("{\"event\":\"")));
        assert!(
            frames[0]
                .starts_with("{\"event\":\"started\",\"index\":0,\"faults\":[\"SA0\",\"SA1\"]}"),
            "{}",
            frames[0]
        );
        assert!(
            frames.iter().any(|f| f.contains("\"event\":\"item\"")
                && f.contains("\"ok\":true")
                && f.contains("\"complexity\":4")
                && f.contains("\"diagnostics\"")),
            "{frames:?}"
        );
        assert!(
            frames
                .iter()
                .any(|f| f.contains("\"ok\":false") && f.contains("\"error\"")),
            "{frames:?}"
        );
        assert_eq!(
            frames.last().unwrap(),
            "{\"event\":\"completed\",\"total\":2,\"succeeded\":1,\"failed\":1}"
        );
    }

    #[test]
    fn single_thread_matches_parallel() {
        let requests: Vec<GenerateRequest> = ["SAF", "SAF, TF", "CFin"]
            .iter()
            .map(|list| GenerateRequest::from_fault_list(list).unwrap())
            .collect();
        let serial = Batch::new().threads(1).run(requests.clone());
        let parallel = Batch::new().threads(4).run(requests);
        for (a, b) in serial.iter().zip(&parallel) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.test, b.test);
            assert_eq!(a.verified, b.verified);
        }
    }

    /// Requests carrying explicit verifier / search-thread choices run
    /// unchanged through the batch layer, and the anti-oversubscription
    /// pinning of auto-threaded requests never changes their outcome.
    #[test]
    fn batch_honors_request_level_knobs() {
        use marchgen_generator::VerifierChoice;
        let auto = GenerateRequest::from_fault_list("CFin").unwrap();
        let pinned = auto.clone().with_search_threads(2);
        let scalar = auto.clone().with_verifier(VerifierChoice::Scalar);
        let results = Batch::new().threads(3).run(vec![auto, pinned, scalar]);
        let outcomes: Vec<_> = results.iter().map(|r| r.as_ref().unwrap()).collect();
        assert_eq!(outcomes[0].test, outcomes[1].test);
        assert_eq!(outcomes[0].test, outcomes[2].test);
        assert_eq!(outcomes[0].report, outcomes[2].report);
    }
}
