//! Stream resumption: sequence-numbered replay rings for `/v1/stream`.
//!
//! A streaming batch is expensive to lose. Before this module, a
//! `/v1/stream` client whose connection dropped mid-batch had exactly
//! one option: reconnect and resubmit, recomputing (or at best
//! re-serving from cache) everything it had already watched complete.
//! Now every stream is backed by a [`BatchStream`] — a bounded,
//! monotonically sequence-numbered ring of rendered frames — published
//! under a `batch_id` token in a process-wide [`StreamRegistry`]. The
//! serving path becomes:
//!
//! 1. A fresh `POST /v1/stream` creates a `BatchStream`, announces
//!    `{"event":"batch","batch_id":...,"seq":0}` as its first frame,
//!    and runs the batch on a worker thread that *publishes* every
//!    progress frame into the ring. The client's connection is just a
//!    **follower** of the ring from sequence 0.
//! 2. A reconnecting client sends `GET /v1/stream?resume=<batch_id>&`
//!    `from=<seq>`: missed frames still in the ring are replayed
//!    byte-identically, then the follower re-attaches live until the
//!    terminal frame. The computation itself never restarts — it kept
//!    running server-side while the client was gone (the same property
//!    that already fed cache waiters).
//!
//! Bounds, because every ring is held in memory: a ring keeps at most
//! [`RING_CAPACITY`] frames (a resumer further behind than that gets a
//! structured `resume_gap` error and must resubmit); the registry
//! retains at most [`MAX_RETAINED`] batches (oldest completed evicted
//! first) and expires completed batches [`RETAIN_COMPLETED`] after
//! their terminal frame. Gauges for all of this surface on
//! `/v1/stats`.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Most frames a batch ring retains; a resumer asking for anything
/// older receives a gap error instead of a silently incomplete replay.
pub const RING_CAPACITY: usize = 1024;
/// Most batches the registry retains at once; beyond it the oldest
/// completed (then oldest overall) batch loses resumability.
pub const MAX_RETAINED: usize = 64;
/// How long a completed batch stays resumable after its terminal frame.
pub const RETAIN_COMPLETED: Duration = Duration::from_secs(120);
/// Follower poll slice while waiting for the producer to publish more
/// frames (a condvar wait bound, not a busy loop).
const FOLLOW_POLL: Duration = Duration::from_millis(200);

/// Why a follow attempt could not serve frames.
#[derive(Debug)]
pub enum FollowError {
    /// The requested start sequence has been evicted from the ring: the
    /// client is too far behind to be replayed faithfully.
    Gap {
        /// The oldest sequence the ring can still replay.
        oldest: u64,
    },
    /// Frame delivery failed — the follower's peer went away.
    Io(std::io::Error),
}

/// Registry-wide frame-flow counters, shared by every ring the
/// registry creates (a batch ring increments them as it publishes,
/// replays and drops frames; `/v1/stats` and `/metrics` read them via
/// [`StreamRegistry::snapshot`]).
#[derive(Debug, Default)]
struct RingCounters {
    published: AtomicU64,
    replayed: AtomicU64,
    dropped: AtomicU64,
}

struct RingState {
    /// Retained frames; `frames[0]` carries sequence `base_seq`.
    frames: VecDeque<Arc<str>>,
    /// Sequence number of `frames.front()`.
    base_seq: u64,
    /// Sequence the next published frame will get.
    next_seq: u64,
    /// Set once the producer finished (successfully or not); no more
    /// frames will arrive.
    done: bool,
    finished_at: Option<Instant>,
}

/// One batch's replay ring: the producer publishes rendered frames,
/// any number of followers replay + tail them concurrently.
pub struct BatchStream {
    id: String,
    created: Instant,
    state: Mutex<RingState>,
    published: Condvar,
    counters: Arc<RingCounters>,
}

impl BatchStream {
    fn new(id: String, counters: Arc<RingCounters>) -> BatchStream {
        BatchStream {
            id,
            created: Instant::now(),
            state: Mutex::new(RingState {
                frames: VecDeque::new(),
                base_seq: 0,
                next_seq: 0,
                done: false,
                finished_at: None,
            }),
            published: Condvar::new(),
            counters,
        }
    }

    /// The resumption token clients present as `resume=<batch_id>`.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Publishes one frame. `render` receives the frame's assigned
    /// sequence number (so the producer can embed it in the frame
    /// itself) and returns the rendered line; the ring stores it and
    /// wakes every follower. Returns the assigned sequence.
    pub fn publish(&self, render: impl FnOnce(u64) -> String) -> u64 {
        let mut state = self.state.lock().expect("batch ring lock");
        let seq = state.next_seq;
        let line: Arc<str> = Arc::from(render(seq));
        state.next_seq += 1;
        state.frames.push_back(line);
        self.counters.published.fetch_add(1, Ordering::Relaxed);
        if state.frames.len() > RING_CAPACITY {
            state.frames.pop_front();
            state.base_seq += 1;
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
        }
        drop(state);
        self.published.notify_all();
        seq
    }

    /// Marks the batch finished: followers drain the ring and return
    /// instead of waiting for more frames. Idempotent.
    pub fn complete(&self) {
        let mut state = match self.state.lock() {
            Ok(state) => state,
            // Completion must also run from unwind paths.
            Err(poisoned) => poisoned.into_inner(),
        };
        if !state.done {
            state.done = true;
            state.finished_at = Some(Instant::now());
        }
        drop(state);
        self.published.notify_all();
    }

    /// `true` once [`BatchStream::complete`] ran.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state.lock().expect("batch ring lock").done
    }

    /// Validates a resume point *before* any response head is written:
    /// `Ok` when `from` is still replayable (or in the live future),
    /// `Err(oldest)` when it has been evicted from the ring.
    ///
    /// # Errors
    ///
    /// The oldest still-replayable sequence, for the error message.
    pub fn check_from(&self, from: u64) -> Result<(), u64> {
        let state = self.state.lock().expect("batch ring lock");
        if from < state.base_seq {
            Err(state.base_seq)
        } else {
            Ok(())
        }
    }

    /// Serves frames `from..` to `deliver`, replaying what the ring
    /// holds and then tailing live publishes until the batch completes.
    /// `deliver` returning an error (the peer hung up) aborts the
    /// follow; the batch itself is unaffected.
    ///
    /// # Errors
    ///
    /// [`FollowError::Gap`] when `from` was already evicted (possible
    /// even after a successful [`BatchStream::check_from`] if the
    /// producer laps the follower mid-flight), [`FollowError::Io`] when
    /// delivery failed.
    pub fn follow(
        &self,
        from: u64,
        mut deliver: impl FnMut(&str) -> std::io::Result<()>,
    ) -> Result<(), FollowError> {
        let mut cursor = from;
        let mut state = self.state.lock().expect("batch ring lock");
        loop {
            if cursor < state.base_seq {
                return Err(FollowError::Gap {
                    oldest: state.base_seq,
                });
            }
            // Batch up everything currently available past the cursor,
            // then deliver outside the lock: a stalled peer must not
            // block the producer or other followers.
            let available: Vec<Arc<str>> = state
                .frames
                .iter()
                .skip((cursor - state.base_seq) as usize)
                .cloned()
                .collect();
            let done = state.done;
            drop(state);
            for line in &available {
                deliver(line).map_err(FollowError::Io)?;
                cursor += 1;
                self.counters.replayed.fetch_add(1, Ordering::Relaxed);
            }
            if done && available.is_empty() {
                return Ok(());
            }
            state = self.state.lock().expect("batch ring lock");
            while !state.done && state.next_seq <= cursor {
                state = self
                    .published
                    .wait_timeout(state, FOLLOW_POLL)
                    .expect("batch ring lock")
                    .0;
            }
        }
    }
}

/// Completes a [`BatchStream`] on drop — the producer-side guard that
/// guarantees followers are released even when the producing thread
/// unwinds from a panic mid-batch.
pub struct CompleteOnDrop(pub Arc<BatchStream>);

impl Drop for CompleteOnDrop {
    fn drop(&mut self) {
        self.0.complete();
    }
}

/// Cumulative counters and gauges of a [`StreamRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamRegistrySnapshot {
    /// Batches currently resumable (running or within retention).
    pub retained: u64,
    /// Batch streams ever registered.
    pub started: u64,
    /// Successful resume attachments.
    pub resumed: u64,
    /// Completed batches dropped after [`RETAIN_COMPLETED`].
    pub expired: u64,
    /// Batches dropped early because the registry hit [`MAX_RETAINED`].
    pub evicted: u64,
    /// Frames published into rings (all batches, cumulative).
    pub frames_published: u64,
    /// Frames delivered to followers — ring replays and live tails
    /// alike (one frame delivered to two followers counts twice).
    pub frames_replayed: u64,
    /// Frames evicted from a ring because it outgrew [`RING_CAPACITY`]
    /// (each is a sequence a late resumer can no longer replay).
    pub frames_dropped: u64,
    /// Frames currently held across every retained ring (gauge; bounds
    /// the registry's frame memory).
    pub ring_frames: u64,
}

/// The process-wide table of resumable batches, keyed by `batch_id`.
#[derive(Default)]
pub struct StreamRegistry {
    batches: Mutex<HashMap<String, Arc<BatchStream>>>,
    id_seq: AtomicU64,
    started: AtomicU64,
    resumed: AtomicU64,
    expired: AtomicU64,
    evicted: AtomicU64,
    ring: Arc<RingCounters>,
}

impl StreamRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> StreamRegistry {
        StreamRegistry::default()
    }

    /// Creates, registers and returns a fresh batch stream, sweeping
    /// expired entries and enforcing [`MAX_RETAINED`] first.
    pub fn begin(&self) -> Arc<BatchStream> {
        let id = new_batch_id(self.id_seq.fetch_add(1, Ordering::Relaxed));
        let stream = Arc::new(BatchStream::new(id.clone(), Arc::clone(&self.ring)));
        self.started.fetch_add(1, Ordering::Relaxed);
        let mut batches = self.batches.lock().expect("stream registry lock");
        Self::expire(&mut batches, &self.expired);
        Self::enforce_cap(&mut batches, &self.evicted);
        batches.insert(id, Arc::clone(&stream));
        stream
    }

    /// Looks a resume token up, counting a successful attachment.
    /// `None` for unknown or already-expired tokens.
    #[must_use]
    pub fn resume(&self, batch_id: &str) -> Option<Arc<BatchStream>> {
        let mut batches = self.batches.lock().expect("stream registry lock");
        Self::expire(&mut batches, &self.expired);
        let stream = batches.get(batch_id).cloned();
        drop(batches);
        if stream.is_some() {
            self.resumed.fetch_add(1, Ordering::Relaxed);
        }
        stream
    }

    /// Drops completed batches past their retention window. Followers
    /// holding an `Arc` keep streaming; the batch merely stops being
    /// resumable.
    fn expire(batches: &mut HashMap<String, Arc<BatchStream>>, expired: &AtomicU64) {
        let now = Instant::now();
        let before = batches.len();
        batches.retain(|_, stream| {
            let state = stream.state.lock().expect("batch ring lock");
            state
                .finished_at
                .is_none_or(|at| now.saturating_duration_since(at) < RETAIN_COMPLETED)
        });
        expired.fetch_add((before - batches.len()) as u64, Ordering::Relaxed);
    }

    /// Makes room for one incoming batch: while the table would exceed
    /// [`MAX_RETAINED`], drops the oldest batches, completed ones first.
    fn enforce_cap(batches: &mut HashMap<String, Arc<BatchStream>>, evicted: &AtomicU64) {
        if batches.len() >= MAX_RETAINED {
            let mut victims: Vec<(bool, Instant, String)> = batches
                .iter()
                .map(|(id, stream)| {
                    let done = stream.is_done();
                    // `!done` sorts running batches after completed
                    // ones, so live streams are the last to lose
                    // resumability.
                    (!done, stream.created, id.clone())
                })
                .collect();
            victims.sort();
            for (_, _, id) in victims.into_iter().take(batches.len() + 1 - MAX_RETAINED) {
                batches.remove(&id);
                evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current counters and gauges.
    #[must_use]
    pub fn snapshot(&self) -> StreamRegistrySnapshot {
        let batches = self.batches.lock().expect("stream registry lock");
        let retained = batches.len() as u64;
        let ring_frames = batches
            .values()
            .map(|stream| stream.state.lock().expect("batch ring lock").frames.len() as u64)
            .sum();
        drop(batches);
        StreamRegistrySnapshot {
            retained,
            started: self.started.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            frames_published: self.ring.published.load(Ordering::Relaxed),
            frames_replayed: self.ring.replayed.load(Ordering::Relaxed),
            frames_dropped: self.ring.dropped.load(Ordering::Relaxed),
            ring_frames,
        }
    }
}

/// An unguessable-enough, process-unique resume token. Uniqueness comes
/// from the sequence; the [`RandomState`](std::collections::hash_map::RandomState)
/// prefix keeps tokens from being enumerable across batches (they are
/// capability tokens, if weak ones — resuming only replays progress
/// frames).
fn new_batch_id(seq: u64) -> String {
    static STATE: OnceLock<std::collections::hash_map::RandomState> = OnceLock::new();
    let mut hasher = STATE
        .get_or_init(std::collections::hash_map::RandomState::new)
        .build_hasher();
    hasher.write_u64(seq);
    hasher.write_u32(std::process::id());
    format!("b-{:016x}-{seq:x}", hasher.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(stream: &BatchStream, from: u64) -> Vec<String> {
        let mut seen = Vec::new();
        stream
            .follow(from, |line| {
                seen.push(line.to_owned());
                Ok(())
            })
            .expect("follow completes");
        seen
    }

    #[test]
    fn frames_are_sequenced_replayed_and_tailed() {
        let registry = StreamRegistry::new();
        let stream = registry.begin();
        assert!(stream.id().starts_with("b-"));
        for n in 0..3 {
            let seq = stream.publish(|seq| format!("frame-{seq}"));
            assert_eq!(seq, n);
        }
        // A follower started after completion replays everything.
        let tail = Arc::clone(&stream);
        let tailer = std::thread::spawn(move || collect(&tail, 1));
        // Give the tailer a moment to catch up and block on the ring.
        std::thread::sleep(Duration::from_millis(50));
        stream.publish(|seq| format!("frame-{seq}"));
        stream.complete();
        assert_eq!(
            collect(&stream, 0),
            ["frame-0", "frame-1", "frame-2", "frame-3"]
        );
        // The live tailer saw the replay (from 1) plus the late frame.
        assert_eq!(tailer.join().unwrap(), ["frame-1", "frame-2", "frame-3"]);
        // Resuming from the exact end of a finished stream returns
        // immediately with nothing.
        assert_eq!(collect(&stream, 4), Vec::<String>::new());
    }

    #[test]
    fn ring_eviction_produces_gap_errors_not_silent_holes() {
        let stream = StreamRegistry::new().begin();
        for _ in 0..(RING_CAPACITY + 10) {
            stream.publish(|seq| format!("f{seq}"));
        }
        stream.complete();
        assert!(stream.check_from(0).is_err());
        let Err(FollowError::Gap { oldest }) = stream.follow(0, |_| Ok(())) else {
            panic!("evicted start must be a gap error");
        };
        assert_eq!(oldest, 10);
        assert!(stream.check_from(oldest).is_ok());
        assert_eq!(collect(&stream, oldest).len(), RING_CAPACITY);
    }

    #[test]
    fn delivery_errors_abort_the_follow_but_not_the_batch() {
        let stream = StreamRegistry::new().begin();
        stream.publish(|seq| format!("f{seq}"));
        stream.publish(|seq| format!("f{seq}"));
        let result = stream.follow(0, |_| Err(std::io::Error::other("peer gone")));
        assert!(matches!(result, Err(FollowError::Io(_))));
        // The ring is intact for the next follower.
        stream.complete();
        assert_eq!(collect(&stream, 0), ["f0", "f1"]);
    }

    #[test]
    fn complete_on_drop_releases_followers_on_unwind() {
        let stream = StreamRegistry::new().begin();
        let producer = Arc::clone(&stream);
        let handle = std::thread::spawn(move || {
            let _guard = CompleteOnDrop(Arc::clone(&producer));
            producer.publish(|seq| format!("f{seq}"));
            panic!("producer died mid-batch");
        });
        assert!(handle.join().is_err());
        // Without the guard this would block forever.
        assert_eq!(collect(&stream, 0), ["f0"]);
    }

    #[test]
    fn registry_resumes_known_tokens_and_counts() {
        let registry = StreamRegistry::new();
        let stream = registry.begin();
        assert!(registry.resume("b-nonexistent").is_none());
        let found = registry.resume(stream.id()).expect("token resolves");
        assert!(Arc::ptr_eq(&found, &stream));
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.started, 1);
        assert_eq!(snapshot.resumed, 1);
        assert_eq!(snapshot.retained, 1);
    }

    #[test]
    fn retained_batches_are_capped_with_completed_evicted_first() {
        let registry = StreamRegistry::new();
        let keep_alive: Vec<_> = (0..MAX_RETAINED).map(|_| registry.begin()).collect();
        // Complete the first few; they become the preferred victims.
        for stream in keep_alive.iter().take(8) {
            stream.complete();
        }
        let newcomer = registry.begin();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.retained as usize, MAX_RETAINED);
        assert_eq!(snapshot.evicted, 1);
        // The evicted one is a completed batch, not a running one: the
        // newcomer and every running stream still resolve.
        assert!(registry.resume(newcomer.id()).is_some());
        for stream in keep_alive.iter().skip(8) {
            assert!(registry.resume(stream.id()).is_some(), "running stays");
        }
        let resolved: usize = keep_alive
            .iter()
            .take(8)
            .filter(|s| registry.resume(s.id()).is_some())
            .count();
        assert_eq!(resolved, 7, "exactly one completed batch was evicted");
    }

    #[test]
    fn frame_counters_track_publish_replay_drop_and_occupancy() {
        let registry = StreamRegistry::new();
        let stream = registry.begin();
        for _ in 0..(RING_CAPACITY + 3) {
            stream.publish(|seq| format!("f{seq}"));
        }
        stream.complete();
        // One follower replays the whole surviving ring.
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.frames_published, (RING_CAPACITY + 3) as u64);
        assert_eq!(snapshot.frames_dropped, 3);
        assert_eq!(snapshot.ring_frames, RING_CAPACITY as u64);
        assert_eq!(snapshot.frames_replayed, 0);
        assert_eq!(collect(&stream, 3).len(), RING_CAPACITY);
        assert_eq!(
            registry.snapshot().frames_replayed,
            RING_CAPACITY as u64,
            "every delivered frame counts as replayed"
        );
    }

    #[test]
    fn batch_ids_are_unique_and_unpredictable_shaped() {
        let registry = StreamRegistry::new();
        let a = registry.begin();
        let b = registry.begin();
        assert_ne!(a.id(), b.id());
    }
}
