//! The classical memory fault model taxonomy (van de Goor \[1\], \[9\])
//! covered by the paper's Table 3, plus the read-fault and retention
//! extensions of the works it cites (\[2\], \[6\]).

use crate::dir::TransitionDir;
use marchgen_model::Bit;
use std::fmt;

/// The two address-decoder fault mechanisms modelled on a cell pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AdfKind {
    /// Write-decoder fault: writes directed at one address also (or
    /// instead) reach the other cell of the pair.
    Write,
    /// Read-decoder fault: reads of one address return the other cell's
    /// content.
    Read,
}

impl fmt::Display for AdfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdfKind::Write => "w",
            AdfKind::Read => "r",
        })
    }
}

/// A memory fault model.
///
/// Each variant describes a *family* of physical fault instances: a
/// single-cell model has one instance per memory cell, a coupling model
/// one instance per ordered pair of distinct cells. The generator works
/// on the per-model [`CoverageRequirement`](crate::CoverageRequirement)s
/// (via [`requirements_for`](crate::requirements_for)); the simulator
/// verifies every instance behaviourally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultModel {
    /// SAF — the cell is stuck at the given value.
    StuckAt(Bit),
    /// TF — the cell cannot perform the given write transition.
    Transition(TransitionDir),
    /// SOF — the cell is disconnected (stuck-open); reads return the
    /// sense-amplifier latch, i.e. the value of the *previous* read.
    StuckOpen,
    /// ADF — address decoder fault of the given kind.
    AddressDecoder(AdfKind),
    /// CFin ⟨dir⟩ — inversion coupling: the aggressor transition flips
    /// the victim.
    CouplingInversion(TransitionDir),
    /// CFid ⟨dir, value⟩ — idempotent coupling: the aggressor transition
    /// forces the victim to `value`.
    CouplingIdempotent(TransitionDir, Bit),
    /// CFst ⟨state, value⟩ — state coupling: while the aggressor holds
    /// `state`, the victim is forced to `value`.
    CouplingState(Bit, Bit),
    /// RDF ⟨value⟩ — read-destructive: reading a cell holding `value`
    /// flips it and returns the flipped value.
    ReadDestructive(Bit),
    /// DRDF ⟨value⟩ — deceptive read-destructive: reading a cell holding
    /// `value` returns the correct value but flips the cell.
    DeceptiveReadDestructive(Bit),
    /// IRF ⟨value⟩ — incorrect-read: reading a cell holding `value`
    /// returns the complement, the cell itself is untouched.
    IncorrectRead(Bit),
    /// DRF ⟨value⟩ — data retention: a cell holding `value` decays to the
    /// complement after the wait period `T`.
    DataRetention(Bit),
}

impl FaultModel {
    /// `true` when the model involves a pair of coupled cells (its
    /// instances are ordered cell pairs).
    #[must_use]
    pub fn is_pair_fault(&self) -> bool {
        matches!(
            self,
            FaultModel::AddressDecoder(_)
                | FaultModel::CouplingInversion(_)
                | FaultModel::CouplingIdempotent(..)
                | FaultModel::CouplingState(..)
        )
    }

    /// A short canonical name, parseable by
    /// [`parse_fault_list`](crate::parse_fault_list).
    #[must_use]
    pub fn name(&self) -> String {
        self.to_string()
    }

    /// All models of the classical taxonomy, for exhaustive sweeps.
    #[must_use]
    pub fn all_classical() -> Vec<FaultModel> {
        let mut v = Vec::new();
        v.extend(Bit::ALL.map(FaultModel::StuckAt));
        v.extend(TransitionDir::ALL.map(FaultModel::Transition));
        v.push(FaultModel::StuckOpen);
        v.push(FaultModel::AddressDecoder(AdfKind::Write));
        v.push(FaultModel::AddressDecoder(AdfKind::Read));
        v.extend(TransitionDir::ALL.map(FaultModel::CouplingInversion));
        for d in TransitionDir::ALL {
            for b in Bit::ALL {
                v.push(FaultModel::CouplingIdempotent(d, b));
            }
        }
        for s in Bit::ALL {
            for f in Bit::ALL {
                v.push(FaultModel::CouplingState(s, f));
            }
        }
        v.extend(Bit::ALL.map(FaultModel::ReadDestructive));
        v.extend(Bit::ALL.map(FaultModel::DeceptiveReadDestructive));
        v.extend(Bit::ALL.map(FaultModel::IncorrectRead));
        v.extend(Bit::ALL.map(FaultModel::DataRetention));
        v
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::StuckAt(b) => write!(f, "SA{b}"),
            FaultModel::Transition(d) => write!(f, "TF<{d}>"),
            FaultModel::StuckOpen => f.write_str("SOF"),
            FaultModel::AddressDecoder(k) => write!(f, "ADF<{k}>"),
            FaultModel::CouplingInversion(d) => write!(f, "CFin<{d}>"),
            FaultModel::CouplingIdempotent(d, b) => write!(f, "CFid<{d},{b}>"),
            FaultModel::CouplingState(s, v) => write!(f, "CFst<{s},{v}>"),
            FaultModel::ReadDestructive(b) => write!(f, "RDF<{b}>"),
            FaultModel::DeceptiveReadDestructive(b) => write!(f, "DRDF<{b}>"),
            FaultModel::IncorrectRead(b) => write!(f, "IRF<{b}>"),
            FaultModel::DataRetention(b) => write!(f, "DRF<{b}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_taxonomy_size() {
        // 2 SAF + 2 TF + 1 SOF + 2 ADF + 2 CFin + 4 CFid + 4 CFst
        // + 2 RDF + 2 DRDF + 2 IRF + 2 DRF = 25.
        assert_eq!(FaultModel::all_classical().len(), 25);
    }

    #[test]
    fn display_names() {
        assert_eq!(FaultModel::StuckAt(Bit::Zero).to_string(), "SA0");
        assert_eq!(
            FaultModel::Transition(TransitionDir::Up).to_string(),
            "TF<↑>"
        );
        assert_eq!(
            FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero).to_string(),
            "CFid<↑,0>"
        );
        assert_eq!(
            FaultModel::AddressDecoder(AdfKind::Read).to_string(),
            "ADF<r>"
        );
    }

    #[test]
    fn pair_fault_classification() {
        assert!(FaultModel::CouplingInversion(TransitionDir::Up).is_pair_fault());
        assert!(FaultModel::AddressDecoder(AdfKind::Write).is_pair_fault());
        assert!(!FaultModel::StuckAt(Bit::One).is_pair_fault());
        assert!(!FaultModel::DataRetention(Bit::One).is_pair_fault());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = FaultModel::all_classical()
            .iter()
            .map(FaultModel::name)
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), FaultModel::all_classical().len());
    }
}
