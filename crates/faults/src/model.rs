//! The classical memory fault model taxonomy (van de Goor \[1\], \[9\])
//! covered by the paper's Table 3, plus the read-fault and retention
//! extensions of the works it cites (\[2\], \[6\]).

use crate::dir::TransitionDir;
use marchgen_model::Bit;
use std::fmt;

/// The two address-decoder fault mechanisms modelled on a cell pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AdfKind {
    /// Write-decoder fault: writes directed at one address also (or
    /// instead) reach the other cell of the pair.
    Write,
    /// Read-decoder fault: reads of one address return the other cell's
    /// content.
    Read,
}

impl fmt::Display for AdfKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdfKind::Write => "w",
            AdfKind::Read => "r",
        })
    }
}

/// A memory fault model.
///
/// Each variant describes a *family* of physical fault instances: a
/// single-cell model has one instance per memory cell, a coupling model
/// one instance per ordered pair of distinct cells. The generator works
/// on the per-model [`CoverageRequirement`](crate::CoverageRequirement)s
/// (via [`requirements_for`](crate::requirements_for)); the simulator
/// verifies every instance behaviourally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultModel {
    /// SAF — the cell is stuck at the given value.
    StuckAt(Bit),
    /// TF — the cell cannot perform the given write transition.
    Transition(TransitionDir),
    /// SOF — the cell is disconnected (stuck-open); reads return the
    /// sense-amplifier latch, i.e. the value of the *previous* read.
    StuckOpen,
    /// ADF — address decoder fault of the given kind.
    AddressDecoder(AdfKind),
    /// CFin ⟨dir⟩ — inversion coupling: the aggressor transition flips
    /// the victim.
    CouplingInversion(TransitionDir),
    /// CFid ⟨dir, value⟩ — idempotent coupling: the aggressor transition
    /// forces the victim to `value`.
    CouplingIdempotent(TransitionDir, Bit),
    /// CFst ⟨state, value⟩ — state coupling: while the aggressor holds
    /// `state`, the victim is forced to `value`.
    CouplingState(Bit, Bit),
    /// RDF ⟨value⟩ — read-destructive: reading a cell holding `value`
    /// flips it and returns the flipped value.
    ReadDestructive(Bit),
    /// DRDF ⟨value⟩ — deceptive read-destructive: reading a cell holding
    /// `value` returns the correct value but flips the cell.
    DeceptiveReadDestructive(Bit),
    /// IRF ⟨value⟩ — incorrect-read: reading a cell holding `value`
    /// returns the complement, the cell itself is untouched.
    IncorrectRead(Bit),
    /// DRF ⟨value⟩ — data retention: a cell holding `value` decays to the
    /// complement after the wait period `T`.
    DataRetention(Bit),
    /// dRDF ⟨value⟩ — two-operation dynamic read-destructive: a read of
    /// `value` *immediately after writing* `value` to the same cell flips
    /// the cell and returns the flipped value. (Reads not preceded by the
    /// write behave normally — the static RDF does not cover this.)
    DynamicReadDestructive(Bit),
    /// dDRDF ⟨value⟩ — dynamic deceptive read-destructive: the
    /// write-then-read sequence returns the correct value but flips the
    /// cell.
    DynamicDeceptiveReadDestructive(Bit),
    /// dIRF ⟨value⟩ — dynamic incorrect-read: the write-then-read
    /// sequence returns the complement; the cell itself is untouched.
    DynamicIncorrectRead(Bit),
    /// LCF ⟨value⟩ — linked idempotent coupling: CFid ⟨↑,value⟩ and
    /// CFid ⟨↓,v̄alue⟩ share one aggressor/victim pair, so the two
    /// component faults can mask each other under naive excitation
    /// ordering.
    LinkedIdempotent(Bit),
}

impl FaultModel {
    /// `true` when the model involves a pair of coupled cells (its
    /// instances are ordered cell pairs).
    #[must_use]
    pub fn is_pair_fault(&self) -> bool {
        matches!(
            self,
            FaultModel::AddressDecoder(_)
                | FaultModel::CouplingInversion(_)
                | FaultModel::CouplingIdempotent(..)
                | FaultModel::CouplingState(..)
                | FaultModel::LinkedIdempotent(..)
        )
    }

    /// A short canonical name, parseable by
    /// [`parse_fault_list`](crate::parse_fault_list).
    #[must_use]
    pub fn name(&self) -> String {
        self.to_string()
    }

    /// All models of the classical taxonomy, for exhaustive sweeps.
    #[must_use]
    pub fn all_classical() -> Vec<FaultModel> {
        let mut v = Vec::new();
        v.extend(Bit::ALL.map(FaultModel::StuckAt));
        v.extend(TransitionDir::ALL.map(FaultModel::Transition));
        v.push(FaultModel::StuckOpen);
        v.push(FaultModel::AddressDecoder(AdfKind::Write));
        v.push(FaultModel::AddressDecoder(AdfKind::Read));
        v.extend(TransitionDir::ALL.map(FaultModel::CouplingInversion));
        for d in TransitionDir::ALL {
            for b in Bit::ALL {
                v.push(FaultModel::CouplingIdempotent(d, b));
            }
        }
        for s in Bit::ALL {
            for f in Bit::ALL {
                v.push(FaultModel::CouplingState(s, f));
            }
        }
        v.extend(Bit::ALL.map(FaultModel::ReadDestructive));
        v.extend(Bit::ALL.map(FaultModel::DeceptiveReadDestructive));
        v.extend(Bit::ALL.map(FaultModel::IncorrectRead));
        v.extend(Bit::ALL.map(FaultModel::DataRetention));
        v
    }

    /// The classical taxonomy plus the linked and two-operation dynamic
    /// extensions, for exhaustive sweeps over everything the lowering
    /// layer supports.
    #[must_use]
    pub fn all_extended() -> Vec<FaultModel> {
        let mut v = FaultModel::all_classical();
        v.extend(Bit::ALL.map(FaultModel::DynamicReadDestructive));
        v.extend(Bit::ALL.map(FaultModel::DynamicDeceptiveReadDestructive));
        v.extend(Bit::ALL.map(FaultModel::DynamicIncorrectRead));
        v.extend(Bit::ALL.map(FaultModel::LinkedIdempotent));
        v
    }

    /// The model's *class* label — the family name without polarity or
    /// direction qualifiers. This is the fixed metric-label vocabulary
    /// ([`FAULT_CLASS_LABELS`]) used by the daemon's per-class counters.
    #[must_use]
    pub fn class_label(&self) -> &'static str {
        match self {
            FaultModel::StuckAt(_) => "SAF",
            FaultModel::Transition(_) => "TF",
            FaultModel::StuckOpen => "SOF",
            FaultModel::AddressDecoder(_) => "ADF",
            FaultModel::CouplingInversion(_) => "CFin",
            FaultModel::CouplingIdempotent(..) => "CFid",
            FaultModel::CouplingState(..) => "CFst",
            FaultModel::ReadDestructive(_) => "RDF",
            FaultModel::DeceptiveReadDestructive(_) => "DRDF",
            FaultModel::IncorrectRead(_) => "IRF",
            FaultModel::DataRetention(_) => "DRF",
            FaultModel::DynamicReadDestructive(_) => "dRDF",
            FaultModel::DynamicDeceptiveReadDestructive(_) => "dDRDF",
            FaultModel::DynamicIncorrectRead(_) => "dIRF",
            FaultModel::LinkedIdempotent(_) => "LCF",
        }
    }
}

/// The fixed `fault_class` metric-label vocabulary, in canonical model
/// order. Every [`FaultModel::class_label`] value appears exactly once.
pub const FAULT_CLASS_LABELS: [&str; 15] = [
    "SAF", "TF", "SOF", "ADF", "CFin", "CFid", "CFst", "RDF", "DRDF", "IRF", "DRF", "dRDF",
    "dDRDF", "dIRF", "LCF",
];

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::StuckAt(b) => write!(f, "SA{b}"),
            FaultModel::Transition(d) => write!(f, "TF<{d}>"),
            FaultModel::StuckOpen => f.write_str("SOF"),
            FaultModel::AddressDecoder(k) => write!(f, "ADF<{k}>"),
            FaultModel::CouplingInversion(d) => write!(f, "CFin<{d}>"),
            FaultModel::CouplingIdempotent(d, b) => write!(f, "CFid<{d},{b}>"),
            FaultModel::CouplingState(s, v) => write!(f, "CFst<{s},{v}>"),
            FaultModel::ReadDestructive(b) => write!(f, "RDF<{b}>"),
            FaultModel::DeceptiveReadDestructive(b) => write!(f, "DRDF<{b}>"),
            FaultModel::IncorrectRead(b) => write!(f, "IRF<{b}>"),
            FaultModel::DataRetention(b) => write!(f, "DRF<{b}>"),
            FaultModel::DynamicReadDestructive(b) => write!(f, "dRDF<{b}>"),
            FaultModel::DynamicDeceptiveReadDestructive(b) => write!(f, "dDRDF<{b}>"),
            FaultModel::DynamicIncorrectRead(b) => write!(f, "dIRF<{b}>"),
            FaultModel::LinkedIdempotent(b) => write!(f, "LCF<{b}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_taxonomy_size() {
        // 2 SAF + 2 TF + 1 SOF + 2 ADF + 2 CFin + 4 CFid + 4 CFst
        // + 2 RDF + 2 DRDF + 2 IRF + 2 DRF = 25.
        assert_eq!(FaultModel::all_classical().len(), 25);
    }

    #[test]
    fn display_names() {
        assert_eq!(FaultModel::StuckAt(Bit::Zero).to_string(), "SA0");
        assert_eq!(
            FaultModel::Transition(TransitionDir::Up).to_string(),
            "TF<↑>"
        );
        assert_eq!(
            FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero).to_string(),
            "CFid<↑,0>"
        );
        assert_eq!(
            FaultModel::AddressDecoder(AdfKind::Read).to_string(),
            "ADF<r>"
        );
    }

    #[test]
    fn pair_fault_classification() {
        assert!(FaultModel::CouplingInversion(TransitionDir::Up).is_pair_fault());
        assert!(FaultModel::AddressDecoder(AdfKind::Write).is_pair_fault());
        assert!(!FaultModel::StuckAt(Bit::One).is_pair_fault());
        assert!(!FaultModel::DataRetention(Bit::One).is_pair_fault());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = FaultModel::all_extended()
            .iter()
            .map(FaultModel::name)
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), FaultModel::all_extended().len());
    }

    #[test]
    fn extended_taxonomy_size() {
        // 25 classical + 2 dRDF + 2 dDRDF + 2 dIRF + 2 LCF = 33.
        assert_eq!(FaultModel::all_extended().len(), 33);
    }

    #[test]
    fn extended_display_names() {
        assert_eq!(
            FaultModel::DynamicReadDestructive(Bit::Zero).to_string(),
            "dRDF<0>"
        );
        assert_eq!(
            FaultModel::DynamicDeceptiveReadDestructive(Bit::One).to_string(),
            "dDRDF<1>"
        );
        assert_eq!(
            FaultModel::DynamicIncorrectRead(Bit::Zero).to_string(),
            "dIRF<0>"
        );
        assert_eq!(FaultModel::LinkedIdempotent(Bit::One).to_string(), "LCF<1>");
        assert!(FaultModel::LinkedIdempotent(Bit::One).is_pair_fault());
        assert!(!FaultModel::DynamicReadDestructive(Bit::Zero).is_pair_fault());
    }

    #[test]
    fn class_labels_cover_vocabulary() {
        for m in FaultModel::all_extended() {
            assert!(
                FAULT_CLASS_LABELS.contains(&m.class_label()),
                "{m} has unlisted class label {}",
                m.class_label()
            );
        }
        let mut labels: Vec<&str> = FAULT_CLASS_LABELS.to_vec();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FAULT_CLASS_LABELS.len());
    }
}
