//! Declarative fault behaviour — the **simulation-side lowering
//! target**.
//!
//! A [`FaultBehavior`] is a small rule table describing how one fault
//! model perturbs the three memory operations (write, read, wait): which
//! site cell a rule applies to, what trigger condition arms it, and what
//! effect it has on the stored value, the read output, or the coupled
//! victim cell. The scalar simulator (`marchgen-sim`'s `FaultyMemory`)
//! and the bit-parallel verifier (`bitsim::LaneBatch`) are *generic
//! interpreters* over this table — neither contains a single
//! `FaultModel`-variant match. The only place rules are authored is
//! [`crate::lowering::behavior`].
//!
//! Two-operation **dynamic faults** are expressed through
//! [`ReadRule::after_write`]: the rule arms only when the immediately
//! preceding operation was a write of the given value to the same
//! address (the interpreter tracks one `last_write` slot, cleared by any
//! read or delay).

use marchgen_model::Bit;

/// Which site cell an interpreter rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The single-cell site address.
    Single,
    /// The aggressor address of a pair site.
    Aggressor,
}

/// What an armed [`WriteRule`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteEffect {
    /// The write is lost (transition faults, the stuck-open cell).
    Block,
    /// The write lands but the cell ends at the given value (stuck-at).
    Force(Bit),
    /// The written value also lands in the victim cell (write-decoder
    /// faults).
    CopyToVictim,
    /// The victim cell inverts (inversion coupling).
    FlipVictim,
    /// The victim cell is forced to the given value (idempotent and
    /// linked coupling).
    ForceVictim(Bit),
}

/// One write-path rule: when a write at the rule's [`Role`] cell matches
/// the `value`/`pre` triggers, `effect` fires. Trigger comparisons use
/// the cell's **pre-write** content, matching the behavioural catalog
/// (re-writing 1 over 1 is not a transition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRule {
    /// The site cell the written address must be.
    pub at: Role,
    /// Written value the rule requires (`None` = any).
    pub value: Option<Bit>,
    /// Pre-write content the rule requires (`None` = any).
    pub pre: Option<Bit>,
    /// What happens when the rule arms.
    pub effect: WriteEffect,
}

/// Where an armed [`ReadRule`] takes the read output from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutput {
    /// The stored value (the fault only perturbs storage).
    Stored,
    /// The complement of the stored value (incorrect/destructive reads).
    Complement,
    /// The sense-amplifier latch (stuck-open).
    Latch,
    /// The victim cell's content (read-decoder faults).
    Victim,
}

/// What an armed [`ReadRule`] does to the stored value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreEffect {
    /// Storage untouched.
    Keep,
    /// The cell flips (destructive reads).
    Flip,
}

/// One read-path rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRule {
    /// The site cell the read address must be.
    pub at: Role,
    /// Stored value the rule requires (`None` = any).
    pub holds: Option<Bit>,
    /// Dynamic trigger: the rule arms only when the immediately
    /// preceding operation was a write of this value to the same
    /// address (`None` = static rule, no history condition).
    pub after_write: Option<Bit>,
    /// Where the device output comes from.
    pub output: ReadOutput,
    /// What happens to the stored value.
    pub store: StoreEffect,
}

/// A continuously enforced state condition (state coupling): while the
/// aggressor holds `when`, the victim is forced to `force`. Re-applied
/// after **every** operation, including power-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invariant {
    /// Aggressor content that activates the condition.
    pub when: Bit,
    /// Value the victim is forced to while active.
    pub force: Bit,
}

/// The complete declarative behaviour of one fault model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultBehavior {
    /// `true` when instances are ordered cell pairs (aggressor/victim).
    pub pair: bool,
    /// `true` when the model reads the sense-amplifier latch, so both
    /// latch power-up values are distinct scenarios (stuck-open).
    pub uses_latch: bool,
    /// Value the site cell is forced to at power-up (stuck-at).
    pub powerup_force: Option<Bit>,
    /// Continuous state-coupling condition, if any.
    pub invariant: Option<Invariant>,
    /// Write-path rules, applied in order.
    pub write_rules: Vec<WriteRule>,
    /// Read-path rules; the first armed rule wins.
    pub read_rules: Vec<ReadRule>,
    /// Wait-period decay: a site cell holding this value flips on `Del`.
    pub delay_flip: Option<Bit>,
}

impl FaultBehavior {
    /// An inert single-cell behaviour to extend per model.
    #[must_use]
    pub fn single_cell() -> FaultBehavior {
        FaultBehavior {
            pair: false,
            uses_latch: false,
            powerup_force: None,
            invariant: None,
            write_rules: Vec::new(),
            read_rules: Vec::new(),
            delay_flip: None,
        }
    }

    /// An inert pair behaviour to extend per model.
    #[must_use]
    pub fn pair_cells() -> FaultBehavior {
        FaultBehavior {
            pair: true,
            ..FaultBehavior::single_cell()
        }
    }

    /// `true` when any rule carries an operation-history trigger — the
    /// interpreters must track the last write, and the behaviour is not
    /// expressible as a two-cell Mealy machine over state alone.
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        self.read_rules.iter().any(|r| r.after_write.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaffold_constructors() {
        assert!(!FaultBehavior::single_cell().pair);
        assert!(FaultBehavior::pair_cells().pair);
        assert!(!FaultBehavior::single_cell().is_dynamic());
    }

    #[test]
    fn dynamic_detection_keys_on_after_write() {
        let mut b = FaultBehavior::single_cell();
        b.read_rules.push(ReadRule {
            at: Role::Single,
            holds: Some(Bit::Zero),
            after_write: Some(Bit::Zero),
            output: ReadOutput::Complement,
            store: StoreEffect::Flip,
        });
        assert!(b.is_dynamic());
    }
}
