//! Composable **test primitives** — the generation-side lowering target.
//!
//! A [`TestPrimitive`] is the small shared vocabulary every fault model
//! lowers onto: a required initialization state, an excitation
//! *sequence* of one or two memory operations (two-operation dynamic
//! faults need a write immediately followed by a read), an observation
//! channel, and the scheduling attributes the March constructor honours.
//! [`crate::lowering::lower`] maps `FaultModel -> Vec<TestPrimitive>`;
//! grouped into [`PrimitiveClass`]es they reproduce the coverage
//! requirements (`Cᵢ` classes) the generator consumes — byte-identical
//! to the legacy per-model catalog, which is pinned by the
//! lowering-equivalence test suite.

use crate::tp::{Observation, TestPattern, TpKind};
use crate::CoverageRequirement;
use marchgen_model::{MemOp, PairState, Tri};
use std::fmt;

/// One composable test primitive: initialization, an excitation
/// sequence of length ≥ 1, and an observation channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TestPrimitive {
    /// Required fault-free state before the sequence (`-` = don't-care).
    pub init: PairState,
    /// Optional leading sensitizing operation (dynamic faults: the write
    /// that must *immediately* precede the exciting read on the same
    /// cell). `None` for the classical single-operation excitations.
    pub setup: Option<MemOp>,
    /// The excitation operation proper (last element of the sequence).
    pub excite: MemOp,
    /// How the fault effect is observed.
    pub observe: Observation,
    /// Single-cell or aggressor/victim pair scope.
    pub scope: TpKind,
    /// Observation must immediately follow excitation (stuck-open).
    pub immediate: bool,
    /// Excitation must be immediately preceded by a read of the
    /// initialization value (stuck-open).
    pub pre_read: bool,
}

impl TestPrimitive {
    /// A pair-scope primitive with a single-operation excitation.
    #[must_use]
    pub fn pair(init: PairState, excite: MemOp, observe: Observation) -> TestPrimitive {
        TestPrimitive {
            init,
            setup: None,
            excite,
            observe,
            scope: TpKind::Pair,
            immediate: false,
            pre_read: false,
        }
    }

    /// A single-cell primitive (`init_j` forced to `-`).
    #[must_use]
    pub fn single(init: Tri, excite: MemOp, observe: Observation) -> TestPrimitive {
        TestPrimitive {
            init: PairState::new(init, Tri::X),
            setup: None,
            excite,
            observe,
            scope: TpKind::SingleCell,
            immediate: false,
            pre_read: false,
        }
    }

    /// Builder-style: marks the observation as immediate.
    #[must_use]
    pub fn with_immediate(mut self) -> TestPrimitive {
        self.immediate = true;
        self
    }

    /// Builder-style: requires a read of the init value right before
    /// the excitation.
    #[must_use]
    pub fn with_pre_read(mut self) -> TestPrimitive {
        self.pre_read = true;
        self
    }

    /// Builder-style: prepends a sensitizing operation, making this a
    /// two-operation (dynamic) excitation sequence.
    #[must_use]
    pub fn with_setup(mut self, op: MemOp) -> TestPrimitive {
        self.setup = Some(op);
        self
    }

    /// The excitation sequence in order (length 1 or 2).
    #[must_use]
    pub fn sequence(&self) -> Vec<MemOp> {
        match self.setup {
            Some(s) => vec![s, self.excite],
            None => vec![self.excite],
        }
    }

    /// The equivalent scheduling [`TestPattern`] (field-for-field).
    #[must_use]
    pub fn to_pattern(&self) -> TestPattern {
        TestPattern {
            init: self.init,
            excite: self.excite,
            observe: self.observe,
            kind: self.scope,
            immediate: self.immediate,
            pre_read: self.pre_read,
            setup: self.setup,
        }
    }

    /// The primitive a [`TestPattern`] denotes (inverse of
    /// [`TestPrimitive::to_pattern`]).
    #[must_use]
    pub fn from_pattern(tp: &TestPattern) -> TestPrimitive {
        TestPrimitive {
            init: tp.init,
            setup: tp.setup,
            excite: tp.excite,
            observe: tp.observe,
            scope: tp.kind,
            immediate: tp.immediate,
            pre_read: tp.pre_read,
        }
    }
}

impl fmt::Display for TestPrimitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_pattern())
    }
}

/// One equivalence class of primitives: a labelled fault instance plus
/// the alternative primitives that each cover it. The lowering-layer
/// counterpart of [`CoverageRequirement`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimitiveClass {
    /// Human-readable instance description.
    pub label: String,
    /// Alternative primitives; realizing any one covers the instance.
    pub alternatives: Vec<TestPrimitive>,
}

impl PrimitiveClass {
    /// Creates a class.
    #[must_use]
    pub fn new(label: impl Into<String>, alternatives: Vec<TestPrimitive>) -> PrimitiveClass {
        PrimitiveClass {
            label: label.into(),
            alternatives,
        }
    }

    /// The equivalent coverage requirement for the generator.
    ///
    /// # Panics
    ///
    /// Panics if the class has no alternatives (a lowering bug).
    #[must_use]
    pub fn into_requirement(self) -> CoverageRequirement {
        CoverageRequirement::new(
            self.label,
            self.alternatives
                .iter()
                .map(TestPrimitive::to_pattern)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_model::{Bit, Cell};

    #[test]
    fn pattern_roundtrip() {
        let p = TestPrimitive::single(
            Tri::X,
            MemOp::read(Cell::I),
            Observation::SelfRead { expected: Bit::One },
        )
        .with_setup(MemOp::write(Cell::I, Bit::One));
        assert_eq!(p.sequence().len(), 2);
        let tp = p.to_pattern();
        assert_eq!(TestPrimitive::from_pattern(&tp), p);
    }

    #[test]
    fn classical_sequences_have_length_one() {
        let p = TestPrimitive::single(
            Tri::Zero,
            MemOp::write(Cell::I, Bit::One),
            Observation::Read {
                cell: Cell::I,
                expected: Bit::One,
            },
        );
        assert_eq!(p.sequence(), vec![MemOp::write(Cell::I, Bit::One)]);
    }

    #[test]
    fn class_converts_to_requirement() {
        let p = TestPrimitive::single(
            Tri::X,
            MemOp::write(Cell::I, Bit::One),
            Observation::Read {
                cell: Cell::I,
                expected: Bit::One,
            },
        );
        let req = PrimitiveClass::new("SA0", vec![p]).into_requirement();
        assert_eq!(req.label, "SA0");
        assert_eq!(req.alternatives, vec![p.to_pattern()]);
    }
}
