//! Coverage requirements — the TP equivalence classes `Cᵢ` of paper
//! Section 5.
//!
//! A fault *instance* (one cell, or one ordered cell pair, affected by
//! one fault model) is covered as soon as **any one** of a small set of
//! alternative Test Patterns is realized: an inversion coupling fault,
//! for example, is exposed whichever value the victim happens to hold, so
//! its two BFE-derived TPs form one class and the generator only needs to
//! schedule one of them. The generator enumerates one TP choice per
//! requirement (`E = Π |Cᵢ|` combinations, f.5) and keeps the best
//! resulting March test.

use crate::catalog;
use crate::model::FaultModel;
use crate::tp::TestPattern;
use std::fmt;

/// One equivalence class `Cᵢ`: a fault instance plus the alternative TPs
/// that each cover it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageRequirement {
    /// Human-readable description, e.g. `"CFid<↑,0> (aggressor i)"`.
    pub label: String,
    /// The alternative TPs; scheduling any one satisfies the requirement.
    /// Never empty.
    pub alternatives: Vec<TestPattern>,
}

impl CoverageRequirement {
    /// Creates a requirement.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is empty — an unsatisfiable requirement is
    /// a bug in the catalog, not a runtime condition.
    #[must_use]
    pub fn new(label: impl Into<String>, alternatives: Vec<TestPattern>) -> CoverageRequirement {
        assert!(
            !alternatives.is_empty(),
            "a coverage requirement needs at least one TP"
        );
        CoverageRequirement {
            label: label.into(),
            alternatives,
        }
    }

    /// Number of alternative TPs (the class cardinality `|Cᵢ|`).
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.alternatives.len()
    }
}

impl fmt::Display for CoverageRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {{", self.label)?;
        for (k, tp) in self.alternatives.iter().enumerate() {
            if k > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{tp}")?;
        }
        f.write_str("}")
    }
}

/// Expands a fault list into its coverage requirements, merging
/// requirements whose alternative sets coincide (e.g. RDF and IRF share
/// detection conditions).
///
/// The total number of TP-choice combinations the generator faces is
/// `Π cardinality(Cᵢ)` — the paper's `E`.
#[must_use]
pub fn requirements_for(models: &[FaultModel]) -> Vec<CoverageRequirement> {
    let mut reqs: Vec<CoverageRequirement> = Vec::new();
    for &model in models {
        for req in catalog::requirements(model) {
            if let Some(existing) = reqs.iter_mut().find(|r| r.alternatives == req.alternatives) {
                if !existing.label.contains(&req.label) {
                    existing.label = format!("{} + {}", existing.label, req.label);
                }
            } else {
                reqs.push(req);
            }
        }
    }
    reqs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::TransitionDir;
    use marchgen_model::Bit;

    #[test]
    fn section4_example_has_four_single_tp_requirements() {
        // FaultList = {⟨↑,1⟩, ⟨↑,0⟩}: four BFEs, each its own TP.
        let models = [
            FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::One),
            FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero),
        ];
        let reqs = requirements_for(&models);
        assert_eq!(reqs.len(), 4);
        assert!(reqs.iter().all(|r| r.cardinality() == 1));
    }

    #[test]
    fn section5_cfin_classes_have_two_alternatives() {
        let reqs = requirements_for(&[FaultModel::CouplingInversion(TransitionDir::Up)]);
        assert_eq!(reqs.len(), 2); // one per address order
        assert!(reqs.iter().all(|r| r.cardinality() == 2));
    }

    #[test]
    fn identical_requirements_are_merged() {
        let reqs = requirements_for(&[
            FaultModel::ReadDestructive(Bit::Zero),
            FaultModel::IncorrectRead(Bit::Zero),
        ]);
        assert_eq!(reqs.len(), 1, "RDF<0> and IRF<0> share their detection TP");
        assert!(reqs[0].label.contains("RDF"), "{}", reqs[0].label);
        assert!(reqs[0].label.contains("IRF"), "{}", reqs[0].label);
    }

    #[test]
    fn duplicate_models_do_not_duplicate_requirements() {
        let once = requirements_for(&[FaultModel::StuckAt(Bit::Zero)]);
        let twice = requirements_for(&[
            FaultModel::StuckAt(Bit::Zero),
            FaultModel::StuckAt(Bit::Zero),
        ]);
        assert_eq!(once, twice);
    }

    #[test]
    #[should_panic(expected = "at least one TP")]
    fn empty_requirement_rejected() {
        let _ = CoverageRequirement::new("broken", Vec::new());
    }

    #[test]
    fn display_lists_alternatives() {
        let reqs = requirements_for(&[FaultModel::CouplingInversion(TransitionDir::Up)]);
        let s = reqs[0].to_string();
        assert!(s.contains('{') && s.contains(','), "{s}");
    }
}
