//! The **single lowering module** — the only place in the workspace that
//! matches on [`FaultModel`] variants.
//!
//! Every fault model lowers onto two shared vocabularies:
//!
//! * **generation side** — [`classes`] / [`lower`] map the model to
//!   composable [`TestPrimitive`]s grouped into [`PrimitiveClass`]es;
//!   `requirements_for` and the whole generator run off these, and they
//!   reproduce the legacy per-model catalog byte-identically (pinned by
//!   the lowering-equivalence suite and the Table 3 goldens).
//! * **simulation side** — [`behavior`] maps the model to a declarative
//!   [`FaultBehavior`] rule table; the scalar `FaultyMemory` and the
//!   bit-parallel `bitsim::LaneBatch` are generic interpreters over it.
//!
//! [`machines`] additionally provides the paper's two-cell Mealy-machine
//! view (Figure 2) for the BFE derivation; dynamic faults, whose effect
//! depends on operation history rather than state alone, have no such
//! machine and return an empty vector (as [`FaultModel::StuckOpen`]
//! always did).
//!
//! A repo-level lint (`tests/fault_layer_lint.rs` + the CI
//! `fault-layer-lint` job) fails the build if a `FaultModel::` variant
//! match appears outside this module, `model.rs`, or `parse.rs` — the
//! decoupling cannot silently erode.

use crate::behavior::{
    FaultBehavior, Invariant, ReadOutput, ReadRule, Role, StoreEffect, WriteEffect, WriteRule,
};
use crate::dir::TransitionDir;
use crate::model::{AdfKind, FaultModel};
use crate::primitives::{PrimitiveClass, TestPrimitive};
use crate::tp::Observation;
use marchgen_model::{Bit, Cell, MemOp, PairState, Tri, TwoCellMachine};

fn read_obs(cell: Cell, expected: Bit) -> Observation {
    Observation::Read { cell, expected }
}

/// The model's primitive classes: labelled fault instances, each with the
/// alternative test primitives that cover it.
#[must_use]
pub fn classes(model: FaultModel) -> Vec<PrimitiveClass> {
    match model {
        FaultModel::StuckAt(v) => {
            // SA⟨v⟩ is exposed by writing v̄ and reading it back, from any
            // starting state.
            let w = v.flip();
            vec![PrimitiveClass::new(
                format!("SA{v}"),
                vec![TestPrimitive::single(
                    Tri::X,
                    MemOp::write(Cell::I, w),
                    read_obs(Cell::I, w),
                )],
            )]
        }
        FaultModel::Transition(d) => {
            // TF⟨d⟩: the d transition must actually be exercised, so the
            // initialization pins the pre-transition value.
            vec![PrimitiveClass::new(
                format!("TF<{d}>"),
                vec![TestPrimitive::single(
                    d.from_value().into(),
                    MemOp::write(Cell::I, d.to_value()),
                    read_obs(Cell::I, d.to_value()),
                )],
            )]
        }
        FaultModel::StuckOpen => {
            // SOF: the latch must hold the stale pre-transition value when
            // the verifying read fires, hence pre-read + immediate.
            let alt = |d: TransitionDir| {
                TestPrimitive::single(
                    d.from_value().into(),
                    MemOp::write(Cell::I, d.to_value()),
                    read_obs(Cell::I, d.to_value()),
                )
                .with_immediate()
                .with_pre_read()
            };
            vec![PrimitiveClass::new(
                "SOF".to_string(),
                vec![alt(TransitionDir::Up), alt(TransitionDir::Down)],
            )]
        }
        FaultModel::AddressDecoder(AdfKind::Write) => {
            // Writes aimed at one cell also reach the other: expose by
            // writing the aggressor address with the complement of the
            // observed cell's content. Either polarity works — one class
            // of two alternatives per address order.
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let alt = |v: Bit| {
                    let init = PairState::UNKNOWN.with(victim, v.into());
                    TestPrimitive::pair(init, MemOp::write(aggr, v.flip()), read_obs(victim, v))
                };
                PrimitiveClass::new(
                    format!("ADF<w> ({aggr}-writes reach {victim})"),
                    vec![alt(Bit::One), alt(Bit::Zero)],
                )
            };
            vec![class(Cell::J), class(Cell::I)]
        }
        FaultModel::AddressDecoder(AdfKind::Read) => {
            // Reads of one cell return the other cell's content: expose by
            // reading while the two cells hold opposite values.
            let class = |read: Cell| {
                let alt = |iv: Bit| {
                    let init = PairState::new_known(iv, iv.flip());
                    let expected = match read {
                        Cell::I => iv,
                        Cell::J => iv.flip(),
                    };
                    TestPrimitive::pair(init, MemOp::read(read), Observation::SelfRead { expected })
                };
                PrimitiveClass::new(
                    format!("ADF<r> (reads of {read} return {})", read.other()),
                    vec![alt(Bit::Zero), alt(Bit::One)],
                )
            };
            vec![class(Cell::J), class(Cell::I)]
        }
        FaultModel::CouplingInversion(d) => {
            // CFin⟨d⟩: the victim flips whichever value it holds, so the
            // two victim polarities are alternatives (Section 5 example).
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let alt = |v: Bit| {
                    let init = PairState::UNKNOWN
                        .with(aggr, d.from_value().into())
                        .with(victim, v.into());
                    TestPrimitive::pair(init, MemOp::write(aggr, d.to_value()), read_obs(victim, v))
                };
                PrimitiveClass::new(
                    format!("CFin<{d}> (aggressor {aggr})"),
                    vec![alt(Bit::Zero), alt(Bit::One)],
                )
            };
            vec![class(Cell::I), class(Cell::J)]
        }
        FaultModel::CouplingIdempotent(d, f) => {
            // CFid⟨d,f⟩: only a victim holding f̄ shows the forcing — a
            // single TP per address order (paper Figure 3 / f.2.3).
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let init = PairState::UNKNOWN
                    .with(aggr, d.from_value().into())
                    .with(victim, f.flip().into());
                PrimitiveClass::new(
                    format!("CFid<{d},{f}> (aggressor {aggr})"),
                    vec![TestPrimitive::pair(
                        init,
                        MemOp::write(aggr, d.to_value()),
                        read_obs(victim, f.flip()),
                    )],
                )
            };
            vec![class(Cell::I), class(Cell::J)]
        }
        FaultModel::CouplingState(s, f) => {
            // CFst⟨s,f⟩: while the aggressor holds s the victim is forced
            // to f. Two excitations work: entering the aggressor state
            // with a sensitized victim, or writing the victim under the
            // active condition.
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let enter_condition = TestPrimitive::pair(
                    PairState::UNKNOWN
                        .with(aggr, s.flip().into())
                        .with(victim, f.flip().into()),
                    MemOp::write(aggr, s),
                    read_obs(victim, f.flip()),
                );
                let write_under_condition = TestPrimitive::pair(
                    PairState::UNKNOWN.with(aggr, s.into()),
                    MemOp::write(victim, f.flip()),
                    read_obs(victim, f.flip()),
                );
                PrimitiveClass::new(
                    format!("CFst<{s},{f}> (aggressor {aggr})"),
                    vec![enter_condition, write_under_condition],
                )
            };
            vec![class(Cell::I), class(Cell::J)]
        }
        FaultModel::ReadDestructive(x) | FaultModel::IncorrectRead(x) => {
            // Both return the wrong value on the exciting read itself.
            let label = model.to_string();
            vec![PrimitiveClass::new(
                label,
                vec![TestPrimitive::single(
                    x.into(),
                    MemOp::read(Cell::I),
                    Observation::SelfRead { expected: x },
                )],
            )]
        }
        FaultModel::DeceptiveReadDestructive(x) => {
            // The exciting read answers correctly; a second read catches
            // the flipped cell.
            vec![PrimitiveClass::new(
                model.to_string(),
                vec![TestPrimitive::single(
                    x.into(),
                    MemOp::read(Cell::I),
                    read_obs(Cell::I, x),
                )],
            )]
        }
        FaultModel::DataRetention(x) => {
            // The cell decays after the wait period T.
            vec![PrimitiveClass::new(
                model.to_string(),
                vec![TestPrimitive::single(
                    x.into(),
                    MemOp::Delay,
                    read_obs(Cell::I, x),
                )],
            )]
        }
        FaultModel::DynamicReadDestructive(x) | FaultModel::DynamicIncorrectRead(x) => {
            // Two-operation sequence wX:rX — the exciting read (fired
            // immediately after the write) returns the complement. The
            // read itself observes the fault.
            vec![PrimitiveClass::new(
                model.to_string(),
                vec![TestPrimitive::single(
                    Tri::X,
                    MemOp::read(Cell::I),
                    Observation::SelfRead { expected: x },
                )
                .with_setup(MemOp::write(Cell::I, x))],
            )]
        }
        FaultModel::DynamicDeceptiveReadDestructive(x) => {
            // wX:rX answers correctly but flips the cell; a later read
            // catches the flip.
            vec![PrimitiveClass::new(
                model.to_string(),
                vec![
                    TestPrimitive::single(Tri::X, MemOp::read(Cell::I), read_obs(Cell::I, x))
                        .with_setup(MemOp::write(Cell::I, x)),
                ],
            )]
        }
        FaultModel::LinkedIdempotent(f) => {
            // LCF⟨f⟩ = CFid⟨↑,f⟩ ∘ CFid⟨↓,f̄⟩ on one aggressor/victim
            // pair. Each component gets its own single-TP class so every
            // tour excites both links; behavioural verification (the two
            // effects can mask each other) rejects orderings where one
            // link's forcing is overwritten before its read.
            let link = |aggr: Cell| {
                let victim = aggr.other();
                let up = PrimitiveClass::new(
                    format!("LCF<{f}> ↑-link (aggressor {aggr})"),
                    vec![TestPrimitive::pair(
                        PairState::UNKNOWN
                            .with(aggr, Bit::Zero.into())
                            .with(victim, f.flip().into()),
                        MemOp::write(aggr, Bit::One),
                        read_obs(victim, f.flip()),
                    )],
                );
                let down = PrimitiveClass::new(
                    format!("LCF<{f}> ↓-link (aggressor {aggr})"),
                    vec![TestPrimitive::pair(
                        PairState::UNKNOWN
                            .with(aggr, Bit::One.into())
                            .with(victim, f.into()),
                        MemOp::write(aggr, Bit::Zero),
                        read_obs(victim, f),
                    )],
                );
                [up, down]
            };
            let mut v = Vec::new();
            v.extend(link(Cell::I));
            v.extend(link(Cell::J));
            v
        }
    }
}

/// The single lowering function of the primitive algebra:
/// `FaultModel -> Vec<TestPrimitive>` (the model's classes, flattened).
#[must_use]
pub fn lower(model: FaultModel) -> Vec<TestPrimitive> {
    classes(model)
        .into_iter()
        .flat_map(|c| c.alternatives)
        .collect()
}

/// The model's declarative simulation behaviour — the rule table both
/// verifiers interpret generically.
#[must_use]
pub fn behavior(model: FaultModel) -> FaultBehavior {
    match model {
        FaultModel::StuckAt(v) => {
            let mut b = FaultBehavior::single_cell();
            b.powerup_force = Some(v);
            b.write_rules.push(WriteRule {
                at: Role::Single,
                value: None,
                pre: None,
                effect: WriteEffect::Force(v),
            });
            b
        }
        FaultModel::Transition(d) => {
            let mut b = FaultBehavior::single_cell();
            b.write_rules.push(WriteRule {
                at: Role::Single,
                value: Some(d.to_value()),
                pre: Some(d.from_value()),
                effect: WriteEffect::Block,
            });
            b
        }
        FaultModel::StuckOpen => {
            let mut b = FaultBehavior::single_cell();
            b.uses_latch = true;
            b.write_rules.push(WriteRule {
                at: Role::Single,
                value: None,
                pre: None,
                effect: WriteEffect::Block,
            });
            b.read_rules.push(ReadRule {
                at: Role::Single,
                holds: None,
                after_write: None,
                output: ReadOutput::Latch,
                store: StoreEffect::Keep,
            });
            b
        }
        FaultModel::AddressDecoder(AdfKind::Write) => {
            let mut b = FaultBehavior::pair_cells();
            b.write_rules.push(WriteRule {
                at: Role::Aggressor,
                value: None,
                pre: None,
                effect: WriteEffect::CopyToVictim,
            });
            b
        }
        FaultModel::AddressDecoder(AdfKind::Read) => {
            let mut b = FaultBehavior::pair_cells();
            b.read_rules.push(ReadRule {
                at: Role::Aggressor,
                holds: None,
                after_write: None,
                output: ReadOutput::Victim,
                store: StoreEffect::Keep,
            });
            b
        }
        FaultModel::CouplingInversion(d) => {
            let mut b = FaultBehavior::pair_cells();
            b.write_rules.push(WriteRule {
                at: Role::Aggressor,
                value: Some(d.to_value()),
                pre: Some(d.from_value()),
                effect: WriteEffect::FlipVictim,
            });
            b
        }
        FaultModel::CouplingIdempotent(d, f) => {
            let mut b = FaultBehavior::pair_cells();
            b.write_rules.push(WriteRule {
                at: Role::Aggressor,
                value: Some(d.to_value()),
                pre: Some(d.from_value()),
                effect: WriteEffect::ForceVictim(f),
            });
            b
        }
        FaultModel::CouplingState(s, f) => {
            let mut b = FaultBehavior::pair_cells();
            b.invariant = Some(Invariant { when: s, force: f });
            b
        }
        FaultModel::ReadDestructive(x) => {
            let mut b = FaultBehavior::single_cell();
            b.read_rules.push(ReadRule {
                at: Role::Single,
                holds: Some(x),
                after_write: None,
                output: ReadOutput::Complement,
                store: StoreEffect::Flip,
            });
            b
        }
        FaultModel::DeceptiveReadDestructive(x) => {
            let mut b = FaultBehavior::single_cell();
            b.read_rules.push(ReadRule {
                at: Role::Single,
                holds: Some(x),
                after_write: None,
                output: ReadOutput::Stored,
                store: StoreEffect::Flip,
            });
            b
        }
        FaultModel::IncorrectRead(x) => {
            let mut b = FaultBehavior::single_cell();
            b.read_rules.push(ReadRule {
                at: Role::Single,
                holds: Some(x),
                after_write: None,
                output: ReadOutput::Complement,
                store: StoreEffect::Keep,
            });
            b
        }
        FaultModel::DataRetention(x) => {
            let mut b = FaultBehavior::single_cell();
            b.delay_flip = Some(x);
            b
        }
        FaultModel::DynamicReadDestructive(x) => {
            let mut b = FaultBehavior::single_cell();
            b.read_rules.push(ReadRule {
                at: Role::Single,
                holds: Some(x),
                after_write: Some(x),
                output: ReadOutput::Complement,
                store: StoreEffect::Flip,
            });
            b
        }
        FaultModel::DynamicDeceptiveReadDestructive(x) => {
            let mut b = FaultBehavior::single_cell();
            b.read_rules.push(ReadRule {
                at: Role::Single,
                holds: Some(x),
                after_write: Some(x),
                output: ReadOutput::Stored,
                store: StoreEffect::Flip,
            });
            b
        }
        FaultModel::DynamicIncorrectRead(x) => {
            let mut b = FaultBehavior::single_cell();
            b.read_rules.push(ReadRule {
                at: Role::Single,
                holds: Some(x),
                after_write: Some(x),
                output: ReadOutput::Complement,
                store: StoreEffect::Keep,
            });
            b
        }
        FaultModel::LinkedIdempotent(f) => {
            let mut b = FaultBehavior::pair_cells();
            b.write_rules.push(WriteRule {
                at: Role::Aggressor,
                value: Some(Bit::One),
                pre: Some(Bit::Zero),
                effect: WriteEffect::ForceVictim(f),
            });
            b.write_rules.push(WriteRule {
                at: Role::Aggressor,
                value: Some(Bit::Zero),
                pre: Some(Bit::One),
                effect: WriteEffect::ForceVictim(f.flip()),
            });
            b
        }
    }
}

/// Behavioural two-cell machines of the fault model's instances, labelled
/// by which cell (or ordered pair role) is affected. Returns an empty
/// vector for [`FaultModel::StuckOpen`], whose sense-amplifier latch is
/// not a function of the pair state, and for the dynamic faults, whose
/// effect depends on operation history (the n-cell simulator models both
/// directly).
#[must_use]
pub fn machines(model: FaultModel) -> Vec<(String, TwoCellMachine)> {
    let m0 = TwoCellMachine::fault_free();
    let states = PairState::all_known();
    match model {
        FaultModel::StuckOpen
        | FaultModel::DynamicReadDestructive(_)
        | FaultModel::DynamicDeceptiveReadDestructive(_)
        | FaultModel::DynamicIncorrectRead(_) => Vec::new(),
        FaultModel::StuckAt(v) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                for d in Bit::ALL {
                    m = m.with_delta(s, MemOp::write(c, d), {
                        let good = m0.transition(s, MemOp::write(c, d)).next;
                        good.with(c, v.into())
                    });
                }
                m = m.with_override(
                    s,
                    MemOp::read(c),
                    marchgen_model::Transition {
                        next: s,
                        output: Some(v),
                    },
                );
            }
            m
        }),
        FaultModel::Transition(dir) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                if s.get(c) == dir.from_value().into() {
                    m = m.with_delta(s, MemOp::write(c, dir.to_value()), s);
                }
            }
            m
        }),
        FaultModel::ReadDestructive(x) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                if s.get(c) == x.into() {
                    m = m.with_override(
                        s,
                        MemOp::read(c),
                        marchgen_model::Transition {
                            next: s.with(c, x.flip().into()),
                            output: Some(x.flip()),
                        },
                    );
                }
            }
            m
        }),
        FaultModel::DeceptiveReadDestructive(x) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                if s.get(c) == x.into() {
                    m = m.with_delta(s, MemOp::read(c), s.with(c, x.flip().into()));
                }
            }
            m
        }),
        FaultModel::IncorrectRead(x) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                if s.get(c) == x.into() {
                    m = m.with_lambda(s, MemOp::read(c), Some(x.flip()));
                }
            }
            m
        }),
        FaultModel::DataRetention(x) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                if s.get(c) == x.into() {
                    m = m.with_delta(s, MemOp::Delay, s.with(c, x.flip().into()));
                }
            }
            m
        }),
        FaultModel::AddressDecoder(AdfKind::Write) => per_aggressor(model, |aggr| {
            let victim = aggr.other();
            let mut m = m0.clone();
            for s in states {
                for d in Bit::ALL {
                    let good = m0.transition(s, MemOp::write(aggr, d)).next;
                    m = m.with_delta(s, MemOp::write(aggr, d), good.with(victim, d.into()));
                }
            }
            m
        }),
        FaultModel::AddressDecoder(AdfKind::Read) => per_aggressor(model, |read| {
            let other = read.other();
            let mut m = m0.clone();
            for s in states {
                m = m.with_lambda(s, MemOp::read(read), s.get(other).bit());
            }
            m
        }),
        FaultModel::CouplingInversion(dir) => per_aggressor(model, |aggr| {
            let victim = aggr.other();
            let mut m = m0.clone();
            for s in states {
                if s.get(aggr) == dir.from_value().into() {
                    let good = m0.transition(s, MemOp::write(aggr, dir.to_value())).next;
                    m = m.with_delta(
                        s,
                        MemOp::write(aggr, dir.to_value()),
                        good.with(victim, good.get(victim).flip()),
                    );
                }
            }
            m
        }),
        FaultModel::CouplingIdempotent(dir, f) => per_aggressor(model, |aggr| {
            let victim = aggr.other();
            let mut m = m0.clone();
            for s in states {
                if s.get(aggr) == dir.from_value().into() && s.get(victim) == f.flip().into() {
                    let good = m0.transition(s, MemOp::write(aggr, dir.to_value())).next;
                    m = m.with_delta(
                        s,
                        MemOp::write(aggr, dir.to_value()),
                        good.with(victim, f.into()),
                    );
                }
            }
            m
        }),
        FaultModel::CouplingState(cond, f) => per_aggressor(model, |aggr| {
            let victim = aggr.other();
            let mut m = m0.clone();
            for s in states {
                // Entering the condition with a sensitized victim.
                if s.get(aggr) == cond.flip().into() && s.get(victim) == f.flip().into() {
                    let good = m0.transition(s, MemOp::write(aggr, cond)).next;
                    m = m.with_delta(s, MemOp::write(aggr, cond), good.with(victim, f.into()));
                }
                // Victim writes that cannot stick while the condition holds.
                if s.get(aggr) == cond.into() {
                    let good = m0.transition(s, MemOp::write(victim, f.flip())).next;
                    m = m.with_delta(
                        s,
                        MemOp::write(victim, f.flip()),
                        good.with(victim, f.into()),
                    );
                }
            }
            m
        }),
        FaultModel::LinkedIdempotent(f) => per_aggressor(model, |aggr| {
            let victim = aggr.other();
            let mut m = m0.clone();
            for s in states {
                // ↑-link: CFid⟨↑,f⟩, sensitized victim holds f̄.
                if s.get(aggr) == Bit::Zero.into() && s.get(victim) == f.flip().into() {
                    let good = m0.transition(s, MemOp::write(aggr, Bit::One)).next;
                    m = m.with_delta(s, MemOp::write(aggr, Bit::One), good.with(victim, f.into()));
                }
                // ↓-link: CFid⟨↓,f̄⟩, sensitized victim holds f.
                if s.get(aggr) == Bit::One.into() && s.get(victim) == f.into() {
                    let good = m0.transition(s, MemOp::write(aggr, Bit::Zero)).next;
                    m = m.with_delta(
                        s,
                        MemOp::write(aggr, Bit::Zero),
                        good.with(victim, f.flip().into()),
                    );
                }
            }
            m
        }),
    }
}

fn per_cell(
    model: FaultModel,
    build: impl Fn(Cell) -> TwoCellMachine,
) -> Vec<(String, TwoCellMachine)> {
    Cell::ALL
        .into_iter()
        .map(|c| (format!("{model} on cell {c}"), build(c)))
        .collect()
}

fn per_aggressor(
    model: FaultModel,
    build: impl Fn(Cell) -> TwoCellMachine,
) -> Vec<(String, TwoCellMachine)> {
    Cell::ALL
        .into_iter()
        .map(|c| (format!("{model} (aggressor {c})"), build(c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_flattens_classes() {
        for model in FaultModel::all_extended() {
            let flat: Vec<_> = classes(model)
                .into_iter()
                .flat_map(|c| c.alternatives)
                .collect();
            assert_eq!(lower(model), flat, "{model}");
            assert!(!lower(model).is_empty(), "{model} lowers to nothing");
        }
    }

    #[test]
    fn primitive_scope_matches_model_arity() {
        use crate::tp::TpKind;
        for model in FaultModel::all_extended() {
            let want = if model.is_pair_fault() {
                TpKind::Pair
            } else {
                TpKind::SingleCell
            };
            for p in lower(model) {
                assert_eq!(p.scope, want, "{model}: {p}");
            }
        }
    }

    #[test]
    fn behavior_arity_matches_model() {
        for model in FaultModel::all_extended() {
            assert_eq!(
                behavior(model).pair,
                model.is_pair_fault(),
                "{model} behaviour arity"
            );
        }
    }

    #[test]
    fn only_dynamic_models_are_dynamic() {
        for model in FaultModel::all_extended() {
            let is_dyn = matches!(
                model,
                FaultModel::DynamicReadDestructive(_)
                    | FaultModel::DynamicDeceptiveReadDestructive(_)
                    | FaultModel::DynamicIncorrectRead(_)
            );
            assert_eq!(behavior(model).is_dynamic(), is_dyn, "{model}");
            // Dynamic models lower to two-operation sequences; everything
            // else to single-operation ones.
            for p in lower(model) {
                assert_eq!(p.sequence().len() == 2, is_dyn, "{model}: {p}");
            }
        }
    }

    #[test]
    fn dynamic_models_have_no_state_machine() {
        for model in FaultModel::all_extended() {
            if behavior(model).is_dynamic() {
                assert!(machines(model).is_empty(), "{model}");
            }
        }
    }

    #[test]
    fn lcf_links_both_cfid_components() {
        let cs = classes(FaultModel::LinkedIdempotent(Bit::Zero));
        assert_eq!(cs.len(), 4, "two links × two address orders");
        assert!(cs.iter().all(|c| c.alternatives.len() == 1));
        assert_eq!(cs[0].label, "LCF<0> ↑-link (aggressor i)");
        assert_eq!(cs[1].label, "LCF<0> ↓-link (aggressor i)");
        // ↑-link TP equals the CFid⟨↑,0⟩ detection TP.
        let cfid = classes(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero));
        assert_eq!(cs[0].alternatives, cfid[0].alternatives);
        // LCF machines carry both component BFEs.
        let ms = machines(FaultModel::LinkedIdempotent(Bit::Zero));
        assert_eq!(ms.len(), 2);
        let m0 = TwoCellMachine::fault_free();
        assert_eq!(m0.diff(&ms[0].1).len(), 2, "↑ and ↓ component deltas");
    }

    #[test]
    fn all_extended_primitives_are_consistent() {
        for model in FaultModel::all_extended() {
            for p in lower(model) {
                assert!(p.to_pattern().is_consistent(), "{model}: {p}");
            }
        }
    }
}
