//! The curated fault catalog: coverage requirements (TP equivalence
//! classes) and behavioural two-cell machines for every [`FaultModel`].
//!
//! Since the primitive-layer refactor this module is a thin facade over
//! [`crate::lowering`] — the single module holding per-model knowledge.
//! [`requirements`] are the model's [`PrimitiveClass`](crate::PrimitiveClass)es
//! converted to [`CoverageRequirement`]s; the tests below pin the paper's
//! worked examples (Figures 2–3, f.2.3) against that lowering so the
//! legacy catalog stays byte-identical.

use crate::lowering;
use crate::model::FaultModel;
use crate::req::CoverageRequirement;
use marchgen_model::TwoCellMachine;

/// Coverage requirements of one fault model (see
/// [`requirements_for`](crate::requirements_for) for lists).
#[must_use]
pub fn requirements(model: FaultModel) -> Vec<CoverageRequirement> {
    lowering::classes(model)
        .into_iter()
        .map(crate::primitives::PrimitiveClass::into_requirement)
        .collect()
}

/// Behavioural two-cell machines of the fault model's instances, labelled
/// by which cell (or ordered pair role) is affected. Returns an empty
/// vector for [`FaultModel::StuckOpen`] and the dynamic faults, whose
/// behaviour is not a function of the pair state alone (the n-cell
/// simulator models them directly).
#[must_use]
pub fn machines(model: FaultModel) -> Vec<(String, TwoCellMachine)> {
    lowering::machines(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dir::TransitionDir;
    use crate::model::AdfKind;
    use crate::tp::Observation;
    use marchgen_model::{Bit, Cell, MemOp, PairState, Tri};

    /// Paper Figure 2: the CFid ⟨↑,0⟩ machine with aggressor `i` differs
    /// from `M0` in exactly one transition (01 --w1i--> 10).
    #[test]
    fn figure2_cfid_up0_machine() {
        let ms = machines(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero));
        assert_eq!(ms.len(), 2);
        let m0 = TwoCellMachine::fault_free();
        let aggr_i = &ms[0].1;
        let diffs = m0.diff(aggr_i);
        assert_eq!(diffs.len(), 1);
        let d = diffs[0];
        assert_eq!(d.state, PairState::new(Tri::Zero, Tri::One));
        assert_eq!(d.op, MemOp::write(Cell::I, Bit::One));
        assert_eq!(d.faulty.next, PairState::new(Tri::One, Tri::Zero));
    }

    #[test]
    fn cfin_machines_flip_victim_for_both_polarities() {
        let ms = machines(FaultModel::CouplingInversion(TransitionDir::Up));
        let m0 = TwoCellMachine::fault_free();
        for (label, m) in &ms {
            assert_eq!(
                m0.diff(m).len(),
                2,
                "{label} should have two BFEs (Figure 3 analogue)"
            );
        }
    }

    #[test]
    fn every_machine_differs_from_m0() {
        let m0 = TwoCellMachine::fault_free();
        for model in FaultModel::all_extended() {
            for (label, m) in machines(model) {
                assert!(!m0.diff(&m).is_empty(), "{label} equals M0");
            }
        }
    }

    #[test]
    fn all_catalog_tps_are_consistent() {
        for model in FaultModel::all_extended() {
            for req in requirements(model) {
                for tp in &req.alternatives {
                    assert!(tp.is_consistent(), "{model}: inconsistent TP {tp}");
                }
            }
        }
    }

    #[test]
    fn paper_tp_examples_from_cfid() {
        // f.2.3: ⟨↑,0⟩ is tested by TP1 = (01, w1i, r1j), TP2 = (10, w1j, r1i).
        let reqs = requirements(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero));
        assert_eq!(reqs.len(), 2);
        let tp1 = reqs[0].alternatives[0];
        assert_eq!(tp1.init, PairState::new(Tri::Zero, Tri::One));
        assert_eq!(tp1.excite, MemOp::write(Cell::I, Bit::One));
        assert_eq!(
            tp1.observe,
            Observation::Read {
                cell: Cell::J,
                expected: Bit::One
            }
        );
        let tp2 = reqs[1].alternatives[0];
        assert_eq!(tp2, tp1.mirrored());
    }

    #[test]
    fn section4_tps_for_cfid_up1() {
        // TP3 = (00, w1i, r0j), TP4 = (00, w1j, r0i).
        let reqs = requirements(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::One));
        let tp3 = reqs[0].alternatives[0];
        assert_eq!(tp3.init, PairState::new(Tri::Zero, Tri::Zero));
        assert_eq!(
            tp3.observe,
            Observation::Read {
                cell: Cell::J,
                expected: Bit::Zero
            }
        );
        assert_eq!(tp3.obs_state(), PairState::new(Tri::One, Tri::Zero));
    }

    #[test]
    fn sof_requirements_carry_scheduling_attributes() {
        let reqs = requirements(FaultModel::StuckOpen);
        assert_eq!(reqs.len(), 1);
        for tp in &reqs[0].alternatives {
            assert!(tp.immediate && tp.pre_read);
        }
    }

    #[test]
    fn machine_count_conventions() {
        assert_eq!(machines(FaultModel::StuckOpen).len(), 0);
        assert_eq!(machines(FaultModel::StuckAt(Bit::Zero)).len(), 2);
        assert_eq!(machines(FaultModel::AddressDecoder(AdfKind::Read)).len(), 2);
    }

    #[test]
    fn dynamic_requirements_carry_setup_sequences() {
        let reqs = requirements(FaultModel::DynamicReadDestructive(Bit::Zero));
        assert_eq!(reqs.len(), 1);
        let tp = reqs[0].alternatives[0];
        assert_eq!(tp.setup, Some(MemOp::write(Cell::I, Bit::Zero)));
        assert_eq!(tp.excite, MemOp::read(Cell::I));
        assert_eq!(tp.to_string(), "(--, w0i:ri, =0)");
    }
}
