//! The curated fault catalog: coverage requirements (TP equivalence
//! classes) and behavioural two-cell machines for every [`FaultModel`].
//!
//! TPs follow the standard detection-condition derivations of van de Goor
//! \[1\]; for the pair faults they coincide with the machine-derived BFE
//! patterns of [`crate::bfe`] (cross-checked by tests). Single-cell TPs
//! use the [`TpKind::SingleCell`](crate::TpKind) convention: they apply
//! at every cell a March sweep visits.

use crate::dir::TransitionDir;
use crate::model::{AdfKind, FaultModel};
use crate::req::CoverageRequirement;
use crate::tp::{Observation, TestPattern};
use marchgen_model::{Bit, Cell, MemOp, PairState, Tri, TwoCellMachine};

fn read_obs(cell: Cell, expected: Bit) -> Observation {
    Observation::Read { cell, expected }
}

/// Coverage requirements of one fault model (see
/// [`requirements_for`](crate::requirements_for) for lists).
#[must_use]
pub fn requirements(model: FaultModel) -> Vec<CoverageRequirement> {
    match model {
        FaultModel::StuckAt(v) => {
            // SA⟨v⟩ is exposed by writing v̄ and reading it back, from any
            // starting state.
            let w = v.flip();
            vec![CoverageRequirement::new(
                format!("SA{v}"),
                vec![TestPattern::single(
                    Tri::X,
                    MemOp::write(Cell::I, w),
                    read_obs(Cell::I, w),
                )],
            )]
        }
        FaultModel::Transition(d) => {
            // TF⟨d⟩: the d transition must actually be exercised, so the
            // initialization pins the pre-transition value.
            vec![CoverageRequirement::new(
                format!("TF<{d}>"),
                vec![TestPattern::single(
                    d.from_value().into(),
                    MemOp::write(Cell::I, d.to_value()),
                    read_obs(Cell::I, d.to_value()),
                )],
            )]
        }
        FaultModel::StuckOpen => {
            // SOF: the latch must hold the stale pre-transition value when
            // the verifying read fires, hence pre-read + immediate.
            let alt = |d: TransitionDir| {
                TestPattern::single(
                    d.from_value().into(),
                    MemOp::write(Cell::I, d.to_value()),
                    read_obs(Cell::I, d.to_value()),
                )
                .with_immediate()
                .with_pre_read()
            };
            vec![CoverageRequirement::new(
                "SOF".to_string(),
                vec![alt(TransitionDir::Up), alt(TransitionDir::Down)],
            )]
        }
        FaultModel::AddressDecoder(AdfKind::Write) => {
            // Writes aimed at one cell also reach the other: expose by
            // writing the aggressor address with the complement of the
            // observed cell's content. Either polarity works — one class
            // of two alternatives per address order.
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let alt = |v: Bit| {
                    let init = PairState::UNKNOWN.with(victim, v.into());
                    TestPattern::pair(init, MemOp::write(aggr, v.flip()), read_obs(victim, v))
                };
                CoverageRequirement::new(
                    format!("ADF<w> ({aggr}-writes reach {victim})"),
                    vec![alt(Bit::One), alt(Bit::Zero)],
                )
            };
            vec![class(Cell::J), class(Cell::I)]
        }
        FaultModel::AddressDecoder(AdfKind::Read) => {
            // Reads of one cell return the other cell's content: expose by
            // reading while the two cells hold opposite values.
            let class = |read: Cell| {
                let alt = |iv: Bit| {
                    let init = PairState::new_known(iv, iv.flip());
                    let expected = match read {
                        Cell::I => iv,
                        Cell::J => iv.flip(),
                    };
                    TestPattern::pair(init, MemOp::read(read), Observation::SelfRead { expected })
                };
                CoverageRequirement::new(
                    format!("ADF<r> (reads of {read} return {})", read.other()),
                    vec![alt(Bit::Zero), alt(Bit::One)],
                )
            };
            vec![class(Cell::J), class(Cell::I)]
        }
        FaultModel::CouplingInversion(d) => {
            // CFin⟨d⟩: the victim flips whichever value it holds, so the
            // two victim polarities are alternatives (Section 5 example).
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let alt = |v: Bit| {
                    let init = PairState::UNKNOWN
                        .with(aggr, d.from_value().into())
                        .with(victim, v.into());
                    TestPattern::pair(init, MemOp::write(aggr, d.to_value()), read_obs(victim, v))
                };
                CoverageRequirement::new(
                    format!("CFin<{d}> (aggressor {aggr})"),
                    vec![alt(Bit::Zero), alt(Bit::One)],
                )
            };
            vec![class(Cell::I), class(Cell::J)]
        }
        FaultModel::CouplingIdempotent(d, f) => {
            // CFid⟨d,f⟩: only a victim holding f̄ shows the forcing — a
            // single TP per address order (paper Figure 3 / f.2.3).
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let init = PairState::UNKNOWN
                    .with(aggr, d.from_value().into())
                    .with(victim, f.flip().into());
                CoverageRequirement::new(
                    format!("CFid<{d},{f}> (aggressor {aggr})"),
                    vec![TestPattern::pair(
                        init,
                        MemOp::write(aggr, d.to_value()),
                        read_obs(victim, f.flip()),
                    )],
                )
            };
            vec![class(Cell::I), class(Cell::J)]
        }
        FaultModel::CouplingState(s, f) => {
            // CFst⟨s,f⟩: while the aggressor holds s the victim is forced
            // to f. Two excitations work: entering the aggressor state
            // with a sensitized victim, or writing the victim under the
            // active condition.
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let enter_condition = TestPattern::pair(
                    PairState::UNKNOWN
                        .with(aggr, s.flip().into())
                        .with(victim, f.flip().into()),
                    MemOp::write(aggr, s),
                    read_obs(victim, f.flip()),
                );
                let write_under_condition = TestPattern::pair(
                    PairState::UNKNOWN.with(aggr, s.into()),
                    MemOp::write(victim, f.flip()),
                    read_obs(victim, f.flip()),
                );
                CoverageRequirement::new(
                    format!("CFst<{s},{f}> (aggressor {aggr})"),
                    vec![enter_condition, write_under_condition],
                )
            };
            vec![class(Cell::I), class(Cell::J)]
        }
        FaultModel::ReadDestructive(x) | FaultModel::IncorrectRead(x) => {
            // Both return the wrong value on the exciting read itself.
            let label = model.to_string();
            vec![CoverageRequirement::new(
                label,
                vec![TestPattern::single(
                    x.into(),
                    MemOp::read(Cell::I),
                    Observation::SelfRead { expected: x },
                )],
            )]
        }
        FaultModel::DeceptiveReadDestructive(x) => {
            // The exciting read answers correctly; a second read catches
            // the flipped cell.
            vec![CoverageRequirement::new(
                model.to_string(),
                vec![TestPattern::single(
                    x.into(),
                    MemOp::read(Cell::I),
                    read_obs(Cell::I, x),
                )],
            )]
        }
        FaultModel::DataRetention(x) => {
            // The cell decays after the wait period T.
            vec![CoverageRequirement::new(
                model.to_string(),
                vec![TestPattern::single(
                    x.into(),
                    MemOp::Delay,
                    read_obs(Cell::I, x),
                )],
            )]
        }
    }
}

/// Behavioural two-cell machines of the fault model's instances, labelled
/// by which cell (or ordered pair role) is affected. Returns an empty
/// vector for [`FaultModel::StuckOpen`], whose sense-amplifier latch is
/// not a function of the pair state (the n-cell simulator models it
/// directly).
#[must_use]
pub fn machines(model: FaultModel) -> Vec<(String, TwoCellMachine)> {
    let m0 = TwoCellMachine::fault_free();
    let states = PairState::all_known();
    match model {
        FaultModel::StuckOpen => Vec::new(),
        FaultModel::StuckAt(v) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                for d in Bit::ALL {
                    m = m.with_delta(s, MemOp::write(c, d), {
                        let good = m0.transition(s, MemOp::write(c, d)).next;
                        good.with(c, v.into())
                    });
                }
                m = m.with_override(
                    s,
                    MemOp::read(c),
                    marchgen_model::Transition {
                        next: s,
                        output: Some(v),
                    },
                );
            }
            m
        }),
        FaultModel::Transition(dir) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                if s.get(c) == dir.from_value().into() {
                    m = m.with_delta(s, MemOp::write(c, dir.to_value()), s);
                }
            }
            m
        }),
        FaultModel::ReadDestructive(x) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                if s.get(c) == x.into() {
                    m = m.with_override(
                        s,
                        MemOp::read(c),
                        marchgen_model::Transition {
                            next: s.with(c, x.flip().into()),
                            output: Some(x.flip()),
                        },
                    );
                }
            }
            m
        }),
        FaultModel::DeceptiveReadDestructive(x) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                if s.get(c) == x.into() {
                    m = m.with_delta(s, MemOp::read(c), s.with(c, x.flip().into()));
                }
            }
            m
        }),
        FaultModel::IncorrectRead(x) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                if s.get(c) == x.into() {
                    m = m.with_lambda(s, MemOp::read(c), Some(x.flip()));
                }
            }
            m
        }),
        FaultModel::DataRetention(x) => per_cell(model, |c| {
            let mut m = m0.clone();
            for s in states {
                if s.get(c) == x.into() {
                    m = m.with_delta(s, MemOp::Delay, s.with(c, x.flip().into()));
                }
            }
            m
        }),
        FaultModel::AddressDecoder(AdfKind::Write) => per_aggressor(model, |aggr| {
            let victim = aggr.other();
            let mut m = m0.clone();
            for s in states {
                for d in Bit::ALL {
                    let good = m0.transition(s, MemOp::write(aggr, d)).next;
                    m = m.with_delta(s, MemOp::write(aggr, d), good.with(victim, d.into()));
                }
            }
            m
        }),
        FaultModel::AddressDecoder(AdfKind::Read) => per_aggressor(model, |read| {
            let other = read.other();
            let mut m = m0.clone();
            for s in states {
                m = m.with_lambda(s, MemOp::read(read), s.get(other).bit());
            }
            m
        }),
        FaultModel::CouplingInversion(dir) => per_aggressor(model, |aggr| {
            let victim = aggr.other();
            let mut m = m0.clone();
            for s in states {
                if s.get(aggr) == dir.from_value().into() {
                    let good = m0.transition(s, MemOp::write(aggr, dir.to_value())).next;
                    m = m.with_delta(
                        s,
                        MemOp::write(aggr, dir.to_value()),
                        good.with(victim, good.get(victim).flip()),
                    );
                }
            }
            m
        }),
        FaultModel::CouplingIdempotent(dir, f) => per_aggressor(model, |aggr| {
            let victim = aggr.other();
            let mut m = m0.clone();
            for s in states {
                if s.get(aggr) == dir.from_value().into() && s.get(victim) == f.flip().into() {
                    let good = m0.transition(s, MemOp::write(aggr, dir.to_value())).next;
                    m = m.with_delta(
                        s,
                        MemOp::write(aggr, dir.to_value()),
                        good.with(victim, f.into()),
                    );
                }
            }
            m
        }),
        FaultModel::CouplingState(cond, f) => per_aggressor(model, |aggr| {
            let victim = aggr.other();
            let mut m = m0.clone();
            for s in states {
                // Entering the condition with a sensitized victim.
                if s.get(aggr) == cond.flip().into() && s.get(victim) == f.flip().into() {
                    let good = m0.transition(s, MemOp::write(aggr, cond)).next;
                    m = m.with_delta(s, MemOp::write(aggr, cond), good.with(victim, f.into()));
                }
                // Victim writes that cannot stick while the condition holds.
                if s.get(aggr) == cond.into() {
                    let good = m0.transition(s, MemOp::write(victim, f.flip())).next;
                    m = m.with_delta(
                        s,
                        MemOp::write(victim, f.flip()),
                        good.with(victim, f.into()),
                    );
                }
            }
            m
        }),
    }
}

fn per_cell(
    model: FaultModel,
    build: impl Fn(Cell) -> TwoCellMachine,
) -> Vec<(String, TwoCellMachine)> {
    Cell::ALL
        .into_iter()
        .map(|c| (format!("{model} on cell {c}"), build(c)))
        .collect()
}

fn per_aggressor(
    model: FaultModel,
    build: impl Fn(Cell) -> TwoCellMachine,
) -> Vec<(String, TwoCellMachine)> {
    Cell::ALL
        .into_iter()
        .map(|c| (format!("{model} (aggressor {c})"), build(c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Figure 2: the CFid ⟨↑,0⟩ machine with aggressor `i` differs
    /// from `M0` in exactly one transition (01 --w1i--> 10).
    #[test]
    fn figure2_cfid_up0_machine() {
        let ms = machines(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero));
        assert_eq!(ms.len(), 2);
        let m0 = TwoCellMachine::fault_free();
        let aggr_i = &ms[0].1;
        let diffs = m0.diff(aggr_i);
        assert_eq!(diffs.len(), 1);
        let d = diffs[0];
        assert_eq!(d.state, PairState::new(Tri::Zero, Tri::One));
        assert_eq!(d.op, MemOp::write(Cell::I, Bit::One));
        assert_eq!(d.faulty.next, PairState::new(Tri::One, Tri::Zero));
    }

    #[test]
    fn cfin_machines_flip_victim_for_both_polarities() {
        let ms = machines(FaultModel::CouplingInversion(TransitionDir::Up));
        let m0 = TwoCellMachine::fault_free();
        for (label, m) in &ms {
            assert_eq!(
                m0.diff(m).len(),
                2,
                "{label} should have two BFEs (Figure 3 analogue)"
            );
        }
    }

    #[test]
    fn every_machine_differs_from_m0() {
        let m0 = TwoCellMachine::fault_free();
        for model in FaultModel::all_classical() {
            for (label, m) in machines(model) {
                assert!(!m0.diff(&m).is_empty(), "{label} equals M0");
            }
        }
    }

    #[test]
    fn all_catalog_tps_are_consistent() {
        for model in FaultModel::all_classical() {
            for req in requirements(model) {
                for tp in &req.alternatives {
                    assert!(tp.is_consistent(), "{model}: inconsistent TP {tp}");
                }
            }
        }
    }

    #[test]
    fn paper_tp_examples_from_cfid() {
        // f.2.3: ⟨↑,0⟩ is tested by TP1 = (01, w1i, r1j), TP2 = (10, w1j, r1i).
        let reqs = requirements(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero));
        assert_eq!(reqs.len(), 2);
        let tp1 = reqs[0].alternatives[0];
        assert_eq!(tp1.init, PairState::new(Tri::Zero, Tri::One));
        assert_eq!(tp1.excite, MemOp::write(Cell::I, Bit::One));
        assert_eq!(
            tp1.observe,
            Observation::Read {
                cell: Cell::J,
                expected: Bit::One
            }
        );
        let tp2 = reqs[1].alternatives[0];
        assert_eq!(tp2, tp1.mirrored());
    }

    #[test]
    fn section4_tps_for_cfid_up1() {
        // TP3 = (00, w1i, r0j), TP4 = (00, w1j, r0i).
        let reqs = requirements(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::One));
        let tp3 = reqs[0].alternatives[0];
        assert_eq!(tp3.init, PairState::new(Tri::Zero, Tri::Zero));
        assert_eq!(
            tp3.observe,
            Observation::Read {
                cell: Cell::J,
                expected: Bit::Zero
            }
        );
        assert_eq!(tp3.obs_state(), PairState::new(Tri::One, Tri::Zero));
    }

    #[test]
    fn sof_requirements_carry_scheduling_attributes() {
        let reqs = requirements(FaultModel::StuckOpen);
        assert_eq!(reqs.len(), 1);
        for tp in &reqs[0].alternatives {
            assert!(tp.immediate && tp.pre_read);
        }
    }

    #[test]
    fn machine_count_conventions() {
        assert_eq!(machines(FaultModel::StuckOpen).len(), 0);
        assert_eq!(machines(FaultModel::StuckAt(Bit::Zero)).len(), 2);
        assert_eq!(machines(FaultModel::AddressDecoder(AdfKind::Read)).len(), 2);
    }
}
