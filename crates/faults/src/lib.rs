//! # marchgen-faults
//!
//! Memory fault models, their decomposition into **Basic Fault Effects**
//! (BFEs) and the **Test Patterns** that cover them — Sections 3 and 5 of
//! Benso et al., *"An Optimal Algorithm for the Automatic Generation of
//! March Tests"* (DATE 2002).
//!
//! The paper models a faulty memory as a Mealy automaton differing from
//! the fault-free two-cell machine `M0`; a BFE is a machine differing in
//! exactly one transition (`δ`) or output (`λ`) entry. Each BFE is covered
//! by a Test Pattern `TP = (I, E, O)` (f.2.3): initialization state,
//! excitation operation and a *read-and-verify* observation.
//!
//! This crate provides:
//!
//! * the taxonomy of classical fault models ([`FaultModel`]): stuck-at,
//!   transition, stuck-open, address-decoder, inversion / idempotent /
//!   state coupling, read-destructive, deceptive read-destructive,
//!   incorrect-read and data-retention faults,
//! * behavioural two-cell machines for each model
//!   ([`catalog::machines`], paper Figure 2),
//! * automatic BFE extraction and TP derivation from *any* faulty machine
//!   ([`bfe`], paper Figure 3) — this is how user-defined faults enter the
//!   flow,
//! * the TP algebra ([`TestPattern`]): observation states, subsumption,
//!   generalization, mirroring,
//! * coverage **requirements** ([`CoverageRequirement`]) — the equivalence
//!   classes `Cᵢ` of Section 5: sets of alternative TPs, any one of which
//!   covers the corresponding fault instance,
//! * a parser for textual fault lists ([`parse_fault_list`]), e.g.
//!   `"SAF, TF, CFid<↑,0>"`.
//!
//! # Example
//!
//! The paper's Section 4 example fault list `{⟨↑,1⟩, ⟨↑,0⟩}` yields the
//! four test patterns TP1–TP4:
//!
//! ```
//! use marchgen_faults::{parse_fault_list, requirements_for};
//!
//! let faults = parse_fault_list("CFid<u,1>, CFid<u,0>")?;
//! let reqs = requirements_for(&faults);
//! assert_eq!(reqs.len(), 4); // one requirement (one TP) per BFE
//! # Ok::<(), marchgen_faults::ParseFaultError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod bfe;
pub mod catalog;
mod dir;
pub mod lowering;
mod model;
mod parse;
pub mod primitives;
mod req;
mod tp;

pub use behavior::{
    FaultBehavior, Invariant, ReadOutput, ReadRule, Role, StoreEffect, WriteEffect, WriteRule,
};
pub use dir::TransitionDir;
pub use model::{AdfKind, FaultModel, FAULT_CLASS_LABELS};
pub use parse::{parse_fault_list, ParseFaultError};
pub use primitives::{PrimitiveClass, TestPrimitive};
pub use req::{requirements_for, CoverageRequirement};
pub use tp::{dedupe_subsumed, generalize, Observation, TestPattern, TpKind};
