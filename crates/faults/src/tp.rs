//! Test Patterns — paper formula f.2.3: `TP = (I, E, O)`.
//!
//! A TP prescribes how to expose one Basic Fault Effect: bring the
//! fault-free memory into a state satisfying `I`, apply the excitation
//! operation `E`, then *read-and-verify* per `O`. The generator chains TPs
//! into a Global Test Sequence; the weight function of the Test Pattern
//! Graph compares a TP's [`observation state`](TestPattern::obs_state)
//! with its successor's initialization state.

use marchgen_model::{Bit, Cell, MemOp, PairState, Tri};
use std::fmt;

/// Whether a TP concerns a single cell (applies at *every* address swept
/// by a March test) or an ordered pair of coupled cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TpKind {
    /// A single-cell fault: operations reference [`Cell::I`] by
    /// convention and the `j` component of the initialization is `-`.
    SingleCell,
    /// A two-cell fault between the lower-addressed cell `i` and the
    /// higher-addressed cell `j`.
    Pair,
}

/// How the fault effect is observed after excitation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Observation {
    /// The excitation operation is itself the observing read: `E` is a
    /// read whose fault-free result is `expected` (λ-faults, read
    /// faults, address-decoder read faults).
    SelfRead {
        /// Value the fault-free memory returns for the exciting read.
        expected: Bit,
    },
    /// A separate *read-and-verify* `r_expected` on `cell` (the paper's
    /// `O = r_d^k`).
    Read {
        /// The observed cell.
        cell: Cell,
        /// Value the fault-free memory holds there.
        expected: Bit,
    },
}

impl Observation {
    /// The cell the observation reads (`cell` for [`Observation::Read`],
    /// the excitation's cell for [`Observation::SelfRead`] — resolved by
    /// the owning [`TestPattern`]).
    #[must_use]
    pub fn read_cell(&self, excite: MemOp) -> Cell {
        match self {
            Observation::Read { cell, .. } => *cell,
            Observation::SelfRead { .. } => excite.cell().unwrap_or(Cell::I),
        }
    }

    /// The value a fault-free memory returns for the observing read.
    #[must_use]
    pub fn expected(&self) -> Bit {
        match self {
            Observation::Read { expected, .. } | Observation::SelfRead { expected } => *expected,
        }
    }
}

/// A Test Pattern `(I, E, O)` with the scheduling attributes the March
/// constructor honours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TestPattern {
    /// `I` — required fault-free memory state before excitation
    /// (`-` components are don't-care).
    pub init: PairState,
    /// `E` — the excitation operation.
    pub excite: MemOp,
    /// `O` — the observation.
    pub observe: Observation,
    /// Single-cell or pair scope.
    pub kind: TpKind,
    /// The observation must *immediately* follow the excitation on the
    /// same cell, inside one March element (stuck-open faults: the
    /// sense-amplifier latch must not be refreshed in between).
    pub immediate: bool,
    /// The excitation must be *immediately preceded* by a read of the
    /// initialization value on the same cell (stuck-open faults again:
    /// the latch must hold the pre-transition value).
    pub pre_read: bool,
    /// Optional sensitizing operation that must *immediately* precede the
    /// excitation on the same cell, making `E` a two-operation sequence
    /// (dynamic faults: e.g. dRDF's `w0` right before the exciting `r0`).
    pub setup: Option<MemOp>,
}

impl TestPattern {
    /// A pair-scope TP with plain (non-immediate) semantics.
    #[must_use]
    pub fn pair(init: PairState, excite: MemOp, observe: Observation) -> TestPattern {
        TestPattern {
            init,
            excite,
            observe,
            kind: TpKind::Pair,
            immediate: false,
            pre_read: false,
            setup: None,
        }
    }

    /// A single-cell TP (`init_j` is forced to `-`, ops on [`Cell::I`]).
    #[must_use]
    pub fn single(init: Tri, excite: MemOp, observe: Observation) -> TestPattern {
        TestPattern {
            init: PairState::new(init, Tri::X),
            excite,
            observe,
            kind: TpKind::SingleCell,
            immediate: false,
            pre_read: false,
            setup: None,
        }
    }

    /// Builder-style: marks the observation as immediate.
    #[must_use]
    pub fn with_immediate(mut self) -> TestPattern {
        self.immediate = true;
        self
    }

    /// Builder-style: requires a read of the init value right before the
    /// excitation.
    #[must_use]
    pub fn with_pre_read(mut self) -> TestPattern {
        self.pre_read = true;
        self
    }

    /// Builder-style: prepends a sensitizing operation that must
    /// immediately precede the excitation (two-operation dynamic TPs).
    #[must_use]
    pub fn with_setup(mut self, op: MemOp) -> TestPattern {
        self.setup = Some(op);
        self
    }

    /// The *observation state* used by the TPG weight function (f.4.1):
    /// the fault-free memory state after applying `E` to `I` (reads and
    /// `T` leave the state unchanged; the observing read never changes
    /// it either).
    #[must_use]
    pub fn obs_state(&self) -> PairState {
        let after_setup = match self.setup {
            Some(MemOp::Write(c, d)) => self.init.with(c, d.into()),
            Some(MemOp::Read(_) | MemOp::Delay) | None => self.init,
        };
        match self.excite {
            MemOp::Write(c, d) => after_setup.with(c, d.into()),
            MemOp::Read(_) | MemOp::Delay => after_setup,
        }
    }

    /// The cell the observation reads.
    #[must_use]
    pub fn observe_cell(&self) -> Cell {
        self.observe.read_cell(self.excite)
    }

    /// The aggressor cell: the one the excitation addresses (delays
    /// excite the observed cell itself).
    #[must_use]
    pub fn excite_cell(&self) -> Cell {
        self.excite.cell().unwrap_or_else(|| self.observe_cell())
    }

    /// `true` when excitation and observation address the same cell.
    #[must_use]
    pub fn is_self_observing(&self) -> bool {
        matches!(self.observe, Observation::SelfRead { .. })
            || self.excite_cell() == self.observe_cell()
    }

    /// Whether a realization of `self` necessarily realizes `other`:
    /// same excitation, observation and attributes, and an
    /// initialization at least as specific (`self.init` specifies every
    /// component `other.init` specifies, with the same value).
    ///
    /// The TF↑ pattern `(0, w1, r1)` subsumes the SA0 pattern
    /// `(-, w1, r1)`: exciting the former also excites the latter, so the
    /// weaker TP need not appear in the tour (this is what lets the
    /// generator reach the paper's 5n for SAF+TF, Table 3 row 2).
    #[must_use]
    pub fn subsumes(&self, other: &TestPattern) -> bool {
        self.excite == other.excite
            && self.observe == other.observe
            && self.kind == other.kind
            && self.immediate == other.immediate
            && self.pre_read == other.pre_read
            && self.setup == other.setup
            && component_subsumes(self.init.i, other.init.i)
            && component_subsumes(self.init.j, other.init.j)
    }

    /// The TP with cells `i`/`j` swapped — the same fault in the other
    /// address order. Single-cell TPs are returned unchanged.
    #[must_use]
    pub fn mirrored(&self) -> TestPattern {
        if self.kind == TpKind::SingleCell {
            return *self;
        }
        let observe = match self.observe {
            Observation::SelfRead { expected } => Observation::SelfRead { expected },
            Observation::Read { cell, expected } => Observation::Read {
                cell: cell.other(),
                expected,
            },
        };
        TestPattern {
            init: self.init.mirrored(),
            excite: self.excite.mirrored(),
            observe,
            setup: self.setup.map(MemOp::mirrored),
            ..*self
        }
    }

    /// The TP with every data value complemented (polarity mirror).
    #[must_use]
    pub fn complement(&self) -> TestPattern {
        let excite = match self.excite {
            MemOp::Write(c, d) => MemOp::Write(c, d.flip()),
            other => other,
        };
        let observe = match self.observe {
            Observation::SelfRead { expected } => Observation::SelfRead {
                expected: expected.flip(),
            },
            Observation::Read { cell, expected } => Observation::Read {
                cell,
                expected: expected.flip(),
            },
        };
        let setup = self.setup.map(|op| match op {
            MemOp::Write(c, d) => MemOp::Write(c, d.flip()),
            other => other,
        });
        TestPattern {
            init: self.init.complement(),
            excite,
            observe,
            setup,
            ..*self
        }
    }

    /// Internal consistency: the observation's expected value must be the
    /// fault-free value of the observed cell after excitation, when the
    /// initialization determines it.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        if self.kind == TpKind::SingleCell {
            if self.init.j != Tri::X {
                return false;
            }
            if self.excite.cell() == Some(Cell::J) || self.observe_cell() == Cell::J {
                return false;
            }
            if self.setup.and_then(|op| op.cell()) == Some(Cell::J) {
                return false;
            }
        }
        let after = self.obs_state().get(self.observe_cell());
        match after.bit() {
            Some(v) => v == self.observe.expected(),
            None => false, // observation of an unconstrained cell cannot verify anything
        }
    }
}

fn component_subsumes(stronger: Tri, weaker: Tri) -> bool {
    match weaker {
        Tri::X => true,
        _ => stronger == weaker,
    }
}

impl fmt::Display for TestPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = match self.observe {
            Observation::SelfRead { expected } => format!("={expected}"),
            Observation::Read { cell, expected } => format!("r{expected}{cell}"),
        };
        match self.setup {
            Some(s) => write!(f, "({}, {}:{}, {})", self.init, s, self.excite, o)?,
            None => write!(f, "({}, {}, {})", self.init, self.excite, o)?,
        }
        if self.immediate {
            f.write_str("!")?;
        }
        if self.pre_read {
            f.write_str("^")?;
        }
        Ok(())
    }
}

/// Removes duplicate and subsumed TPs from a chosen set, keeping the most
/// specific representative of each behaviour (the survivor realizes every
/// TP it absorbed).
#[must_use]
pub fn dedupe_subsumed(tps: &[TestPattern]) -> Vec<TestPattern> {
    let mut kept: Vec<TestPattern> = Vec::new();
    for &tp in tps {
        if kept.iter().any(|k| k.subsumes(&tp)) {
            continue;
        }
        kept.retain(|k| !tp.subsumes(k));
        kept.push(tp);
    }
    kept
}

/// Merges TPs that differ in exactly one don't-careable init component
/// (`(0,E,O)` + `(1,E,O)` → `(-,E,O)`), repeating to a fixed point. Used
/// to canonicalize machine-derived TP classes.
#[must_use]
pub fn generalize(tps: &[TestPattern]) -> Vec<TestPattern> {
    let mut set: Vec<TestPattern> = tps.to_vec();
    set.dedup();
    loop {
        let mut merged = false;
        'outer: for a_idx in 0..set.len() {
            for b_idx in a_idx + 1..set.len() {
                let (a, b) = (set[a_idx], set[b_idx]);
                if a.excite != b.excite
                    || a.observe != b.observe
                    || a.kind != b.kind
                    || a.immediate != b.immediate
                    || a.pre_read != b.pre_read
                    || a.setup != b.setup
                {
                    continue;
                }
                let same_i = a.init.i == b.init.i;
                let same_j = a.init.j == b.init.j;
                let mergeable =
                    (same_i && a.init.j.is_known() && b.init.j.is_known() && a.init.j != b.init.j)
                        || (same_j
                            && a.init.i.is_known()
                            && b.init.i.is_known()
                            && a.init.i != b.init.i);
                if mergeable {
                    let init = if same_i {
                        PairState::new(a.init.i, Tri::X)
                    } else {
                        PairState::new(Tri::X, a.init.j)
                    };
                    let merged_tp = TestPattern { init, ..a };
                    set.remove(b_idx);
                    set.remove(a_idx);
                    set.push(merged_tp);
                    merged = true;
                    break 'outer;
                }
            }
        }
        if !merged {
            return dedupe_subsumed(&set);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp1() -> TestPattern {
        // Paper f.2.3 example: TP1 = (01, w1i, r1j) for CFid ⟨↑,0⟩.
        TestPattern::pair(
            PairState::new(Tri::Zero, Tri::One),
            MemOp::write(Cell::I, Bit::One),
            Observation::Read {
                cell: Cell::J,
                expected: Bit::One,
            },
        )
    }

    fn tp2() -> TestPattern {
        // TP2 = (10, w1j, r1i).
        TestPattern::pair(
            PairState::new(Tri::One, Tri::Zero),
            MemOp::write(Cell::J, Bit::One),
            Observation::Read {
                cell: Cell::I,
                expected: Bit::One,
            },
        )
    }

    #[test]
    fn paper_tp_examples_are_consistent_mirrors() {
        assert!(tp1().is_consistent());
        assert!(tp2().is_consistent());
        assert_eq!(tp1().mirrored(), tp2());
        assert_eq!(tp2().mirrored(), tp1());
    }

    #[test]
    fn obs_state_follows_good_machine() {
        // TP1: init 01, excite w1i → obs state 11.
        assert_eq!(tp1().obs_state(), PairState::new(Tri::One, Tri::One));
        // A read excitation leaves the state unchanged.
        let read_tp = TestPattern::pair(
            PairState::new(Tri::Zero, Tri::One),
            MemOp::read(Cell::J),
            Observation::SelfRead { expected: Bit::One },
        );
        assert_eq!(read_tp.obs_state(), read_tp.init);
    }

    #[test]
    fn subsumption_tf_over_saf() {
        let saf0 = TestPattern::single(
            Tri::X,
            MemOp::write(Cell::I, Bit::One),
            Observation::Read {
                cell: Cell::I,
                expected: Bit::One,
            },
        );
        let tf_up = TestPattern::single(
            Tri::Zero,
            MemOp::write(Cell::I, Bit::One),
            Observation::Read {
                cell: Cell::I,
                expected: Bit::One,
            },
        );
        assert!(tf_up.subsumes(&saf0));
        assert!(!saf0.subsumes(&tf_up));
        assert!(tf_up.subsumes(&tf_up));
        let deduped = dedupe_subsumed(&[saf0, tf_up]);
        assert_eq!(deduped, vec![tf_up]);
    }

    #[test]
    fn dedupe_keeps_unrelated_tps() {
        let deduped = dedupe_subsumed(&[tp1(), tp2(), tp1()]);
        assert_eq!(deduped.len(), 2);
    }

    #[test]
    fn generalize_merges_one_bit_difference() {
        let a = TestPattern::pair(
            PairState::new(Tri::Zero, Tri::Zero),
            MemOp::write(Cell::I, Bit::One),
            Observation::Read {
                cell: Cell::I,
                expected: Bit::One,
            },
        );
        let b = TestPattern::pair(
            PairState::new(Tri::Zero, Tri::One),
            MemOp::write(Cell::I, Bit::One),
            Observation::Read {
                cell: Cell::I,
                expected: Bit::One,
            },
        );
        let g = generalize(&[a, b]);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].init, PairState::new(Tri::Zero, Tri::X));
    }

    #[test]
    fn consistency_rejects_wrong_expectations() {
        // Observing j with expected 0 after an init that sets j=1 (and an
        // excitation that does not touch j) is inconsistent.
        let bad = TestPattern::pair(
            PairState::new(Tri::Zero, Tri::One),
            MemOp::write(Cell::I, Bit::One),
            Observation::Read {
                cell: Cell::J,
                expected: Bit::Zero,
            },
        );
        assert!(!bad.is_consistent());
        // Observing an unconstrained cell is inconsistent too.
        let vague = TestPattern::pair(
            PairState::new(Tri::Zero, Tri::X),
            MemOp::write(Cell::I, Bit::One),
            Observation::Read {
                cell: Cell::J,
                expected: Bit::Zero,
            },
        );
        assert!(!vague.is_consistent());
    }

    #[test]
    fn single_cell_shape_enforced() {
        let ok = TestPattern::single(
            Tri::Zero,
            MemOp::write(Cell::I, Bit::One),
            Observation::Read {
                cell: Cell::I,
                expected: Bit::One,
            },
        );
        assert!(ok.is_consistent());
        let bad = TestPattern {
            kind: TpKind::SingleCell,
            ..tp1() // pair TP masquerading as single-cell
        };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn complement_involutive() {
        for tp in [tp1(), tp2()] {
            assert_eq!(tp.complement().complement(), tp);
            assert!(tp.complement().is_consistent());
        }
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(tp1().to_string(), "(01, w1i, r1j)");
        let sof = TestPattern::single(
            Tri::Zero,
            MemOp::write(Cell::I, Bit::One),
            Observation::Read {
                cell: Cell::I,
                expected: Bit::One,
            },
        )
        .with_immediate()
        .with_pre_read();
        assert_eq!(sof.to_string(), "(0-, w1i, r1i)!^");
    }

    #[test]
    fn setup_sequences_thread_through() {
        // dRDF<0> detection: write 0, then immediately read it back.
        let drdf = TestPattern::single(
            Tri::X,
            MemOp::read(Cell::I),
            Observation::SelfRead {
                expected: Bit::Zero,
            },
        )
        .with_setup(MemOp::write(Cell::I, Bit::Zero));
        assert_eq!(drdf.to_string(), "(--, w0i:ri, =0)");
        assert!(drdf.is_consistent());
        assert_eq!(drdf.obs_state(), PairState::new(Tri::Zero, Tri::X));
        // Setup participates in subsumption identity: the plain read TP
        // neither subsumes nor is subsumed by the dynamic one.
        let plain = TestPattern {
            setup: None,
            init: PairState::new(Tri::Zero, Tri::X),
            ..drdf
        };
        assert!(!plain.subsumes(&drdf));
        assert!(!drdf.subsumes(&plain));
        // Complement flips the setup write; mirror of single-cell is id.
        assert_eq!(drdf.complement().to_string(), "(--, w1i:ri, =1)");
        assert_eq!(drdf.mirrored(), drdf);
    }
}
