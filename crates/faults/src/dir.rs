//! Transition directions of the `⟨S, F⟩` fault notation.

use marchgen_model::Bit;
use std::fmt;

/// The aggressor (or victim) transition of a fault sensitization: `↑`
/// (a `0 → 1` write) or `↓` (a `1 → 0` write), as in the `⟨↑, 0⟩`
/// notation of van de Goor \[9\] used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransitionDir {
    /// `↑` — a write transition `0 → 1`.
    Up,
    /// `↓` — a write transition `1 → 0`.
    Down,
}

impl TransitionDir {
    /// Both directions.
    pub const ALL: [TransitionDir; 2] = [TransitionDir::Up, TransitionDir::Down];

    /// Cell value *before* the transition (`↑` starts from 0).
    #[must_use]
    pub fn from_value(self) -> Bit {
        match self {
            TransitionDir::Up => Bit::Zero,
            TransitionDir::Down => Bit::One,
        }
    }

    /// Cell value *after* the transition (`↑` ends at 1); also the value
    /// the exciting write carries.
    #[must_use]
    pub fn to_value(self) -> Bit {
        self.from_value().flip()
    }

    /// The opposite direction.
    #[must_use]
    pub fn reversed(self) -> TransitionDir {
        match self {
            TransitionDir::Up => TransitionDir::Down,
            TransitionDir::Down => TransitionDir::Up,
        }
    }
}

impl fmt::Display for TransitionDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransitionDir::Up => "↑",
            TransitionDir::Down => "↓",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_is_zero_to_one() {
        assert_eq!(TransitionDir::Up.from_value(), Bit::Zero);
        assert_eq!(TransitionDir::Up.to_value(), Bit::One);
        assert_eq!(TransitionDir::Down.to_value(), Bit::Zero);
    }

    #[test]
    fn reversal() {
        for d in TransitionDir::ALL {
            assert_eq!(d.reversed().reversed(), d);
            assert_ne!(d.reversed(), d);
        }
    }

    #[test]
    fn display_arrows() {
        assert_eq!(TransitionDir::Up.to_string(), "↑");
        assert_eq!(TransitionDir::Down.to_string(), "↓");
    }
}
