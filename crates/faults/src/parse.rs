//! Parser for textual fault lists, e.g. `"SAF, TF, ADF, CFin, CFid"`
//! (the rows of the paper's Table 3) or fully qualified single models
//! like `"CFid<↑,0>"`.

use crate::dir::TransitionDir;
use crate::model::{AdfKind, FaultModel};
use marchgen_model::Bit;
use std::fmt;

/// Error produced when a fault list cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultError {
    /// The offending token.
    pub token: String,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ParseFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault token {:?}: {}", self.token, self.message)
    }
}

impl std::error::Error for ParseFaultError {}

/// Parses a comma/plus/whitespace-separated fault list.
///
/// Family names expand to every member:
///
/// * `SAF` → `SA0, SA1`
/// * `TF` → `TF<↑>, TF<↓>`
/// * `ADF` (or `AF`) → `ADF<w>, ADF<r>`
/// * `CFin` → both directions; `CFid` → all four `⟨dir, value⟩`
/// * `CFst` → all four `⟨state, value⟩`
/// * `RDF`/`DRDF`/`IRF`/`DRF` → both polarities
/// * `LCF` → both polarities of the linked idempotent coupling pair
/// * `dRDF`/`dDRDF`/`dIRF` (**case-sensitive** leading `d`) → both
///   polarities of the two-operation dynamic read faults
///
/// Qualified forms use `<...>` with `u`/`d` (or `↑`/`↓`) and `0`/`1`, e.g.
/// `CFid<u,0>`, `TF<d>`, `DRF<1>`. Parsing is case-insensitive.
///
/// # Errors
///
/// Returns [`ParseFaultError`] for the first unrecognized token.
pub fn parse_fault_list(src: &str) -> Result<Vec<FaultModel>, ParseFaultError> {
    let mut out = Vec::new();
    // Split on , + ; — but not inside <...>, where commas are arguments.
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut tokens = Vec::new();
    for (pos, c) in src.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => depth = depth.saturating_sub(1),
            ',' | '+' | ';' if depth == 0 => {
                tokens.push(&src[start..pos]);
                start = pos + c.len_utf8();
            }
            _ => {}
        }
    }
    tokens.push(&src[start..]);
    for raw in tokens {
        let token = raw.trim();
        if token.is_empty() {
            continue;
        }
        out.extend(parse_token(token)?);
    }
    Ok(out)
}

fn err(token: &str, message: impl Into<String>) -> ParseFaultError {
    ParseFaultError {
        token: token.to_string(),
        message: message.into(),
    }
}

fn parse_dir(token: &str, s: &str) -> Result<TransitionDir, ParseFaultError> {
    match s.trim() {
        "u" | "U" | "↑" | "up" | "UP" | "Up" => Ok(TransitionDir::Up),
        "d" | "D" | "↓" | "down" | "DOWN" | "Down" => Ok(TransitionDir::Down),
        other => Err(err(
            token,
            format!("expected a direction (u/d/↑/↓), got {other:?}"),
        )),
    }
}

fn parse_bit(token: &str, s: &str) -> Result<Bit, ParseFaultError> {
    match s.trim() {
        "0" => Ok(Bit::Zero),
        "1" => Ok(Bit::One),
        other => Err(err(token, format!("expected a value (0/1), got {other:?}"))),
    }
}

/// Splits `name<args>` into `(name, Some(args))`, or `(token, None)`.
fn split_args(token: &str) -> Result<(&str, Option<&str>), ParseFaultError> {
    match token.find('<') {
        None => Ok((token, None)),
        Some(open) => {
            let Some(stripped) = token[open..]
                .strip_prefix('<')
                .and_then(|s| s.strip_suffix('>'))
            else {
                return Err(err(token, "unbalanced '<...>'"));
            };
            Ok((&token[..open], Some(stripped)))
        }
    }
}

fn parse_token(token: &str) -> Result<Vec<FaultModel>, ParseFaultError> {
    let (name, args) = split_args(token)?;
    // The dynamic-fault mnemonics are case-sensitive: the leading
    // lowercase `d` distinguishes dRDF/dIRF from the static DRF-family
    // tokens (`drdf` etc. still reach the case-insensitive match below).
    match name.trim() {
        "dRDF" => {
            return match args {
                None => Ok(Bit::ALL.map(FaultModel::DynamicReadDestructive).to_vec()),
                Some(a) => Ok(vec![FaultModel::DynamicReadDestructive(parse_bit(
                    token, a,
                )?)]),
            }
        }
        "dDRDF" => {
            return match args {
                None => Ok(Bit::ALL
                    .map(FaultModel::DynamicDeceptiveReadDestructive)
                    .to_vec()),
                Some(a) => Ok(vec![FaultModel::DynamicDeceptiveReadDestructive(
                    parse_bit(token, a)?,
                )]),
            }
        }
        "dIRF" => {
            return match args {
                None => Ok(Bit::ALL.map(FaultModel::DynamicIncorrectRead).to_vec()),
                Some(a) => Ok(vec![FaultModel::DynamicIncorrectRead(parse_bit(token, a)?)]),
            }
        }
        _ => {}
    }
    let upper = name.trim().to_ascii_uppercase();
    let one_dir = |args: Option<&str>| -> Result<Vec<FaultModel>, ParseFaultError> {
        match args {
            None => Ok(TransitionDir::ALL.map(FaultModel::Transition).to_vec()),
            Some(a) => Ok(vec![FaultModel::Transition(parse_dir(token, a)?)]),
        }
    };
    match upper.as_str() {
        "SAF" => match args {
            None => Ok(Bit::ALL.map(FaultModel::StuckAt).to_vec()),
            Some(a) => Ok(vec![FaultModel::StuckAt(parse_bit(token, a)?)]),
        },
        "SA0" => Ok(vec![FaultModel::StuckAt(Bit::Zero)]),
        "SA1" => Ok(vec![FaultModel::StuckAt(Bit::One)]),
        "TF" => one_dir(args),
        "SOF" => Ok(vec![FaultModel::StuckOpen]),
        "ADF" | "AF" => match args {
            None => Ok(vec![
                FaultModel::AddressDecoder(AdfKind::Write),
                FaultModel::AddressDecoder(AdfKind::Read),
            ]),
            Some("w") | Some("W") => Ok(vec![FaultModel::AddressDecoder(AdfKind::Write)]),
            Some("r") | Some("R") => Ok(vec![FaultModel::AddressDecoder(AdfKind::Read)]),
            Some(other) => Err(err(token, format!("expected <w> or <r>, got {other:?}"))),
        },
        "CFIN" => match args {
            None => Ok(TransitionDir::ALL
                .map(FaultModel::CouplingInversion)
                .to_vec()),
            Some(a) => Ok(vec![FaultModel::CouplingInversion(parse_dir(token, a)?)]),
        },
        "CFID" => match args {
            None => {
                let mut v = Vec::new();
                for d in TransitionDir::ALL {
                    for b in Bit::ALL {
                        v.push(FaultModel::CouplingIdempotent(d, b));
                    }
                }
                Ok(v)
            }
            Some(a) => {
                let (d, b) = a
                    .split_once(',')
                    .ok_or_else(|| err(token, "expected <dir,value>, e.g. CFid<u,0>"))?;
                Ok(vec![FaultModel::CouplingIdempotent(
                    parse_dir(token, d)?,
                    parse_bit(token, b)?,
                )])
            }
        },
        "CFST" => match args {
            None => {
                let mut v = Vec::new();
                for s in Bit::ALL {
                    for f in Bit::ALL {
                        v.push(FaultModel::CouplingState(s, f));
                    }
                }
                Ok(v)
            }
            Some(a) => {
                let (s, f) = a
                    .split_once(',')
                    .ok_or_else(|| err(token, "expected <state,value>, e.g. CFst<1,0>"))?;
                Ok(vec![FaultModel::CouplingState(
                    parse_bit(token, s)?,
                    parse_bit(token, f)?,
                )])
            }
        },
        "RDF" => match args {
            None => Ok(Bit::ALL.map(FaultModel::ReadDestructive).to_vec()),
            Some(a) => Ok(vec![FaultModel::ReadDestructive(parse_bit(token, a)?)]),
        },
        "DRDF" => match args {
            None => Ok(Bit::ALL.map(FaultModel::DeceptiveReadDestructive).to_vec()),
            Some(a) => Ok(vec![FaultModel::DeceptiveReadDestructive(parse_bit(
                token, a,
            )?)]),
        },
        "IRF" => match args {
            None => Ok(Bit::ALL.map(FaultModel::IncorrectRead).to_vec()),
            Some(a) => Ok(vec![FaultModel::IncorrectRead(parse_bit(token, a)?)]),
        },
        "DRF" => match args {
            None => Ok(Bit::ALL.map(FaultModel::DataRetention).to_vec()),
            Some(a) => Ok(vec![FaultModel::DataRetention(parse_bit(token, a)?)]),
        },
        "LCF" => match args {
            None => Ok(Bit::ALL.map(FaultModel::LinkedIdempotent).to_vec()),
            Some(a) => Ok(vec![FaultModel::LinkedIdempotent(parse_bit(token, a)?)]),
        },
        other => Err(err(token, format!("unknown fault model {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_row5_fault_list() {
        let fl = parse_fault_list("SAF, TF, ADF, CFin, CFid").unwrap();
        // 2 + 2 + 2 + 2 + 4
        assert_eq!(fl.len(), 12);
    }

    #[test]
    fn qualified_tokens() {
        assert_eq!(
            parse_fault_list("CFid<u,0>").unwrap(),
            vec![FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero)]
        );
        assert_eq!(
            parse_fault_list("CFid<↑,1>").unwrap(),
            vec![FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::One)]
        );
        assert_eq!(
            parse_fault_list("TF<d>").unwrap(),
            vec![FaultModel::Transition(TransitionDir::Down)]
        );
        assert_eq!(
            parse_fault_list("SA1").unwrap(),
            vec![FaultModel::StuckAt(Bit::One)]
        );
        assert_eq!(
            parse_fault_list("DRF<0>").unwrap(),
            vec![FaultModel::DataRetention(Bit::Zero)]
        );
        assert_eq!(
            parse_fault_list("ADF<w>").unwrap(),
            vec![FaultModel::AddressDecoder(AdfKind::Write)]
        );
    }

    #[test]
    fn separators_and_case() {
        let a = parse_fault_list("saf+tf").unwrap();
        let b = parse_fault_list("SAF, TF").unwrap();
        assert_eq!(a, b);
        assert_eq!(parse_fault_list("").unwrap(), Vec::new());
    }

    #[test]
    fn display_roundtrip() {
        // Property: every variant's printed form re-parses to exactly
        // itself — including the linked and dynamic extensions.
        for model in FaultModel::all_extended() {
            let parsed = parse_fault_list(&model.to_string()).unwrap();
            assert_eq!(parsed, vec![model], "roundtrip of {model}");
        }
    }

    #[test]
    fn dynamic_tokens_are_case_sensitive() {
        assert_eq!(
            parse_fault_list("dRDF<0>").unwrap(),
            vec![FaultModel::DynamicReadDestructive(Bit::Zero)]
        );
        assert_eq!(
            parse_fault_list("dRDF").unwrap(),
            vec![
                FaultModel::DynamicReadDestructive(Bit::Zero),
                FaultModel::DynamicReadDestructive(Bit::One),
            ]
        );
        assert_eq!(
            parse_fault_list("dDRDF<1>").unwrap(),
            vec![FaultModel::DynamicDeceptiveReadDestructive(Bit::One)]
        );
        assert_eq!(
            parse_fault_list("dIRF").unwrap().len(),
            2,
            "family token expands both polarities"
        );
        // A lowercased `drdf` is still the static deceptive read fault.
        assert_eq!(
            parse_fault_list("drdf").unwrap(),
            Bit::ALL.map(FaultModel::DeceptiveReadDestructive).to_vec()
        );
    }

    #[test]
    fn linked_tokens() {
        assert_eq!(
            parse_fault_list("LCF").unwrap(),
            Bit::ALL.map(FaultModel::LinkedIdempotent).to_vec()
        );
        assert_eq!(
            parse_fault_list("lcf<1>").unwrap(),
            vec![FaultModel::LinkedIdempotent(Bit::One)]
        );
        assert!(parse_fault_list("LCF<x>").is_err());
    }

    #[test]
    fn errors_carry_token() {
        let e = parse_fault_list("SAF, BOGUS").unwrap_err();
        assert_eq!(e.token, "BOGUS");
        assert!(e.to_string().contains("BOGUS"));
        assert!(parse_fault_list("CFid<u").is_err());
        assert!(parse_fault_list("CFid<x,0>").is_err());
        assert!(parse_fault_list("TF<2>").is_err());
        assert!(parse_fault_list("CFid<u0>").is_err());
    }
}
