//! Basic Fault Effect extraction — paper Figure 3.
//!
//! A faulty machine `Mᵢ` is split into BFEs by diffing it against `M0`:
//! every differing `(state, op)` entry is one BFE. A Test Pattern is then
//! derived mechanically from each BFE: the initialization is the diff's
//! source state, the excitation its operation, and the observation either
//! the mis-produced output (λ-BFEs) or a read of a corrupted cell
//! (δ-BFEs).
//!
//! This is the paper's route for **user-defined faults**: model the
//! behaviour as a [`TwoCellMachine`], call [`derive_requirement`], feed
//! the result to the generator.

use crate::req::CoverageRequirement;
use crate::tp::{generalize, Observation, TestPattern};
use marchgen_model::{Cell, MachineDiff, TwoCellMachine};

/// One Basic Fault Effect: a single `(δ, λ)` divergence from `M0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bfe {
    /// The diverging entry.
    pub diff: MachineDiff,
}

impl Bfe {
    /// The machine realizing exactly this BFE (paper Figure 3: `M0` with
    /// one overridden entry).
    #[must_use]
    pub fn machine(&self) -> TwoCellMachine {
        TwoCellMachine::fault_free().with_override(self.diff.state, self.diff.op, self.diff.faulty)
    }

    /// The Test Patterns that expose this BFE, one per observable
    /// divergence channel (wrong output, and/or each corrupted cell with a
    /// known fault-free value).
    #[must_use]
    pub fn test_patterns(&self) -> Vec<TestPattern> {
        let d = &self.diff;
        let mut tps = Vec::new();
        if d.good.output != d.faulty.output {
            if let Some(expected) = d.good.output {
                tps.push(TestPattern::pair(
                    d.state,
                    d.op,
                    Observation::SelfRead { expected },
                ));
            }
        }
        for cell in Cell::ALL {
            let good = d.good.next.get(cell);
            let faulty = d.faulty.next.get(cell);
            if good != faulty {
                if let Some(expected) = good.bit() {
                    tps.push(TestPattern::pair(
                        d.state,
                        d.op,
                        Observation::Read { cell, expected },
                    ));
                }
            }
        }
        tps
    }
}

/// Splits a faulty machine into its BFEs (paper Figure 3).
#[must_use]
pub fn extract(machine: &TwoCellMachine) -> Vec<Bfe> {
    TwoCellMachine::fault_free()
        .diff(machine)
        .into_iter()
        .map(|diff| Bfe { diff })
        .collect()
}

/// Derives the coverage requirement of a faulty machine: all BFE test
/// patterns, generalized (one-bit don't-care merging) — any one of them
/// exposes the fault.
///
/// Returns `None` when the machine has no observable divergence (it
/// behaves exactly like `M0`).
#[must_use]
pub fn derive_requirement(
    machine: &TwoCellMachine,
    label: impl Into<String>,
) -> Option<CoverageRequirement> {
    let tps: Vec<TestPattern> = extract(machine)
        .iter()
        .flat_map(Bfe::test_patterns)
        .collect();
    if tps.is_empty() {
        return None;
    }
    Some(CoverageRequirement::new(label, generalize(&tps)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::dir::TransitionDir;
    use crate::model::FaultModel;
    use marchgen_model::{Bit, MemOp, PairState, Tri};

    /// Paper Figure 3: the full CFid ⟨↑,0⟩ fault (both address orders)
    /// decomposes into two BFEs, tested by TP1 = (01, w1i, r1j) and
    /// TP2 = (10, w1j, r1i).
    #[test]
    fn figure3_bfe_split_of_cfid_up0() {
        let machines =
            catalog::machines(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero));
        let mut tps = Vec::new();
        for (_, m) in &machines {
            let bfes = extract(m);
            assert_eq!(bfes.len(), 1, "each order contributes one BFE");
            tps.extend(bfes[0].test_patterns());
        }
        assert_eq!(tps.len(), 2);
        let tp1 = TestPattern::pair(
            PairState::new(Tri::Zero, Tri::One),
            MemOp::write(marchgen_model::Cell::I, Bit::One),
            Observation::Read {
                cell: marchgen_model::Cell::J,
                expected: Bit::One,
            },
        );
        assert!(tps.contains(&tp1));
        assert!(tps.contains(&tp1.mirrored()));
    }

    /// Machine-derived requirements agree with the curated catalog for the
    /// idempotent coupling faults.
    #[test]
    fn derived_matches_catalog_for_cfid() {
        for dir in TransitionDir::ALL {
            for f in Bit::ALL {
                let model = FaultModel::CouplingIdempotent(dir, f);
                let machines = catalog::machines(model);
                let catalog_reqs = catalog::requirements(model);
                for ((label, m), want) in machines.iter().zip(&catalog_reqs) {
                    let got = derive_requirement(m, label.clone()).expect("observable");
                    assert_eq!(
                        got.alternatives, want.alternatives,
                        "{model}: machine-derived TPs diverge from catalog"
                    );
                }
            }
        }
    }

    /// CFin machines derive the two-alternative classes of Section 5.
    #[test]
    fn derived_cfin_classes_have_two_alternatives() {
        for dir in TransitionDir::ALL {
            let model = FaultModel::CouplingInversion(dir);
            for (label, m) in catalog::machines(model) {
                let req = derive_requirement(&m, label).expect("observable");
                assert_eq!(req.cardinality(), 2);
            }
        }
    }

    #[test]
    fn bfe_machine_is_single_diff() {
        let m = catalog::machines(FaultModel::CouplingInversion(TransitionDir::Up))
            .remove(0)
            .1;
        for bfe in extract(&m) {
            assert!(bfe.machine().is_bfe());
        }
    }

    #[test]
    fn fault_free_machine_has_no_requirement() {
        assert!(derive_requirement(&TwoCellMachine::fault_free(), "none").is_none());
    }

    /// A user-defined fault: writing 1 to `i` also clears `j` (a made-up
    /// "write-coupled clear"). The derived requirement is usable directly.
    #[test]
    fn user_defined_fault_roundtrip() {
        let m0 = TwoCellMachine::fault_free();
        let mut m = m0.clone();
        for s in PairState::all_known() {
            let good = m0
                .transition(s, MemOp::write(marchgen_model::Cell::I, Bit::One))
                .next;
            m = m.with_delta(
                s,
                MemOp::write(marchgen_model::Cell::I, Bit::One),
                good.with(marchgen_model::Cell::J, Tri::Zero),
            );
        }
        let req = derive_requirement(&m, "write-coupled clear").expect("observable");
        // Only states with j=1 diverge observably; generalization merges
        // the i polarities.
        assert_eq!(req.cardinality(), 1);
        let tp = req.alternatives[0];
        assert_eq!(tp.init, PairState::new(Tri::X, Tri::One));
        assert_eq!(tp.excite, MemOp::write(marchgen_model::Cell::I, Bit::One));
    }

    /// λ-faults derive self-observing TPs.
    #[test]
    fn lambda_fault_derives_self_read() {
        let model = FaultModel::IncorrectRead(Bit::One);
        let (label, m) = catalog::machines(model).remove(0);
        let req = derive_requirement(&m, label).expect("observable");
        assert!(req
            .alternatives
            .iter()
            .all(|tp| matches!(tp.observe, Observation::SelfRead { .. })));
    }
}
