//! Lowering-equivalence suite: the primitive-driven requirement
//! derivation (`FaultModel` → [`marchgen_faults::lowering`] →
//! [`TestPrimitive`](marchgen_faults::TestPrimitive) →
//! [`CoverageRequirement`]) must reproduce the legacy hand-written
//! per-model catalog **exactly** — labels byte-identical, alternatives
//! in the same order, `immediate`/`pre_read` attributes preserved —
//! for every instance of the classical taxonomy.
//!
//! The oracle below is the pre-refactor `catalog::requirements` match,
//! copied verbatim. It is intentionally frozen: if the lowering ever
//! drifts, this suite localizes the divergence to a single model.

use marchgen_faults::{
    requirements_for, AdfKind, CoverageRequirement, FaultModel, Observation, TestPattern,
    TransitionDir,
};
use marchgen_model::{Bit, Cell, MemOp, PairState, Tri};

fn read_obs(cell: Cell, expected: Bit) -> Observation {
    Observation::Read { cell, expected }
}

/// The legacy per-model requirements derivation, frozen as an oracle.
fn legacy_requirements(model: FaultModel) -> Vec<CoverageRequirement> {
    match model {
        FaultModel::StuckAt(v) => {
            // SA⟨v⟩ is exposed by writing v̄ and reading it back, from any
            // starting state.
            let w = v.flip();
            vec![CoverageRequirement::new(
                format!("SA{v}"),
                vec![TestPattern::single(
                    Tri::X,
                    MemOp::write(Cell::I, w),
                    read_obs(Cell::I, w),
                )],
            )]
        }
        FaultModel::Transition(d) => {
            // TF⟨d⟩: the d transition must actually be exercised, so the
            // initialization pins the pre-transition value.
            vec![CoverageRequirement::new(
                format!("TF<{d}>"),
                vec![TestPattern::single(
                    d.from_value().into(),
                    MemOp::write(Cell::I, d.to_value()),
                    read_obs(Cell::I, d.to_value()),
                )],
            )]
        }
        FaultModel::StuckOpen => {
            // SOF: the latch must hold the stale pre-transition value when
            // the verifying read fires, hence pre-read + immediate.
            let alt = |d: TransitionDir| {
                TestPattern::single(
                    d.from_value().into(),
                    MemOp::write(Cell::I, d.to_value()),
                    read_obs(Cell::I, d.to_value()),
                )
                .with_immediate()
                .with_pre_read()
            };
            vec![CoverageRequirement::new(
                "SOF".to_string(),
                vec![alt(TransitionDir::Up), alt(TransitionDir::Down)],
            )]
        }
        FaultModel::AddressDecoder(AdfKind::Write) => {
            // Writes aimed at one cell also reach the other: expose by
            // writing the aggressor address with the complement of the
            // observed cell's content. Either polarity works — one class
            // of two alternatives per address order.
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let alt = |v: Bit| {
                    let init = PairState::UNKNOWN.with(victim, v.into());
                    TestPattern::pair(init, MemOp::write(aggr, v.flip()), read_obs(victim, v))
                };
                CoverageRequirement::new(
                    format!("ADF<w> ({aggr}-writes reach {victim})"),
                    vec![alt(Bit::One), alt(Bit::Zero)],
                )
            };
            vec![class(Cell::J), class(Cell::I)]
        }
        FaultModel::AddressDecoder(AdfKind::Read) => {
            // Reads of one cell return the other cell's content: expose by
            // reading while the two cells hold opposite values.
            let class = |read: Cell| {
                let alt = |iv: Bit| {
                    let init = PairState::new_known(iv, iv.flip());
                    let expected = match read {
                        Cell::I => iv,
                        Cell::J => iv.flip(),
                    };
                    TestPattern::pair(init, MemOp::read(read), Observation::SelfRead { expected })
                };
                CoverageRequirement::new(
                    format!("ADF<r> (reads of {read} return {})", read.other()),
                    vec![alt(Bit::Zero), alt(Bit::One)],
                )
            };
            vec![class(Cell::J), class(Cell::I)]
        }
        FaultModel::CouplingInversion(d) => {
            // CFin⟨d⟩: the victim flips whichever value it holds, so the
            // two victim polarities are alternatives (Section 5 example).
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let alt = |v: Bit| {
                    let init = PairState::UNKNOWN
                        .with(aggr, d.from_value().into())
                        .with(victim, v.into());
                    TestPattern::pair(init, MemOp::write(aggr, d.to_value()), read_obs(victim, v))
                };
                CoverageRequirement::new(
                    format!("CFin<{d}> (aggressor {aggr})"),
                    vec![alt(Bit::Zero), alt(Bit::One)],
                )
            };
            vec![class(Cell::I), class(Cell::J)]
        }
        FaultModel::CouplingIdempotent(d, f) => {
            // CFid⟨d,f⟩: only a victim holding f̄ shows the forcing — a
            // single TP per address order (paper Figure 3 / f.2.3).
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let init = PairState::UNKNOWN
                    .with(aggr, d.from_value().into())
                    .with(victim, f.flip().into());
                CoverageRequirement::new(
                    format!("CFid<{d},{f}> (aggressor {aggr})"),
                    vec![TestPattern::pair(
                        init,
                        MemOp::write(aggr, d.to_value()),
                        read_obs(victim, f.flip()),
                    )],
                )
            };
            vec![class(Cell::I), class(Cell::J)]
        }
        FaultModel::CouplingState(s, f) => {
            // CFst⟨s,f⟩: while the aggressor holds s the victim is forced
            // to f. Two excitations work: entering the aggressor state
            // with a sensitized victim, or writing the victim under the
            // active condition.
            let class = |aggr: Cell| {
                let victim = aggr.other();
                let enter_condition = TestPattern::pair(
                    PairState::UNKNOWN
                        .with(aggr, s.flip().into())
                        .with(victim, f.flip().into()),
                    MemOp::write(aggr, s),
                    read_obs(victim, f.flip()),
                );
                let write_under_condition = TestPattern::pair(
                    PairState::UNKNOWN.with(aggr, s.into()),
                    MemOp::write(victim, f.flip()),
                    read_obs(victim, f.flip()),
                );
                CoverageRequirement::new(
                    format!("CFst<{s},{f}> (aggressor {aggr})"),
                    vec![enter_condition, write_under_condition],
                )
            };
            vec![class(Cell::I), class(Cell::J)]
        }
        FaultModel::ReadDestructive(x) | FaultModel::IncorrectRead(x) => {
            // Both return the wrong value on the exciting read itself.
            let label = model.to_string();
            vec![CoverageRequirement::new(
                label,
                vec![TestPattern::single(
                    x.into(),
                    MemOp::read(Cell::I),
                    Observation::SelfRead { expected: x },
                )],
            )]
        }
        FaultModel::DeceptiveReadDestructive(x) => {
            // The exciting read answers correctly; a second read catches
            // the flipped cell.
            vec![CoverageRequirement::new(
                model.to_string(),
                vec![TestPattern::single(
                    x.into(),
                    MemOp::read(Cell::I),
                    read_obs(Cell::I, x),
                )],
            )]
        }
        FaultModel::DataRetention(x) => {
            // The cell decays after the wait period T.
            vec![CoverageRequirement::new(
                model.to_string(),
                vec![TestPattern::single(
                    x.into(),
                    MemOp::Delay,
                    read_obs(Cell::I, x),
                )],
            )]
        }
        other => unreachable!("oracle covers the classical taxonomy only, got {other}"),
    }
}

/// Every classical instance: the primitive-lowered requirements equal
/// the legacy hand-written derivation exactly (labels, alternative
/// order, TP attributes).
#[test]
fn primitive_lowering_reproduces_legacy_catalog() {
    for model in FaultModel::all_classical() {
        let lowered = marchgen_faults::catalog::requirements(model);
        let legacy = legacy_requirements(model);
        assert_eq!(
            lowered, legacy,
            "primitive lowering diverged from the legacy catalog on {model}"
        );
    }
}

/// The aggregate path the pipeline consumes ([`requirements_for`])
/// matches the legacy oracle fed through the same cross-model merge
/// (requirements with identical alternative sets collapse into one
/// class with a concatenated label) over the whole classical catalog.
#[test]
fn requirements_for_matches_merged_legacy_oracle() {
    let models = FaultModel::all_classical();
    let lowered = requirements_for(&models);
    let mut legacy: Vec<CoverageRequirement> = Vec::new();
    for req in models.iter().copied().flat_map(legacy_requirements) {
        if let Some(existing) = legacy
            .iter_mut()
            .find(|r| r.alternatives == req.alternatives)
        {
            if !existing.label.contains(&req.label) {
                existing.label = format!("{} + {}", existing.label, req.label);
            }
        } else {
            legacy.push(req);
        }
    }
    assert_eq!(lowered, legacy);
}

/// Field-level localization: if the structural equality above ever
/// fails, these per-field checks name the first divergent label or
/// attribute instead of dumping two whole requirement trees.
#[test]
fn labels_and_attributes_match_per_model() {
    for model in FaultModel::all_classical() {
        let lowered = marchgen_faults::catalog::requirements(model);
        let legacy = legacy_requirements(model);
        assert_eq!(lowered.len(), legacy.len(), "class count for {model}");
        for (new_req, old_req) in lowered.iter().zip(&legacy) {
            assert_eq!(new_req.label, old_req.label, "label for {model}");
            assert_eq!(
                new_req.alternatives.len(),
                old_req.alternatives.len(),
                "alternative count for {model} / {}",
                new_req.label
            );
            for (new_tp, old_tp) in new_req.alternatives.iter().zip(&old_req.alternatives) {
                assert_eq!(new_tp.kind, old_tp.kind, "TP kind for {model}");
                assert_eq!(new_tp.excite, old_tp.excite, "excitation for {model}");
                assert_eq!(new_tp.observe, old_tp.observe, "observation for {model}");
                assert_eq!(new_tp.setup, old_tp.setup, "setup op for {model}");
                assert_eq!(new_tp.immediate, old_tp.immediate, "immediate for {model}");
                assert_eq!(new_tp.pre_read, old_tp.pre_read, "pre_read for {model}");
            }
        }
    }
}
