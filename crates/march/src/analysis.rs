//! Static detection-condition analysis of March tests.
//!
//! The classical March literature (van de Goor \[1\], \[9\] — the paper's
//! references) gives *syntactic* conditions on a test that are sufficient
//! for detecting fault families, independent of any simulation. This
//! module implements the well-established ones; the simulator crate
//! cross-validates them (a condition holding must imply simulated
//! coverage), which guards both implementations at once.
//!
//! Implemented conditions:
//!
//! * **SAF** — every cell is read at least once expecting `0` and once
//!   expecting `1`.
//! * **TF** — each write transition (`0→1`, `1→0`) is exercised from a
//!   test-established value and verified by a read before the next write.
//! * **AF** (address decoder) — van de Goor's pair condition: the test
//!   contains an `⇑`-element of shape `(r_x, …, w_x̄)` *and* a
//!   `⇓`-element of shape `(r_y, …, w_ȳ)` (first operation a read, last
//!   a write of the complement).
//! * **SOF** — some element applies `r_x, …, w_x̄, r_x̄` with the
//!   verifying read immediately after the transition write.
//! * **DRF** — for each data value, a delay separates establishing the
//!   value and verifying it.

use crate::element::{Direction, MarchElement};
use crate::op::MarchOp;
use crate::test::MarchTest;
use marchgen_model::Bit;

/// The outcome of the static analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Conditions {
    /// Stuck-at condition.
    pub saf: bool,
    /// Transition-fault condition (both directions).
    pub tf: bool,
    /// van de Goor's address-decoder pair condition.
    pub af: bool,
    /// Stuck-open condition (read–write–read element shape).
    pub sof: bool,
    /// Data-retention condition (delays covering both stored values).
    pub drf: bool,
}

/// Analyzes a March test. The conditions are *sufficient*: a `true`
/// guarantees detection of the family; a `false` is inconclusive (the
/// simulator gives the exact answer).
#[must_use]
pub fn analyze(test: &MarchTest) -> Conditions {
    Conditions {
        saf: saf_condition(test),
        tf: tf_condition(test, Bit::Zero) && tf_condition(test, Bit::One),
        af: af_condition(test),
        sof: sof_condition(test),
        drf: drf_condition(test, Bit::Zero) && drf_condition(test, Bit::One),
    }
}

/// Reads of both polarities occur.
fn saf_condition(test: &MarchTest) -> bool {
    let seq = test.per_cell_sequence();
    let has = |d: Bit| seq.contains(&MarchOp::Read(d));
    has(Bit::Zero) && has(Bit::One)
}

/// A `from → !from` transition is written from a test-established value
/// and read back before being overwritten.
fn tf_condition(test: &MarchTest, from: Bit) -> bool {
    let to = from.flip();
    let seq = test.per_cell_sequence();
    let mut value: Option<Bit> = None;
    let mut armed = false; // a genuine transition write happened
    for &op in &seq {
        match op {
            MarchOp::Write(d) => {
                if d == to && value == Some(from) {
                    armed = true;
                } else if armed && d != to {
                    armed = false; // overwritten before verification
                }
                value = Some(d);
            }
            MarchOp::Read(d) => {
                if armed && d == to {
                    return true;
                }
            }
            MarchOp::Delay => {}
        }
    }
    false
}

fn element_first_read(e: &MarchElement) -> Option<Bit> {
    match e.ops.first() {
        Some(MarchOp::Read(d)) => Some(*d),
        _ => None,
    }
}

fn element_last_write(e: &MarchElement) -> Option<Bit> {
    e.ops.iter().rev().find_map(|op| match op {
        MarchOp::Write(d) => Some(*d),
        _ => None,
    })
}

/// van de Goor: an ⇑ element `(r_x, …, w_x̄)` and a ⇓ element
/// `(r_y, …, w_ȳ)` — leading read, *last write* of the complement
/// (trailing reads are allowed: `⇓(r1,w0,r0)` qualifies). `⇕` elements
/// are not counted: the condition must hold whichever order an
/// implementation picks.
fn af_condition(test: &MarchTest) -> bool {
    let shape = |e: &MarchElement| -> bool {
        matches!((element_first_read(e), element_last_write(e)),
                 (Some(r), Some(w)) if w == r.flip())
    };
    let up = test
        .elements()
        .iter()
        .any(|e| e.direction == Direction::Up && shape(e));
    let down = test
        .elements()
        .iter()
        .any(|e| e.direction == Direction::Down && shape(e));
    up && down
}

/// Some element contains `…, r_x, w_x̄, r_x̄, …` (transition write framed
/// by reads, all on the visited cell before the sweep moves on).
fn sof_condition(test: &MarchTest) -> bool {
    test.elements().iter().any(|e| {
        e.ops.windows(3).any(|w| {
            matches!(
                (w[0], w[1], w[2]),
                (MarchOp::Read(a), MarchOp::Write(b), MarchOp::Read(c))
                    if b == a.flip() && c == b
            )
        })
    })
}

/// A delay occurs while every cell holds `value`, and the value is read
/// back afterwards before being overwritten.
fn drf_condition(test: &MarchTest, value: Bit) -> bool {
    let seq = test.per_cell_sequence();
    let mut held: Option<Bit> = None;
    let mut rested = false; // delay elapsed while holding `value`
    for &op in &seq {
        match op {
            MarchOp::Write(d) => {
                held = Some(d);
                if d != value {
                    rested = false;
                }
            }
            MarchOp::Delay => {
                if held == Some(value) {
                    rested = true;
                }
            }
            MarchOp::Read(d) => {
                if rested && d == value {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known;

    #[test]
    fn classical_table_of_conditions() {
        // (test, saf, tf, af, sof, drf)
        // SOF entries reflect the sense-amplifier latch model of the
        // simulator (reads of the open cell return the last read value):
        // MATS++'s ⇓(r1,w0,r0) genuinely detects SOF under it, which the
        // simulator confirms (see tests/analysis_validation.rs).
        let rows: Vec<(&str, MarchTest, [bool; 5])> = vec![
            ("MATS", known::mats(), [true, false, false, false, false]),
            (
                "MATS+",
                known::mats_plus(),
                [true, false, true, false, false],
            ),
            (
                "MATS++",
                known::mats_plus_plus(),
                [true, true, true, true, false],
            ),
            (
                "March X",
                known::march_x(),
                [true, true, true, false, false],
            ),
            ("March Y", known::march_y(), [true, true, true, true, false]),
            (
                "March C-",
                known::march_c_minus(),
                [true, true, true, false, false],
            ),
            ("March B", known::march_b(), [true, true, true, true, false]),
            ("March G", known::march_g(), [true, true, true, true, true]),
        ];
        for (name, test, want) in rows {
            let c = analyze(&test);
            assert_eq!(
                [c.saf, c.tf, c.af, c.sof, c.drf],
                want,
                "{name}: conditions diverge from the classical table"
            );
        }
    }

    #[test]
    fn mats_plus_fails_tf_condition() {
        // The Table 3 row 2 subtlety: MATS+ never verifies its last w0.
        assert!(!analyze(&known::mats_plus()).tf);
    }

    #[test]
    fn tf_condition_requires_established_source_value() {
        // w1 from an unknown power-up value is not a guaranteed ↑.
        let t: MarchTest = "⇕(w1); ⇕(r1)".parse().unwrap();
        assert!(!tf_condition(&t, Bit::Zero));
        let t: MarchTest = "⇕(w0); ⇕(w1); ⇕(r1)".parse().unwrap();
        assert!(tf_condition(&t, Bit::Zero));
    }

    #[test]
    fn af_condition_needs_both_directions() {
        let up_only: MarchTest = "⇕(w0); ⇑(r0,w1); ⇑(r1,w0)".parse().unwrap();
        assert!(!af_condition(&up_only));
        assert!(af_condition(&known::mats_plus()));
    }

    #[test]
    fn drf_condition_needs_delay_on_both_values() {
        let one_sided: MarchTest = "⇕(w1); ⇕(Del); ⇕(r1)".parse().unwrap();
        assert!(drf_condition(&one_sided, Bit::One));
        assert!(!drf_condition(&one_sided, Bit::Zero));
        assert!(!analyze(&one_sided).drf);
        assert!(analyze(&known::march_g()).drf);
    }

    #[test]
    fn sof_condition_shape() {
        assert!(sof_condition(&known::march_y()));
        assert!(!sof_condition(&known::march_c_minus()));
    }
}
