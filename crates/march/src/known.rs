//! The classical hand-made March tests from the literature — the
//! comparators of the paper's Table 3 ("Equivalent Known March Test") and
//! of van de Goor's survey \[1\], \[9\].
//!
//! Complexities:
//!
//! | Test     | Complexity | Classical coverage claim                    |
//! |----------|------------|---------------------------------------------|
//! | MATS     | 4n         | SAF                                          |
//! | MATS+    | 5n         | SAF, AF                                      |
//! | MATS++   | 6n         | SAF, TF, AF                                  |
//! | March X  | 6n         | SAF, TF, AF, CFin                            |
//! | March Y  | 8n         | SAF, TF, AF, CFin, some linked faults        |
//! | March C− | 10n        | SAF, TF, AF, CFin, CFid, CFst                |
//! | March C  | 11n        | March C− plus a redundant middle element     |
//! | March A  | 15n        | SAF, TF, AF, CFin, linked CFid               |
//! | March B  | 17n        | March A plus linked TF/CF combinations       |
//! | March U  | 13n        | SAF, TF, AF, unlinked/linked CF              |
//! | March LR | 14n        | realistic linked faults                      |
//! | March SS | 22n        | all simple static faults                     |
//! | March G  | 23n + 2Del | March B faults plus SOF and DRF              |

use crate::element::MarchElement;
use crate::op::MarchOp::{self, Delay};
use crate::test::MarchTest;

const R0: MarchOp = MarchOp::R0;
const R1: MarchOp = MarchOp::R1;
const W0: MarchOp = MarchOp::W0;
const W1: MarchOp = MarchOp::W1;

/// MATS — `{ ⇕(w0); ⇕(r0,w1); ⇕(r1) }`, 4n.
#[must_use]
pub fn mats() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::any([R0, W1]),
        MarchElement::any([R1]),
    ])
}

/// MATS+ — `{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0) }`, 5n.
#[must_use]
pub fn mats_plus() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::up([R0, W1]),
        MarchElement::down([R1, W0]),
    ])
}

/// MATS++ — `{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0) }`, 6n.
#[must_use]
pub fn mats_plus_plus() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::up([R0, W1]),
        MarchElement::down([R1, W0, R0]),
    ])
}

/// March X — `{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0) }`, 6n.
#[must_use]
pub fn march_x() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::up([R0, W1]),
        MarchElement::down([R1, W0]),
        MarchElement::any([R0]),
    ])
}

/// March Y — `{ ⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0) }`, 8n.
#[must_use]
pub fn march_y() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::up([R0, W1, R1]),
        MarchElement::down([R1, W0, R0]),
        MarchElement::any([R0]),
    ])
}

/// March C− — `{ ⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0) }`,
/// 10n.
#[must_use]
pub fn march_c_minus() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::up([R0, W1]),
        MarchElement::up([R1, W0]),
        MarchElement::down([R0, W1]),
        MarchElement::down([R1, W0]),
        MarchElement::any([R0]),
    ])
}

/// March C — March C− with the historical (redundant) middle `⇕(r0)`,
/// 11n.
#[must_use]
pub fn march_c() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::up([R0, W1]),
        MarchElement::up([R1, W0]),
        MarchElement::any([R0]),
        MarchElement::down([R0, W1]),
        MarchElement::down([R1, W0]),
        MarchElement::any([R0]),
    ])
}

/// March A — `{ ⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0);
/// ⇓(r0,w1,w0) }`, 15n.
#[must_use]
pub fn march_a() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::up([R0, W1, W0, W1]),
        MarchElement::up([R1, W0, W1]),
        MarchElement::down([R1, W0, W1, W0]),
        MarchElement::down([R0, W1, W0]),
    ])
}

/// March B — `{ ⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0);
/// ⇓(r0,w1,w0) }`, 17n.
#[must_use]
pub fn march_b() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::up([R0, W1, R1, W0, R0, W1]),
        MarchElement::up([R1, W0, W1]),
        MarchElement::down([R1, W0, W1, W0]),
        MarchElement::down([R0, W1, W0]),
    ])
}

/// March U — `{ ⇕(w0); ⇑(r0,w1,r1,w0); ⇑(r0,w1); ⇓(r1,w0,r0,w1);
/// ⇓(r1,w0) }`, 13n.
#[must_use]
pub fn march_u() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::up([R0, W1, R1, W0]),
        MarchElement::up([R0, W1]),
        MarchElement::down([R1, W0, R0, W1]),
        MarchElement::down([R1, W0]),
    ])
}

/// March LR — `{ ⇕(w0); ⇓(r0,w1); ⇑(r1,w0,r0,w1); ⇑(r1,w0);
/// ⇑(r0,w1,r1,w0); ⇑(r0) }`, 14n.
#[must_use]
pub fn march_lr() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::down([R0, W1]),
        MarchElement::up([R1, W0, R0, W1]),
        MarchElement::up([R1, W0]),
        MarchElement::up([R0, W1, R1, W0]),
        MarchElement::up([R0]),
    ])
}

/// March SS — `{ ⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0);
/// ⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); ⇕(r0) }`, 22n.
#[must_use]
pub fn march_ss() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::up([R0, R0, W0, R0, W1]),
        MarchElement::up([R1, R1, W1, R1, W0]),
        MarchElement::down([R0, R0, W0, R0, W1]),
        MarchElement::down([R1, R1, W1, R1, W0]),
        MarchElement::any([R0]),
    ])
}

/// March G — March B extended with stuck-open and data-retention phases:
/// `{ ⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0);
/// ⇓(r0,w1,w0); Del; ⇕(r0,w1,r1); Del; ⇕(r1,w0,r0) }`, 23n + 2 delays.
#[must_use]
pub fn march_g() -> MarchTest {
    MarchTest::new(vec![
        MarchElement::any([W0]),
        MarchElement::up([R0, W1, R1, W0, R0, W1]),
        MarchElement::up([R1, W0, W1]),
        MarchElement::down([R1, W0, W1, W0]),
        MarchElement::down([R0, W1, W0]),
        MarchElement::any([Delay]),
        MarchElement::any([R0, W1, R1]),
        MarchElement::any([Delay]),
        MarchElement::any([R1, W0, R0]),
    ])
}

/// Every test of this library with its conventional name.
#[must_use]
pub fn all() -> Vec<(&'static str, MarchTest)> {
    vec![
        ("MATS", mats()),
        ("MATS+", mats_plus()),
        ("MATS++", mats_plus_plus()),
        ("March X", march_x()),
        ("March Y", march_y()),
        ("March C-", march_c_minus()),
        ("March C", march_c()),
        ("March A", march_a()),
        ("March B", march_b()),
        ("March U", march_u()),
        ("March LR", march_lr()),
        ("March SS", march_ss()),
        ("March G", march_g()),
    ]
}

/// Looks a test up by its conventional name (case-insensitive;
/// `-`/`+`/space variations tolerated: `marchc-`, `March C-`, `MATS++`).
#[must_use]
pub fn by_name(name: &str) -> Option<MarchTest> {
    let canon = |s: &str| -> String {
        s.chars()
            .filter(|c| !c.is_whitespace() && *c != '_')
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let wanted = canon(name);
    all()
        .into_iter()
        .find(|(n, _)| canon(n) == wanted)
        .map(|(_, t)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_thirteen_tests() {
        assert_eq!(all().len(), 13);
    }

    #[test]
    fn lookup_by_name_variants() {
        assert_eq!(by_name("MATS+"), Some(mats_plus()));
        assert_eq!(by_name("march c-"), Some(march_c_minus()));
        assert_eq!(by_name("MarchC-"), Some(march_c_minus()));
        assert_eq!(by_name("MARCH X"), Some(march_x()));
        assert_eq!(by_name("nonexistent"), None);
    }

    #[test]
    fn table3_comparator_complexities() {
        // The "Equivalent Known March Test" column of Table 3.
        assert_eq!(mats().complexity(), 4); // row 1
        assert_eq!(mats_plus().complexity(), 5); // row 2
        assert_eq!(mats_plus_plus().complexity(), 6); // row 3
        assert_eq!(march_x().complexity(), 6); // row 4
        assert_eq!(march_c_minus().complexity(), 10); // row 5
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all().len());
    }
}
