//! The [`MarchTest`] type: a sequence of March elements with the
//! complexity, consistency and normalization operations the generator and
//! the simulator rely on.

use crate::element::MarchElement;
use crate::op::MarchOp;
use marchgen_model::{Bit, Tri};
use std::fmt;
use std::str::FromStr;

/// A complete March test.
///
/// The value-level invariant checked by [`MarchTest::check_consistency`]
/// is *read consistency*: on a fault-free memory every `rd` must actually
/// observe `d`, regardless of how `⇕` elements are resolved. Because every
/// cell experiences exactly the per-cell operation sequence (the
/// concatenation of all element operations), this reduces to a single
/// left-to-right scan of that sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct MarchTest {
    elements: Vec<MarchElement>,
}

/// Why a March test is not read-consistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyError {
    /// A read expects a value although the cell content is still unknown
    /// (no write has initialized it yet).
    ReadOfUninitialized {
        /// Index of the element containing the read.
        element: usize,
        /// Index of the read within the element.
        op: usize,
    },
    /// A read expects the complement of the value every cell holds at that
    /// point of the per-cell sequence.
    WrongExpectedValue {
        /// Index of the element containing the read.
        element: usize,
        /// Index of the read within the element.
        op: usize,
        /// The value the fault-free memory holds there.
        actual: Bit,
    },
    /// An element contains no operation.
    EmptyElement {
        /// Index of the empty element.
        element: usize,
    },
}

impl fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyError::ReadOfUninitialized { element, op } => {
                write!(
                    f,
                    "element {element}, op {op}: read of an uninitialized cell"
                )
            }
            ConsistencyError::WrongExpectedValue {
                element,
                op,
                actual,
            } => {
                write!(
                    f,
                    "element {element}, op {op}: read expects the wrong value (cells hold {actual})"
                )
            }
            ConsistencyError::EmptyElement { element } => {
                write!(f, "element {element} is empty")
            }
        }
    }
}

impl std::error::Error for ConsistencyError {}

impl MarchTest {
    /// Creates a test from its elements.
    #[must_use]
    pub fn new(elements: impl Into<Vec<MarchElement>>) -> MarchTest {
        MarchTest {
            elements: elements.into(),
        }
    }

    /// The elements, in application order.
    #[must_use]
    pub fn elements(&self) -> &[MarchElement] {
        &self.elements
    }

    /// Appends an element.
    pub fn push(&mut self, element: MarchElement) {
        self.elements.push(element);
    }

    /// The complexity `k` of the `kn` notation: cell accesses per cell
    /// (reads + writes; `Del` operations are counted separately, see
    /// [`MarchTest::delay_count`]).
    ///
    /// ```
    /// # use marchgen_march::known;
    /// assert_eq!(known::march_c_minus().complexity(), 10); // March C− is 10n
    /// ```
    #[must_use]
    pub fn complexity(&self) -> usize {
        self.elements.iter().map(MarchElement::access_count).sum()
    }

    /// Number of `Del` (wait) operations in the test.
    #[must_use]
    pub fn delay_count(&self) -> usize {
        self.elements
            .iter()
            .flat_map(|e| &e.ops)
            .filter(|op| !op.accesses_cell())
            .count()
    }

    /// Number of March elements.
    #[must_use]
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// `true` when the test has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The per-cell operation sequence: the concatenation of all element
    /// operations. Every cell of the memory experiences exactly this
    /// sequence (the defining property of a March test).
    #[must_use]
    pub fn per_cell_sequence(&self) -> Vec<MarchOp> {
        self.elements
            .iter()
            .flat_map(|e| e.ops.iter().copied())
            .collect()
    }

    /// Checks read consistency (see type-level docs).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConsistencyError`] found, scanning elements
    /// left to right.
    pub fn check_consistency(&self) -> Result<(), ConsistencyError> {
        let mut cur = Tri::X;
        for (ei, element) in self.elements.iter().enumerate() {
            if element.ops.is_empty() {
                return Err(ConsistencyError::EmptyElement { element: ei });
            }
            for (oi, &op) in element.ops.iter().enumerate() {
                match op {
                    MarchOp::Read(expect) => match cur {
                        Tri::X => {
                            return Err(ConsistencyError::ReadOfUninitialized {
                                element: ei,
                                op: oi,
                            })
                        }
                        _ if cur != Tri::from(expect) => {
                            return Err(ConsistencyError::WrongExpectedValue {
                                element: ei,
                                op: oi,
                                actual: cur.bit().expect("known value"),
                            })
                        }
                        _ => {}
                    },
                    MarchOp::Write(d) => cur = Tri::from(d),
                    MarchOp::Delay => {}
                }
            }
        }
        Ok(())
    }

    /// The data-polarity complement of the test (every `0 ↔ 1`). Coverage
    /// is identical on polarity-symmetric fault lists, so published tests
    /// often appear in either polarity.
    #[must_use]
    pub fn complement(&self) -> MarchTest {
        MarchTest {
            elements: self.elements.iter().map(MarchElement::complement).collect(),
        }
    }

    /// The address-order mirror: every `⇑ ↔ ⇓`. Mirroring swaps the roles
    /// of lower/higher coupled cells and preserves coverage of
    /// order-symmetric fault lists.
    #[must_use]
    pub fn mirrored(&self) -> MarchTest {
        MarchTest {
            elements: self
                .elements
                .iter()
                .map(|e| MarchElement::new(e.direction.reversed(), e.ops.clone()))
                .collect(),
        }
    }

    /// Canonical polarity: complement the test when its first write is
    /// `w1`, so that equivalent tests compare equal regardless of the
    /// arbitrary data polarity the generator picked.
    #[must_use]
    pub fn normalized_polarity(&self) -> MarchTest {
        let first_write = self.per_cell_sequence().into_iter().find_map(|op| {
            if let MarchOp::Write(d) = op {
                Some(d)
            } else {
                None
            }
        });
        match first_write {
            Some(Bit::One) => self.complement(),
            _ => self.clone(),
        }
    }

    /// Structural equality up to data polarity.
    #[must_use]
    pub fn eq_up_to_polarity(&self, other: &MarchTest) -> bool {
        self == other || *self == other.complement()
    }

    /// Structural equality up to data polarity and address-order mirror.
    #[must_use]
    pub fn eq_up_to_symmetry(&self, other: &MarchTest) -> bool {
        self.eq_up_to_polarity(other) || self.mirrored().eq_up_to_polarity(other)
    }

    /// Renders with pure-ASCII direction mnemonics, e.g.
    /// `m(w0); u(r0,w1); d(r1,w0)`.
    #[must_use]
    pub fn to_ascii(&self) -> String {
        let mut s = String::new();
        for (k, e) in self.elements.iter().enumerate() {
            if k > 0 {
                s.push_str("; ");
            }
            s.push(e.direction.ascii());
            s.push('(');
            for (i, op) in e.ops.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&op.to_string());
            }
            s.push(')');
        }
        s
    }
}

impl fmt::Display for MarchTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{ ")?;
        for (k, e) in self.elements.iter().enumerate() {
            if k > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{e}")?;
        }
        f.write_str(" }")
    }
}

impl FromStr for MarchTest {
    type Err = crate::parse::ParseMarchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parse::parse_march(s)
    }
}

impl FromIterator<MarchElement> for MarchTest {
    fn from_iter<T: IntoIterator<Item = MarchElement>>(iter: T) -> Self {
        MarchTest {
            elements: iter.into_iter().collect(),
        }
    }
}

impl Extend<MarchElement> for MarchTest {
    fn extend<T: IntoIterator<Item = MarchElement>>(&mut self, iter: T) {
        self.elements.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known;

    #[test]
    fn complexity_of_known_tests() {
        assert_eq!(known::mats().complexity(), 4);
        assert_eq!(known::mats_plus().complexity(), 5);
        assert_eq!(known::mats_plus_plus().complexity(), 6);
        assert_eq!(known::march_x().complexity(), 6);
        assert_eq!(known::march_y().complexity(), 8);
        assert_eq!(known::march_c_minus().complexity(), 10);
        assert_eq!(known::march_c().complexity(), 11);
        assert_eq!(known::march_a().complexity(), 15);
        assert_eq!(known::march_b().complexity(), 17);
        assert_eq!(known::march_u().complexity(), 13);
        assert_eq!(known::march_lr().complexity(), 14);
        assert_eq!(known::march_ss().complexity(), 22);
        assert_eq!(known::march_g().complexity(), 23);
    }

    #[test]
    fn march_g_counts_delays_separately() {
        let g = known::march_g();
        assert_eq!(g.delay_count(), 2);
        assert_eq!(g.complexity(), 23);
    }

    #[test]
    fn all_known_tests_are_consistent() {
        for (name, test) in known::all() {
            assert_eq!(test.check_consistency(), Ok(()), "{name} is inconsistent");
        }
    }

    #[test]
    fn inconsistent_read_value_detected() {
        let t = MarchTest::new(vec![
            MarchElement::any([MarchOp::W0]),
            MarchElement::up([MarchOp::R1]),
        ]);
        assert_eq!(
            t.check_consistency(),
            Err(ConsistencyError::WrongExpectedValue {
                element: 1,
                op: 0,
                actual: Bit::Zero
            })
        );
    }

    #[test]
    fn read_before_init_detected() {
        let t = MarchTest::new(vec![MarchElement::up([MarchOp::R0])]);
        assert_eq!(
            t.check_consistency(),
            Err(ConsistencyError::ReadOfUninitialized { element: 0, op: 0 })
        );
    }

    #[test]
    fn empty_element_detected() {
        let t = MarchTest::new(vec![MarchElement::any(Vec::new())]);
        assert_eq!(
            t.check_consistency(),
            Err(ConsistencyError::EmptyElement { element: 0 })
        );
    }

    #[test]
    fn complement_involutive_and_consistent() {
        let c = known::march_c_minus();
        assert_eq!(c.complement().complement(), c);
        assert_eq!(c.complement().check_consistency(), Ok(()));
        assert_ne!(c.complement(), c);
    }

    #[test]
    fn normalized_polarity_starts_with_w0() {
        let c = known::march_c_minus().complement(); // starts with w1
        let n = c.normalized_polarity();
        assert_eq!(n, known::march_c_minus());
        // already-normalized tests are unchanged
        assert_eq!(n.normalized_polarity(), n);
    }

    #[test]
    fn symmetry_equalities() {
        let x = known::march_x();
        assert!(x.eq_up_to_polarity(&x.complement()));
        assert!(x.eq_up_to_symmetry(&x.mirrored().complement()));
        assert!(!x.eq_up_to_symmetry(&known::march_y()));
    }

    #[test]
    fn per_cell_sequence_concatenates_elements() {
        let seq = known::mats_plus().per_cell_sequence();
        assert_eq!(
            seq,
            vec![
                MarchOp::W0,
                MarchOp::R0,
                MarchOp::W1,
                MarchOp::R1,
                MarchOp::W0
            ]
        );
    }

    #[test]
    fn display_round_trips_through_parser() {
        for (name, test) in known::all() {
            let s = test.to_string();
            let back: MarchTest = s.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back, test, "{name} display/parse mismatch");
            let ascii: MarchTest = test
                .to_ascii()
                .parse()
                .unwrap_or_else(|e| panic!("{name} ascii: {e}"));
            assert_eq!(ascii, test, "{name} ascii/parse mismatch");
        }
    }

    #[test]
    fn display_uses_braces_like_table3() {
        assert_eq!(known::mats().to_string(), "{ ⇕(w0); ⇕(r0,w1); ⇕(r1) }");
    }
}
