//! Parser for the standard March notation.
//!
//! Accepted grammar (whitespace-insensitive):
//!
//! ```text
//! test     := '{'? element (';'? element)* '}'?
//! element  := direction '('? op (','? op)* ')'?
//! direction:= '⇑' | '⇓' | '⇕' | 'u' | 'U' | '^' | 'd' | 'D' | 'v' | 'm' | 'M' | 'a' | 'A'
//! op       := ('r'|'R'|'w'|'W') ('0'|'1') | 'Del' | 'del' | 'T'
//! ```
//!
//! Both the unicode form `{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0) }` and the ASCII
//! form `m(w0); u(r0,w1); d(r1,w0)` round-trip through
//! [`MarchTest::to_string`](crate::MarchTest) /
//! [`MarchTest::to_ascii`](crate::MarchTest).

use crate::element::{Direction, MarchElement};
use crate::op::MarchOp;
use crate::test::MarchTest;
use marchgen_model::Bit;
use std::fmt;

/// Error produced when parsing a March test string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMarchError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for ParseMarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid march test syntax at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseMarchError {}

struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&(_, c)) = self.chars.get(self.pos) {
            if c.is_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn byte_pos(&self) -> usize {
        self.chars.get(self.pos).map_or(self.src.len(), |&(b, _)| b)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseMarchError {
        ParseMarchError {
            position: self.byte_pos(),
            message: message.into(),
        }
    }
}

fn parse_direction(cur: &mut Cursor<'_>) -> Result<Direction, ParseMarchError> {
    let c = cur
        .peek()
        .ok_or_else(|| cur.error("expected a direction"))?;
    let dir = match c {
        '⇑' | 'u' | 'U' | '^' => Direction::Up,
        '⇓' | 'd' | 'D' | 'v' => Direction::Down,
        '⇕' | 'm' | 'M' | 'a' | 'A' => Direction::Any,
        other => {
            return Err(cur.error(format!(
                "expected a direction (⇑/⇓/⇕ or u/d/m), found {other:?}"
            )))
        }
    };
    cur.bump();
    Ok(dir)
}

fn parse_op(cur: &mut Cursor<'_>) -> Result<MarchOp, ParseMarchError> {
    cur.skip_ws();
    let c = cur
        .peek()
        .ok_or_else(|| cur.error("expected an operation"))?;
    match c {
        'r' | 'R' | 'w' | 'W' => {
            cur.bump();
            let d = match cur.peek() {
                Some('0') => Bit::Zero,
                Some('1') => Bit::One,
                other => {
                    return Err(cur.error(format!(
                        "expected a data value 0/1 after {c:?}, found {other:?}"
                    )))
                }
            };
            cur.bump();
            Ok(if c.eq_ignore_ascii_case(&'r') {
                MarchOp::Read(d)
            } else {
                MarchOp::Write(d)
            })
        }
        'D' | 'd' => {
            // Del / del
            let save = cur.pos;
            cur.bump();
            if (cur.eat('e') || cur.eat('E')) && (cur.eat('l') || cur.eat('L')) {
                Ok(MarchOp::Delay)
            } else {
                cur.pos = save;
                Err(cur.error("expected 'Del'"))
            }
        }
        'T' => {
            cur.bump();
            Ok(MarchOp::Delay)
        }
        other => Err(cur.error(format!("expected r/w/Del, found {other:?}"))),
    }
}

fn parse_element(cur: &mut Cursor<'_>) -> Result<MarchElement, ParseMarchError> {
    cur.skip_ws();
    let direction = parse_direction(cur)?;
    cur.skip_ws();
    let parenthesised = cur.eat('(');
    let mut ops = vec![parse_op(cur)?];
    loop {
        cur.skip_ws();
        match cur.peek() {
            Some(',') => {
                cur.bump();
                ops.push(parse_op(cur)?);
            }
            Some(')') if parenthesised => {
                cur.bump();
                break;
            }
            Some(c) if !parenthesised && (c == ';' || c == '}') => break,
            None if !parenthesised => break,
            Some(c) if !parenthesised && matches!(c, 'r' | 'R' | 'w' | 'W' | 'T') => {
                // unparenthesised ops may be space-separated
                ops.push(parse_op(cur)?);
            }
            Some(other) => return Err(cur.error(format!("unexpected {other:?} inside element"))),
            None => return Err(cur.error("unterminated element: missing ')'")),
        }
    }
    Ok(MarchElement { direction, ops })
}

/// Parses a March test; see the module docs for the grammar.
///
/// # Errors
///
/// Returns [`ParseMarchError`] with the byte position of the first
/// offending character.
pub fn parse_march(src: &str) -> Result<MarchTest, ParseMarchError> {
    let mut cur = Cursor::new(src);
    cur.skip_ws();
    let braced = cur.eat('{');
    let mut elements = Vec::new();
    loop {
        cur.skip_ws();
        match cur.peek() {
            Some('}') if braced => {
                cur.bump();
                break;
            }
            Some(';') => {
                cur.bump();
            }
            None => {
                if braced {
                    return Err(cur.error("missing closing '}'"));
                }
                break;
            }
            Some(_) => elements.push(parse_element(&mut cur)?),
        }
    }
    cur.skip_ws();
    if cur.peek().is_some() {
        return Err(cur.error("trailing input after march test"));
    }
    if elements.is_empty() {
        return Err(cur.error("a march test needs at least one element"));
    }
    Ok(MarchTest::new(elements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::known;

    #[test]
    fn parses_unicode_notation() {
        let t: MarchTest = "{ ⇕(w0); ⇑(r0,w1); ⇓(r1,w0) }".parse().unwrap();
        assert_eq!(t, known::mats_plus());
    }

    #[test]
    fn parses_ascii_notation() {
        let t: MarchTest = "m(w0); u(r0,w1); d(r1,w0)".parse().unwrap();
        assert_eq!(t, known::mats_plus());
    }

    #[test]
    fn parses_without_braces_or_parens() {
        let t: MarchTest = "m w0; u r0,w1; d r1,w0".parse().unwrap();
        assert_eq!(t, known::mats_plus());
        let t: MarchTest = "m w0; u r0 w1; d r1 w0".parse().unwrap();
        assert_eq!(t, known::mats_plus());
    }

    #[test]
    fn parses_delay_ops() {
        let t: MarchTest = "m(w1); m(Del); m(r1)".parse().unwrap();
        assert_eq!(t.delay_count(), 1);
        let t2: MarchTest = "m(w1); m(T); m(r1)".parse().unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn error_positions_are_byte_offsets() {
        let err = "⇑(rX)".parse::<MarchTest>().unwrap_err();
        assert_eq!(err.position, "⇑(r".len());
        assert!(err.message.contains("data value"), "{err}");
    }

    #[test]
    fn rejects_empty_and_garbage() {
        assert!("".parse::<MarchTest>().is_err());
        assert!("{}".parse::<MarchTest>().is_err());
        assert!("x(w0)".parse::<MarchTest>().is_err());
        assert!("⇑(w0) trailing".parse::<MarchTest>().is_err());
        assert!("{ ⇑(w0)".parse::<MarchTest>().is_err());
        assert!("⇑(w0,)".parse::<MarchTest>().is_err());
    }

    #[test]
    fn direction_aliases() {
        let a: MarchTest = "^ (w0); v(r0)".parse().unwrap();
        let b: MarchTest = "u(w0); d(r0)".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn error_display_mentions_position() {
        let err = "⇑(q0)".parse::<MarchTest>().unwrap_err();
        let s = err.to_string();
        assert!(s.contains("byte"), "{s}");
    }
}
