//! # marchgen-march
//!
//! March test algebra: operations, March elements, addressing orders, the
//! standard textual notation, and a library of the classical hand-made
//! March tests the paper compares against (Table 3, column *"Equivalent
//! Known March Test"*).
//!
//! A **March test** is a sequence of *March elements*; a March element is a
//! short sequence of read/write operations applied to every memory cell in
//! ascending (⇑), descending (⇓) or arbitrary (⇕) address order before
//! moving to the next cell (van de Goor \[1\]). Its **complexity** is the
//! number of read/write operations performed per cell, written `kn` for a
//! test with `k` operations on an `n`-cell memory.
//!
//! # Example
//!
//! ```
//! use marchgen_march::{MarchTest, known};
//!
//! let mats_plus: MarchTest = "⇕(w0); ⇑(r0,w1); ⇓(r1,w0)".parse()?;
//! assert_eq!(mats_plus.complexity(), 5);
//! assert_eq!(mats_plus, known::mats_plus());
//! # Ok::<(), marchgen_march::ParseMarchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod codegen;
mod element;
pub mod known;
mod op;
mod parse;
mod test;

pub use element::{Direction, MarchElement};
pub use op::MarchOp;
pub use parse::ParseMarchError;
pub use test::{ConsistencyError, MarchTest};
