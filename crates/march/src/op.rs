//! The per-cell operations a March element is built from.

use marchgen_model::Bit;
use std::fmt;

/// One operation of a March element, applied to the cell the element is
/// currently visiting.
///
/// March notation writes reads with the value they *expect* on a
/// fault-free memory: `r0` reads and verifies a `0`. This is the paper's
/// *Read and Verify* operation `rd` (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarchOp {
    /// `rd` — read the visited cell and verify its value is `d`.
    Read(Bit),
    /// `wd` — write `d` into the visited cell.
    Write(Bit),
    /// `Del` — a wait period (paper operation `T`), used by data-retention
    /// tests (e.g. March G). Does not access any cell.
    Delay,
}

impl MarchOp {
    /// Shorthand for `r0`.
    pub const R0: MarchOp = MarchOp::Read(Bit::Zero);
    /// Shorthand for `r1`.
    pub const R1: MarchOp = MarchOp::Read(Bit::One);
    /// Shorthand for `w0`.
    pub const W0: MarchOp = MarchOp::Write(Bit::Zero);
    /// Shorthand for `w1`.
    pub const W1: MarchOp = MarchOp::Write(Bit::One);

    /// `true` for reads.
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, MarchOp::Read(_))
    }

    /// `true` for writes.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, MarchOp::Write(_))
    }

    /// `true` when the operation accesses the cell (reads and writes;
    /// `Del` does not and is excluded from the `kn` complexity count).
    #[must_use]
    pub fn accesses_cell(self) -> bool {
        !matches!(self, MarchOp::Delay)
    }

    /// The data value carried by the operation, if any.
    #[must_use]
    pub fn data(self) -> Option<Bit> {
        match self {
            MarchOp::Read(d) | MarchOp::Write(d) => Some(d),
            MarchOp::Delay => None,
        }
    }

    /// The operation with its data value complemented (`Del` unchanged).
    /// Complementing every operation of a test yields its data-polarity
    /// mirror, which has identical coverage on polarity-symmetric fault
    /// models.
    #[must_use]
    pub fn complement(self) -> MarchOp {
        match self {
            MarchOp::Read(d) => MarchOp::Read(d.flip()),
            MarchOp::Write(d) => MarchOp::Write(d.flip()),
            MarchOp::Delay => MarchOp::Delay,
        }
    }
}

impl fmt::Display for MarchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarchOp::Read(d) => write!(f, "r{d}"),
            MarchOp::Write(d) => write!(f, "w{d}"),
            MarchOp::Delay => f.write_str("Del"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_notation() {
        assert_eq!(MarchOp::R0.to_string(), "r0");
        assert_eq!(MarchOp::W1.to_string(), "w1");
        assert_eq!(MarchOp::Delay.to_string(), "Del");
    }

    #[test]
    fn complement_flips_data_only() {
        assert_eq!(MarchOp::R0.complement(), MarchOp::R1);
        assert_eq!(MarchOp::W1.complement(), MarchOp::W0);
        assert_eq!(MarchOp::Delay.complement(), MarchOp::Delay);
        for op in [
            MarchOp::R0,
            MarchOp::R1,
            MarchOp::W0,
            MarchOp::W1,
            MarchOp::Delay,
        ] {
            assert_eq!(op.complement().complement(), op);
        }
    }

    #[test]
    fn delay_does_not_access_cell() {
        assert!(!MarchOp::Delay.accesses_cell());
        assert!(MarchOp::R0.accesses_cell());
        assert_eq!(MarchOp::Delay.data(), None);
    }
}
