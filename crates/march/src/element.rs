//! March elements and addressing orders.

use crate::op::MarchOp;
use std::fmt;

/// The address order in which a March element visits the memory cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// `⇑` — ascending address order.
    Up,
    /// `⇓` — descending address order.
    Down,
    /// `⇕` — either order is allowed; the test must detect its target
    /// faults whichever order an implementation picks. This is the order
    /// the paper's generation Rule 5 calls "c".
    #[default]
    Any,
}

impl Direction {
    /// All three orders.
    pub const ALL: [Direction; 3] = [Direction::Up, Direction::Down, Direction::Any];

    /// The opposite order (`⇕` is its own opposite).
    #[must_use]
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
            Direction::Any => Direction::Any,
        }
    }

    /// The concrete orders an element with this direction may execute in.
    #[must_use]
    pub fn resolutions(self) -> &'static [Direction] {
        match self {
            Direction::Up => &[Direction::Up],
            Direction::Down => &[Direction::Down],
            Direction::Any => &[Direction::Up, Direction::Down],
        }
    }

    /// The unicode arrow of the standard notation.
    #[must_use]
    pub fn arrow(self) -> char {
        match self {
            Direction::Up => '⇑',
            Direction::Down => '⇓',
            Direction::Any => '⇕',
        }
    }

    /// A pure-ASCII mnemonic (`u`, `d`, `m`).
    #[must_use]
    pub fn ascii(self) -> char {
        match self {
            Direction::Up => 'u',
            Direction::Down => 'd',
            Direction::Any => 'm',
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.arrow())
    }
}

/// One March element: an addressing order and the operations applied to
/// each visited cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MarchElement {
    /// Address order of the sweep.
    pub direction: Direction,
    /// Operations applied, in order, at every visited cell.
    pub ops: Vec<MarchOp>,
}

impl MarchElement {
    /// Creates an element; `⇕(ops...)` is `MarchElement::new(Direction::Any, ops)`.
    #[must_use]
    pub fn new(direction: Direction, ops: impl Into<Vec<MarchOp>>) -> MarchElement {
        MarchElement {
            direction,
            ops: ops.into(),
        }
    }

    /// Ascending element `⇑(ops...)`.
    #[must_use]
    pub fn up(ops: impl Into<Vec<MarchOp>>) -> MarchElement {
        MarchElement::new(Direction::Up, ops)
    }

    /// Descending element `⇓(ops...)`.
    #[must_use]
    pub fn down(ops: impl Into<Vec<MarchOp>>) -> MarchElement {
        MarchElement::new(Direction::Down, ops)
    }

    /// Order-free element `⇕(ops...)`.
    #[must_use]
    pub fn any(ops: impl Into<Vec<MarchOp>>) -> MarchElement {
        MarchElement::new(Direction::Any, ops)
    }

    /// Number of cell accesses per visited cell (excludes `Del`).
    #[must_use]
    pub fn access_count(&self) -> usize {
        self.ops.iter().filter(|op| op.accesses_cell()).count()
    }

    /// `true` when the element performs no read (pure
    /// initialization/background elements like `⇕(w0)`).
    #[must_use]
    pub fn is_write_only(&self) -> bool {
        self.ops.iter().all(|op| !op.is_read())
    }

    /// The element with every operation data-complemented.
    #[must_use]
    pub fn complement(&self) -> MarchElement {
        MarchElement {
            direction: self.direction,
            ops: self.ops.iter().map(|op| op.complement()).collect(),
        }
    }
}

impl fmt::Display for MarchElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.direction)?;
        for (k, op) in self.ops.iter().enumerate() {
            if k > 0 {
                f.write_str(",")?;
            }
            write!(f, "{op}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reversal() {
        assert_eq!(Direction::Up.reversed(), Direction::Down);
        assert_eq!(Direction::Any.reversed(), Direction::Any);
        for d in Direction::ALL {
            assert_eq!(d.reversed().reversed(), d);
        }
    }

    #[test]
    fn any_resolves_to_both_concrete_orders() {
        assert_eq!(Direction::Any.resolutions().len(), 2);
        assert_eq!(Direction::Up.resolutions(), &[Direction::Up]);
    }

    #[test]
    fn element_display() {
        let e = MarchElement::up([MarchOp::R0, MarchOp::W1]);
        assert_eq!(e.to_string(), "⇑(r0,w1)");
        assert_eq!(MarchElement::any([MarchOp::W0]).to_string(), "⇕(w0)");
    }

    #[test]
    fn access_count_skips_delays() {
        let e = MarchElement::any([MarchOp::Delay]);
        assert_eq!(e.access_count(), 0);
        let e = MarchElement::down([MarchOp::R1, MarchOp::W0, MarchOp::R0]);
        assert_eq!(e.access_count(), 3);
    }

    #[test]
    fn write_only_detection() {
        assert!(MarchElement::any([MarchOp::W0]).is_write_only());
        assert!(!MarchElement::any([MarchOp::R0, MarchOp::W1]).is_write_only());
        assert!(MarchElement::any([MarchOp::Delay]).is_write_only());
    }

    #[test]
    fn complement_preserves_direction() {
        let e = MarchElement::down([MarchOp::R1, MarchOp::W0]);
        let c = e.complement();
        assert_eq!(c.direction, Direction::Down);
        assert_eq!(c.ops, vec![MarchOp::R0, MarchOp::W1]);
    }
}
