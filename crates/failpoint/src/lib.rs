//! Named-site fault injection ("failpoints") for the marchgen stack.
//!
//! A failpoint is a named place in production code — `"cache.disk.write"`,
//! `"daemon.socket.write"` — where a test harness can inject a failure at
//! runtime: return an error, sleep, or panic. Sites are declared with the
//! [`fail_point!`] macro and cost **nothing** unless the `failpoints`
//! cargo feature is enabled: without it the macro expands to an empty
//! block and none of the registry machinery below is compiled in, so
//! production builds carry zero overhead (verified by the no-feature
//! test `macro_is_inert_without_feature`).
//!
//! With the feature on, sites consult a process-global registry
//! configured two ways:
//!
//! - the `MARCHGEND_FAILPOINTS` environment variable, parsed once on
//!   first use (e.g. `MARCHGEND_FAILPOINTS="cache.disk.write=err;\
//!   daemon.socket.write=delay(50)"`), and
//! - the runtime API ([`set`], [`remove`], [`clear`], [`list`]), which
//!   `marchgend` exposes over HTTP as the `/v1/failpoints` admin
//!   endpoint.
//!
//! # Action grammar
//!
//! ```text
//! spec   := [ count "*" ] action
//! action := "off"
//!         | "err"   [ "(" message ")" ]
//!         | "delay" "(" millis ")"
//!         | "panic" [ "(" message ")" ]
//! ```
//!
//! A `count` prefix (`3*err`) arms the action for that many firings,
//! after which the site turns itself `off` — the idiom for "the disk
//! fails twice, then recovers", which is exactly what the degraded-mode
//! backoff probes in `marchgen-cache` are tested against.
//!
//! # Declaring sites
//!
//! ```
//! fn write_entry() -> std::io::Result<()> {
//!     marchgen_failpoint::fail_point!("example.write", |msg: String| {
//!         Err(std::io::Error::other(msg))
//!     });
//!     Ok(())
//! }
//! # write_entry().unwrap();
//! ```
//!
//! The closure form runs (and `return`s from the enclosing function)
//! only when the site is armed with `err`; `delay` sleeps in place and
//! `panic` panics without invoking the closure. The closure-free form
//! `fail_point!("site")` supports `delay`/`panic` only and treats a
//! fired `err` as a programming error (panic), since the site declared
//! no error path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "failpoints")]
mod registry {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub(crate) enum Action {
        Off,
        Err(String),
        Delay(u64),
        Panic(String),
    }

    #[derive(Debug, Clone)]
    pub(crate) struct Site {
        pub(crate) action: Action,
        /// `Some(n)` fires `n` more times then turns off; `None` is
        /// unlimited.
        pub(crate) remaining: Option<u64>,
        /// The spec text the site was armed with, echoed by `list()`.
        pub(crate) spec: String,
    }

    fn table() -> &'static Mutex<HashMap<String, Site>> {
        static TABLE: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("MARCHGEND_FAILPOINTS") {
                // A malformed boot-time spec is a hard error: failing to
                // arm a chaos experiment silently would invalidate it.
                match parse_config(&spec) {
                    Ok(sites) => {
                        for (name, site) in sites {
                            map.insert(name, site);
                        }
                    }
                    Err(err) => panic!("invalid MARCHGEND_FAILPOINTS: {err}"),
                }
            }
            Mutex::new(map)
        })
    }

    pub(crate) fn parse_site(spec: &str) -> Result<Site, String> {
        let spec = spec.trim();
        let (count, action_text) = match spec.split_once('*') {
            Some((n, rest)) => {
                let n: u64 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad count in failpoint spec `{spec}`"))?;
                (Some(n), rest.trim())
            }
            None => (None, spec),
        };
        let (kind, arg) = match action_text.split_once('(') {
            Some((kind, rest)) => {
                let arg = rest
                    .strip_suffix(')')
                    .ok_or_else(|| format!("unclosed `(` in failpoint spec `{spec}`"))?;
                (kind.trim(), Some(arg))
            }
            None => (action_text, None),
        };
        let action = match kind {
            "off" => Action::Off,
            "err" => Action::Err(
                arg.filter(|a| !a.is_empty())
                    .unwrap_or("injected by failpoint")
                    .to_owned(),
            ),
            "delay" => {
                let millis = arg
                    .unwrap_or("")
                    .trim()
                    .parse()
                    .map_err(|_| format!("delay needs integer millis in `{spec}`"))?;
                Action::Delay(millis)
            }
            "panic" => Action::Panic(
                arg.filter(|a| !a.is_empty())
                    .unwrap_or("panic injected by failpoint")
                    .to_owned(),
            ),
            other => return Err(format!("unknown failpoint action `{other}` in `{spec}`")),
        };
        Ok(Site {
            action,
            remaining: count,
            spec: spec.to_owned(),
        })
    }

    pub(crate) fn parse_config(config: &str) -> Result<Vec<(String, Site)>, String> {
        let mut out = Vec::new();
        for clause in config.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, spec) = clause
                .split_once('=')
                .ok_or_else(|| format!("failpoint clause `{clause}` is not `site=action`"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(format!("empty site name in `{clause}`"));
            }
            out.push((name.to_owned(), parse_site(spec)?));
        }
        Ok(out)
    }

    /// The hot-path hook behind `fail_point!`. Returns `Some(message)`
    /// when the site is armed with `err`; performs `delay` and `panic`
    /// in place.
    pub fn eval(name: &str) -> Option<String> {
        let fired = {
            let mut table = table().lock().expect("failpoint registry poisoned");
            let site = table.get_mut(name)?;
            match site.remaining {
                Some(0) => return None,
                Some(ref mut n) => *n -= 1,
                None => {}
            }
            site.action.clone()
        };
        match fired {
            Action::Off => None,
            Action::Err(msg) => Some(msg),
            Action::Delay(millis) => {
                std::thread::sleep(Duration::from_millis(millis));
                None
            }
            Action::Panic(msg) => panic!("{msg}"),
        }
    }

    pub(crate) fn set(name: &str, spec: &str) -> Result<(), String> {
        let site = parse_site(spec)?;
        let mut table = table().lock().expect("failpoint registry poisoned");
        if site.action == Action::Off && site.remaining.is_none() {
            table.remove(name);
        } else {
            table.insert(name.to_owned(), site);
        }
        Ok(())
    }

    pub(crate) fn configure(config: &str) -> Result<(), String> {
        let sites = parse_config(config)?;
        let mut table = table().lock().expect("failpoint registry poisoned");
        for (name, site) in sites {
            if site.action == Action::Off && site.remaining.is_none() {
                table.remove(&name);
            } else {
                table.insert(name, site);
            }
        }
        Ok(())
    }

    pub(crate) fn remove(name: &str) {
        table()
            .lock()
            .expect("failpoint registry poisoned")
            .remove(name);
    }

    pub(crate) fn clear() {
        table().lock().expect("failpoint registry poisoned").clear();
    }

    pub(crate) fn list() -> Vec<(String, String)> {
        let table = table().lock().expect("failpoint registry poisoned");
        let mut out: Vec<(String, String)> = table
            .iter()
            .map(|(name, site)| {
                let spec = match site.remaining {
                    Some(n) => format!("{} [{} left]", site.spec, n),
                    None => site.spec.clone(),
                };
                (name.clone(), spec)
            })
            .collect();
        out.sort();
        out
    }
}

/// Whether fault injection is compiled into this build. `false` means
/// every [`fail_point!`] in the binary expanded to an empty block.
#[must_use]
pub fn enabled() -> bool {
    cfg!(feature = "failpoints")
}

/// Arms (or, with `off`, disarms) a single site from an action spec —
/// see the crate docs for the grammar.
///
/// # Errors
///
/// Returns the parse error for a malformed spec, or a "compiled out"
/// error when the `failpoints` feature is disabled.
pub fn set(name: &str, spec: &str) -> Result<(), String> {
    #[cfg(feature = "failpoints")]
    return registry::set(name, spec);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = (name, spec);
        Err(compiled_out())
    }
}

/// Applies a multi-site config string (`site=action;site=action`), the
/// same grammar as the `MARCHGEND_FAILPOINTS` environment variable.
/// Sites not named in `config` are left untouched.
///
/// # Errors
///
/// Returns the parse error for a malformed config (no clauses applied),
/// or a "compiled out" error when the `failpoints` feature is disabled.
pub fn configure(config: &str) -> Result<(), String> {
    #[cfg(feature = "failpoints")]
    return registry::configure(config);
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = config;
        Err(compiled_out())
    }
}

/// Disarms one site. A no-op when the feature is off or the site is
/// not armed.
pub fn remove(name: &str) {
    #[cfg(feature = "failpoints")]
    registry::remove(name);
    #[cfg(not(feature = "failpoints"))]
    let _ = name;
}

/// Disarms every site.
pub fn clear() {
    #[cfg(feature = "failpoints")]
    registry::clear();
}

/// The armed sites as `(name, spec)` pairs, sorted by name; count-limited
/// sites render their remaining budget. Empty when the feature is off.
#[must_use]
pub fn list() -> Vec<(String, String)> {
    #[cfg(feature = "failpoints")]
    return registry::list();
    #[cfg(not(feature = "failpoints"))]
    Vec::new()
}

#[cfg(feature = "failpoints")]
pub use registry::eval;

#[cfg(not(feature = "failpoints"))]
fn compiled_out() -> String {
    "failpoints are compiled out of this build (enable the `failpoints` cargo feature)".to_owned()
}

/// Declares a failpoint site.
///
/// `fail_point!("site")` supports `delay` and `panic` actions;
/// `fail_point!("site", |msg| expr)` additionally supports `err`, in
/// which case the closure is invoked with the injected message and its
/// value is `return`ed from the enclosing function. Without the
/// `failpoints` feature both forms expand to an empty block.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        let name = $name;
        if let Some(msg) = $crate::eval(name) {
            panic!("failpoint {name:?} fired `err` ({msg}) at a site with no error path");
        }
    }};
    ($name:expr, $handler:expr) => {{
        if let Some(msg) = $crate::eval($name) {
            #[allow(clippy::redundant_closure_call)]
            return ($handler)(msg);
        }
    }};
}

/// Declares a failpoint site (inert: the `failpoints` feature is off,
/// so this expands to an empty block and injects nothing).
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{}};
    ($name:expr, $handler:expr) => {{}};
}

#[cfg(all(test, not(feature = "failpoints")))]
mod inert_tests {
    /// The zero-overhead contract: without the feature the macro
    /// expands to nothing, so an armed-looking site never fires, the
    /// handler is never invoked, and the runtime API reports the
    /// subsystem as compiled out. CI runs this in the default
    /// (no-feature) test job.
    #[test]
    fn macro_is_inert_without_feature() {
        fn guarded() -> Result<u32, String> {
            crate::fail_point!("inert.site", |msg: String| Err(msg));
            crate::fail_point!("inert.unit");
            Ok(7)
        }
        assert!(!crate::enabled());
        assert!(crate::set("inert.site", "err").is_err());
        assert!(crate::configure("inert.site=err").is_err());
        assert_eq!(guarded(), Ok(7));
        assert!(crate::list().is_empty());
        crate::remove("inert.site");
        crate::clear();
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use std::time::{Duration, Instant};

    /// Serializes tests that touch the process-global registry.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn guarded(site: &str) -> Result<u32, String> {
        crate::fail_point!(site, |msg: String| Err(msg));
        Ok(7)
    }

    #[test]
    fn unarmed_sites_pass_through() {
        let _gate = lock();
        crate::clear();
        assert_eq!(guarded("chaos.unarmed"), Ok(7));
        assert!(crate::list().is_empty());
    }

    #[test]
    fn err_action_returns_through_handler() {
        let _gate = lock();
        crate::clear();
        crate::set("chaos.err", "err(boom)").unwrap();
        assert_eq!(guarded("chaos.err"), Err("boom".to_owned()));
        // Default message when none is given.
        crate::set("chaos.err", "err").unwrap();
        assert_eq!(
            guarded("chaos.err"),
            Err("injected by failpoint".to_owned())
        );
        crate::clear();
    }

    #[test]
    fn count_limited_sites_burn_down_then_disarm() {
        let _gate = lock();
        crate::clear();
        crate::set("chaos.count", "2*err(x)").unwrap();
        assert!(guarded("chaos.count").is_err());
        assert!(guarded("chaos.count").is_err());
        assert_eq!(guarded("chaos.count"), Ok(7));
        assert_eq!(guarded("chaos.count"), Ok(7));
        crate::clear();
    }

    #[test]
    fn delay_sleeps_then_passes_through() {
        let _gate = lock();
        crate::clear();
        crate::set("chaos.delay", "delay(30)").unwrap();
        let start = Instant::now();
        assert_eq!(guarded("chaos.delay"), Ok(7));
        assert!(start.elapsed() >= Duration::from_millis(30));
        crate::clear();
    }

    #[test]
    fn panic_action_panics_with_message() {
        let _gate = lock();
        crate::clear();
        crate::set("chaos.panic", "panic(chaos-panic)").unwrap();
        let payload = std::panic::catch_unwind(|| {
            crate::fail_point!("chaos.panic");
        })
        .expect_err("armed panic site must panic");
        let text = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert_eq!(text, "chaos-panic");
        crate::clear();
    }

    #[test]
    fn configure_parses_multi_site_specs_and_off_disarms() {
        let _gate = lock();
        crate::clear();
        crate::configure("a.site=err(one); b.site = delay(5) ;; c.site=3*panic(p)").unwrap();
        let names: Vec<String> = crate::list().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a.site", "b.site", "c.site"]);
        crate::configure("b.site=off").unwrap();
        assert_eq!(crate::list().len(), 2);
        crate::remove("a.site");
        assert_eq!(crate::list().len(), 1);
        crate::clear();
        assert!(crate::list().is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected_atomically() {
        let _gate = lock();
        crate::clear();
        assert!(crate::set("s", "explode").is_err());
        assert!(crate::set("s", "delay").is_err());
        assert!(crate::set("s", "delay(abc)").is_err());
        assert!(crate::set("s", "x*err").is_err());
        assert!(crate::set("s", "err(unclosed").is_err());
        assert!(crate::configure("just-a-name").is_err());
        assert!(crate::configure("=err").is_err());
        // A config that fails to parse arms nothing.
        assert!(crate::configure("ok.site=err;bad.site=explode").is_err());
        assert!(crate::list().is_empty());
    }
}
