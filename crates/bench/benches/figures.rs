//! **Figures 1–4** and the §4 worked example: the cost of building each
//! artifact the paper illustrates.
//!
//! * `figure1_m0` — the fault-free two-cell machine (Figure 1) and its
//!   DOT rendering,
//! * `figure2_faulty_machine` — the CFid ⟨↑,0⟩ machine + diff vs `M0`,
//! * `figure3_bfe_split` — BFE extraction and TP derivation,
//! * `figure4_tpg` — the Test Pattern Graph with f.4.1 weights,
//! * `section4_end_to_end` — tour planning + GTS + March construction
//!   for the worked example.

use criterion::{criterion_group, criterion_main, Criterion};
use marchgen_bench::section4_tps;
use marchgen_faults::{bfe, catalog, FaultModel, TransitionDir};
use marchgen_generator::{gts::Gts, schedule_tour};
use marchgen_model::{dot, Bit, TwoCellMachine};
use marchgen_tpg::{plan_tour, StartPolicy, Tpg};
use std::hint::black_box;

fn bench_figure1(c: &mut Criterion) {
    c.bench_function("figures/figure1_m0", |b| {
        b.iter(|| {
            let m0 = TwoCellMachine::fault_free();
            black_box(dot::render(&m0, "M0").len())
        });
    });
}

fn bench_figure2(c: &mut Criterion) {
    let m0 = TwoCellMachine::fault_free();
    c.bench_function("figures/figure2_faulty_machine", |b| {
        b.iter(|| {
            let machines =
                catalog::machines(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero));
            let diffs: usize = machines.iter().map(|(_, m)| m0.diff(m).len()).sum();
            black_box(diffs)
        });
    });
}

fn bench_figure3(c: &mut Criterion) {
    let machines = catalog::machines(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero));
    c.bench_function("figures/figure3_bfe_split", |b| {
        b.iter(|| {
            let mut tps = 0usize;
            for (_, m) in &machines {
                for bfe in bfe::extract(m) {
                    tps += bfe.test_patterns().len();
                }
            }
            black_box(tps)
        });
    });
}

fn bench_figure4(c: &mut Criterion) {
    let tps = section4_tps();
    c.bench_function("figures/figure4_tpg", |b| {
        b.iter(|| {
            let tpg = Tpg::new(black_box(tps.clone()));
            let total: u32 = tpg.arcs().map(|(_, _, w)| w).sum();
            black_box(total)
        });
    });
}

fn bench_section4(c: &mut Criterion) {
    let tps = section4_tps();
    c.bench_function("figures/section4_end_to_end", |b| {
        b.iter(|| {
            let tpg = Tpg::new(tps.clone());
            let plans = plan_tour(&tpg, StartPolicy::Uniform, 16);
            let plan = &plans[0];
            let tour: Vec<_> = plan.order.iter().map(|&k| tps[k]).collect();
            let gts = Gts::from_tour(&tour);
            let test = schedule_tour(&tour).expect("schedules");
            black_box((gts.len(), test.complexity()))
        });
    });
}

criterion_group!(
    benches,
    bench_figure1,
    bench_figure2,
    bench_figure3,
    bench_figure4,
    bench_section4
);
criterion_main!(benches);
