//! Ablations of the design choices DESIGN.md calls out:
//!
//! * the f.4.4 **uniform-start constraint** on vs off,
//! * **all-optimal-tour enumeration** vs the single tour the paper uses,
//! * the **minimization pass** (Table 2's role) on vs off.
//!
//! Measured on Table 3's hardest row (SAF+TF+ADF+CFin+CFid → 10n).

use criterion::{criterion_group, criterion_main, Criterion};
use marchgen_bench::{row_models, TABLE3};
use marchgen_generator::Generator;
use marchgen_tpg::StartPolicy;
use std::hint::black_box;

fn row5_models() -> Vec<marchgen_faults::FaultModel> {
    row_models(&TABLE3[4])
}

fn bench_start_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/start_policy");
    group.sample_size(10);
    let models = row5_models();
    for (name, policy) in [
        ("uniform_f44", StartPolicy::Uniform),
        ("free", StartPolicy::Free),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = Generator::new(models.clone())
                    .start_policy(policy)
                    .run()
                    .expect("generates");
                black_box(out.test.complexity())
            });
        });
    }
    group.finish();
}

fn bench_tour_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/tour_enumeration");
    group.sample_size(10);
    let models = row5_models();
    for (name, cap) in [("single_tour", 1usize), ("all_optimal_64", 64)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = Generator::new(models.clone())
                    .tour_cap(cap)
                    .run()
                    .expect("generates");
                black_box(out.test.complexity())
            });
        });
    }
    group.finish();
}

fn bench_minimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/minimization");
    group.sample_size(10);
    let models = row5_models();
    for (name, on) in [("with_table2_pass", true), ("raw_schedule", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = Generator::new(models.clone())
                    .compact(on)
                    .run()
                    .expect("generates");
                black_box(out.test.complexity())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_start_policy,
    bench_tour_enumeration,
    bench_minimization
);
criterion_main!(benches);
