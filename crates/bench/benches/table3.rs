//! **Table 3** — the paper's main experimental result: per fault list,
//! the end-to-end generation of the optimal March test (and the CPU-time
//! column, reproduced on the host instead of the paper's PIII 650 MHz).
//!
//! Each bench measures one row's full pipeline run: requirement
//! expansion, class enumeration, TPG + constrained ATSP, March
//! construction, simulator verification and minimization.

use criterion::{criterion_group, criterion_main, Criterion};
use marchgen_bench::{row_models, TABLE3};
use marchgen_generator::Generator;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    for row in TABLE3 {
        let models = row_models(row);
        // Assert the reproduction once, outside the timing loop.
        let outcome = Generator::new(models.clone()).run().expect("row generates");
        assert_eq!(
            outcome.test.complexity(),
            row.paper_complexity,
            "{}: expected {}n, got {}",
            row.label,
            row.paper_complexity,
            outcome.test
        );
        assert!(outcome.verified, "{}", row.label);

        group.bench_function(row.label, |b| {
            b.iter(|| {
                let out = Generator::new(black_box(models.clone()))
                    .run()
                    .expect("row generates");
                black_box(out.test.complexity())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
