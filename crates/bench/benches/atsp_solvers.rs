//! ATSP solver scaling — the role of the paper's reference [12] (ACM
//! Algorithm 750): exact solutions "in very low computation time in
//! problems with low number of nodes". Compares Held–Karp, the
//! AP-relaxation branch-and-bound, the Hungarian bound alone and the
//! heuristic pipeline across instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use marchgen_atsp::{branch_bound, held_karp, heuristics, hungarian};
use marchgen_bench::random_atsp;
use std::hint::black_box;

fn bench_exact_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("atsp/exact");
    for &n in &[6usize, 8, 10, 12, 14] {
        let inst = random_atsp(n, 42 + n as u64);
        group.bench_with_input(BenchmarkId::new("held_karp", n), &inst, |b, inst| {
            b.iter(|| black_box(held_karp::solve(inst).cost));
        });
        group.bench_with_input(BenchmarkId::new("branch_bound", n), &inst, |b, inst| {
            b.iter(|| black_box(branch_bound::solve(inst).cost));
        });
    }
    group.finish();
}

fn bench_bound_and_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("atsp/support");
    for &n in &[8usize, 16, 24] {
        let inst = random_atsp(n, 7 + n as u64);
        group.bench_with_input(BenchmarkId::new("hungarian_bound", n), &inst, |b, inst| {
            b.iter(|| black_box(hungarian::lower_bound(inst)));
        });
        group.bench_with_input(BenchmarkId::new("heuristic", n), &inst, |b, inst| {
            b.iter(|| black_box(heuristics::construct(inst).cost));
        });
    }
    group.finish();
}

fn bench_all_optimal_enumeration(c: &mut Criterion) {
    // The generator's de-risking step: enumerate every optimal tour.
    let mut group = c.benchmark_group("atsp/enumerate_optimal");
    for &n in &[8usize, 10, 12] {
        let inst = random_atsp(n, 1000 + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| black_box(held_karp::solve_all(inst, 64).len()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_solvers,
    bench_bound_and_heuristics,
    bench_all_optimal_enumeration
);
criterion_main!(benches);
