//! The §2 claim, measured: prior-art **exhaustive transition-tree
//! search** ([2]–[4]) against the paper's ATSP pipeline on the same
//! fault lists. The exhaustive tree explodes exponentially with the
//! complexity bound, while the pipeline stays in the milliseconds — the
//! "who wins and by how much" shape of the paper's argument.

use criterion::{criterion_group, criterion_main, Criterion};
use marchgen_faults::parse_fault_list;
use marchgen_generator::{baseline, Generator};
use std::hint::black_box;

fn bench_saf(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_vs_pipeline/SAF");
    group.sample_size(10);
    let models = parse_fault_list("SAF").expect("parses");
    group.bench_function("pipeline", |b| {
        b.iter(|| {
            let out = Generator::new(models.clone()).run().expect("generates");
            black_box(out.test.complexity())
        });
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            let res = baseline::search(&models, 4, 3, u64::MAX);
            black_box(res.test.expect("a 4n test exists").complexity())
        });
    });
    group.finish();
}

fn bench_saf_tf(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_vs_pipeline/SAF+TF");
    group.sample_size(10);
    let models = parse_fault_list("SAF, TF").expect("parses");
    group.bench_function("pipeline", |b| {
        b.iter(|| {
            let out = Generator::new(models.clone()).run().expect("generates");
            black_box(out.test.complexity())
        });
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            let res = baseline::search(&models, 5, 3, u64::MAX);
            black_box(res.test.expect("a 5n test exists").complexity())
        });
    });
    group.finish();
}

fn bench_tree_growth(c: &mut Criterion) {
    // Node counts per bound — the exponential curve itself.
    let mut group = c.benchmark_group("baseline_vs_pipeline/tree_nodes");
    group.sample_size(10);
    let models = parse_fault_list("SAF").expect("parses");
    for bound in [2usize, 3, 4] {
        group.bench_function(format!("bound_{bound}"), |b| {
            b.iter(|| {
                let res = baseline::search(&models, bound, 3, u64::MAX);
                black_box(res.stats.nodes)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_saf, bench_saf_tf, bench_tree_growth);
criterion_main!(benches);
