//! The §6 verification machinery: fault-simulation cost per March test,
//! coverage-matrix construction and the set-covering non-redundancy
//! check, across memory sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use marchgen_faults::parse_fault_list;
use marchgen_march::known;
use marchgen_sim::coverage::covers_all;
use marchgen_sim::matrix::CoverageMatrix;
use std::hint::black_box;

fn bench_coverage_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/coverage_sweep");
    group.sample_size(10);
    let models = parse_fault_list("SAF, TF, CFin, CFid").expect("parses");
    let test = known::march_c_minus();
    for &n in &[4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(covers_all(&test, &models, n)));
        });
    }
    group.finish();
}

fn bench_known_test_costs(c: &mut Criterion) {
    // Simulation cost grows with test length: MATS (4n) … March SS (22n).
    let mut group = c.benchmark_group("simulator/by_test");
    group.sample_size(10);
    let models = parse_fault_list("CFid").expect("parses");
    for (name, test) in [
        ("MATS", known::mats()),
        ("March C-", known::march_c_minus()),
        ("March SS", known::march_ss()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(covers_all(&test, &models, 4)));
        });
    }
    group.finish();
}

fn bench_coverage_matrix_and_set_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/section6_checks");
    group.sample_size(10);
    let models = parse_fault_list("SAF, TF, CFin, CFid").expect("parses");
    let test = known::march_c_minus();
    group.bench_function("coverage_matrix", |b| {
        b.iter(|| {
            let cm = CoverageMatrix::build(&test, &models, 4);
            black_box(cm.entries.len())
        });
    });
    let cm = CoverageMatrix::build(&test, &models, 4);
    group.bench_function("set_covering", |b| {
        b.iter(|| {
            let verdict = cm.non_redundancy();
            black_box(verdict.minimum_cover)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_coverage_sweep,
    bench_known_test_costs,
    bench_coverage_matrix_and_set_cover
);
criterion_main!(benches);
