//! # marchgen-bench
//!
//! Shared workloads for the benchmark harness that regenerates every
//! table and figure of the paper (see `benches/` and the `repro` binary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use marchgen_atsp::AtspInstance;
use marchgen_faults::{parse_fault_list, requirements_for, FaultModel, TestPattern};

/// One row of the paper's Table 3.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Display label.
    pub label: &'static str,
    /// Fault list (parseable).
    pub faults: &'static str,
    /// The complexity the paper reports.
    pub paper_complexity: usize,
    /// The paper's CPU time in seconds (Compaq Presario, PIII 650 MHz).
    pub paper_seconds: f64,
    /// The paper's "Equivalent Known March Test" column.
    pub known_equivalent: &'static str,
}

/// All six rows of Table 3. Row 6's fault list follows the DESIGN.md
/// decoding of the published 5n test (victim-forced-to-one CFid subset).
pub const TABLE3: &[Table3Row] = &[
    Table3Row {
        label: "SAF",
        faults: "SAF",
        paper_complexity: 4,
        paper_seconds: 0.49,
        known_equivalent: "MATS (4n)",
    },
    Table3Row {
        label: "SAF+TF",
        faults: "SAF, TF",
        paper_complexity: 5,
        paper_seconds: 0.53,
        known_equivalent: "MATS+ (5n)",
    },
    Table3Row {
        label: "SAF+TF+ADF",
        faults: "SAF, TF, ADF",
        paper_complexity: 6,
        paper_seconds: 0.61,
        known_equivalent: "MATS++ (6n)",
    },
    Table3Row {
        label: "SAF+TF+ADF+CFin",
        faults: "SAF, TF, ADF, CFin",
        paper_complexity: 6,
        paper_seconds: 0.69,
        known_equivalent: "March X (6n)",
    },
    Table3Row {
        label: "SAF+TF+ADF+CFin+CFid",
        faults: "SAF, TF, ADF, CFin, CFid",
        paper_complexity: 10,
        paper_seconds: 0.85,
        known_equivalent: "March C- (10n)",
    },
    Table3Row {
        label: "CFid<u,1>+CFid<d,1>",
        faults: "CFid<u,1>, CFid<d,1>",
        paper_complexity: 5,
        paper_seconds: 0.57,
        known_equivalent: "Not Found",
    },
];

/// Parses a row's fault models.
#[must_use]
pub fn row_models(row: &Table3Row) -> Vec<FaultModel> {
    parse_fault_list(row.faults).expect("table rows parse")
}

/// The §4 worked-example TPs (TP1..TP4, paper numbering).
#[must_use]
pub fn section4_tps() -> Vec<TestPattern> {
    let mut tps = Vec::new();
    for list in ["CFid<u,0>", "CFid<u,1>"] {
        let models = parse_fault_list(list).expect("parses");
        for req in requirements_for(&models) {
            tps.push(req.alternatives[0]);
        }
    }
    tps
}

/// A deterministic pseudo-random ATSP instance (xorshift-based) for the
/// solver benchmarks.
#[must_use]
pub fn random_atsp(n: usize, seed: u64) -> AtspInstance {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    AtspInstance::from_fn(n, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % 100
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_six_rows() {
        assert_eq!(TABLE3.len(), 6);
        for row in TABLE3 {
            assert!(!row_models(row).is_empty(), "{}", row.label);
        }
    }

    #[test]
    fn section4_tps_count() {
        assert_eq!(section4_tps().len(), 4);
    }

    #[test]
    fn random_atsp_is_deterministic() {
        assert_eq!(random_atsp(6, 7), random_atsp(6, 7));
    }
}
