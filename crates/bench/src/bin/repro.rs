//! `repro` — regenerates every table and figure of the paper in one run
//! and prints the paper-vs-measured record for `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p marchgen-bench --bin repro
//! ```

use marchgen_bench::{row_models, section4_tps, TABLE3};
use marchgen_faults::{bfe, catalog, FaultModel, TransitionDir};
use marchgen_generator::{baseline, gts::Gts, schedule_tour, Generator};
use marchgen_march::known;
use marchgen_model::{Bit, TwoCellMachine};
use marchgen_sim::coverage::covers_all;
use marchgen_sim::matrix::CoverageMatrix;
use marchgen_tpg::{plan_tour, StartPolicy, Tpg};
use std::time::Instant;

fn main() {
    figures();
    table3();
    baseline_comparison();
    ablations();
}

fn figures() {
    println!("== Figures 1-3: memory model =================================");
    let m0 = TwoCellMachine::fault_free();
    println!(
        "Figure 1  M0: 4 states x 7 ops = {} transitions (paper: fault-free two-cell RAM)",
        4 * 7
    );
    let machines = catalog::machines(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero));
    for (label, m) in &machines {
        let diffs = m0.diff(m);
        println!(
            "Figure 2  {label}: differs from M0 in {} transition(s) (paper: 1)",
            diffs.len()
        );
    }
    let mut tps = Vec::new();
    for (_, m) in &machines {
        for b in bfe::extract(m) {
            tps.extend(b.test_patterns());
        }
    }
    println!(
        "Figure 3  BFE split of CFid<↑,0>: {} TPs (paper: TP1=(01,w1i,r1j), TP2=(10,w1j,r1i))",
        tps.len()
    );
    for tp in &tps {
        println!("          {tp}");
    }

    println!("\n== Figure 4 + Section 4 worked example ======================");
    let tps = section4_tps();
    let tpg = Tpg::new(tps.clone());
    let mut weights: Vec<u32> = tpg.arcs().map(|(_, _, w)| w).collect();
    weights.sort_unstable();
    println!("Figure 4  TPG weights: {weights:?} (paper: 0x2, 1x4, 2x6)");
    let plans = plan_tour(&tpg, StartPolicy::Uniform, 64);
    let plan = &plans[0];
    let tour: Vec<_> = plan.order.iter().map(|&k| tps[k]).collect();
    let gts = Gts::from_tour(&tour);
    println!("GTS ({} ops, paper: 12): {gts}", gts.len());
    let best = plans
        .iter()
        .filter_map(|p| {
            let t: Vec<_> = p.order.iter().map(|&k| tps[k]).collect();
            schedule_tour(&t).ok()
        })
        .min_by_key(marchgen_march::MarchTest::complexity)
        .expect("schedules");
    println!("March test ({}n, paper: 8n): {best}", best.complexity());
}

fn table3() {
    println!("\n== Table 3 ===================================================");
    println!(
        "{:<22} {:>6} {:>6}   {:>9} {:>9}  {:<14} generated test",
        "fault list", "kn", "paper", "time", "paper", "known equiv"
    );
    for row in TABLE3 {
        let models = row_models(row);
        let start = Instant::now();
        let out = Generator::new(models.clone()).run().expect("generates");
        let dt = start.elapsed();
        let cm = CoverageMatrix::build(&out.test, &models, 4);
        let nr = cm.non_redundancy();
        assert!(out.verified && nr.non_redundant, "{}", row.label);
        println!(
            "{:<22} {:>5}n {:>5}n   {:>9.2?} {:>8.2}s  {:<14} {}",
            row.label,
            out.test.complexity(),
            row.paper_complexity,
            dt,
            row.paper_seconds,
            row.known_equivalent,
            out.test
        );
    }
    println!("(every row verified complete + non-redundant by the §6 simulator/set-covering)");

    println!("\nKnown-test cross-check (strict simulator semantics):");
    for (row, name) in [
        (0usize, "MATS"),
        (1, "MATS+"),
        (2, "MATS++"),
        (3, "March X"),
        (4, "March C-"),
    ] {
        let models = row_models(&TABLE3[row]);
        let t = known::by_name(name).expect("known");
        println!(
            "  {:<9} covers {:<22}: {}",
            name,
            TABLE3[row].label,
            covers_all(&t, &models, 4)
        );
    }
}

fn baseline_comparison() {
    println!("\n== §2 baseline: exhaustive transition-tree vs pipeline ======");
    for (label, list, bound) in [
        ("SAF", "SAF", 4usize),
        ("SAF+TF", "SAF, TF", 5),
        ("SAF+TF+ADF", "SAF, TF, ADF", 6),
    ] {
        let models = marchgen_faults::parse_fault_list(list).expect("parses");
        let t0 = Instant::now();
        let out = Generator::new(models.clone()).run().expect("generates");
        let pipeline_time = t0.elapsed();

        let cap = 40_000_000u64;
        let t1 = Instant::now();
        let res = baseline::search(&models, bound, 3, cap);
        let baseline_time = t1.elapsed();
        let found = res
            .test
            .map_or("capped".to_string(), |t| format!("{}n", t.complexity()));
        println!(
            "  {label:<12} pipeline {}n in {:>9.2?} | exhaustive {} after {} nodes in {:>9.2?}",
            out.test.complexity(),
            pipeline_time,
            found,
            res.stats.nodes,
            baseline_time,
        );
    }
}

fn ablations() {
    println!("\n== Ablations on row 5 (SAF+TF+ADF+CFin+CFid) =================");
    let models = row_models(&TABLE3[4]);
    for (label, gen) in [
        (
            "default (f.4.4 + enumeration + Table-2 pass)",
            Generator::new(models.clone()),
        ),
        (
            "start policy: free",
            Generator::new(models.clone()).start_policy(StartPolicy::Free),
        ),
        (
            "single tour per combination",
            Generator::new(models.clone()).tour_cap(1),
        ),
        (
            "no minimization pass",
            Generator::new(models.clone()).compact(false),
        ),
    ] {
        let t = Instant::now();
        let out = gen.run().expect("generates");
        println!(
            "  {:<46} -> {:>2}n, verified={} in {:>9.2?}",
            label,
            out.test.complexity(),
            out.verified,
            t.elapsed()
        );
    }
}
