//! `repro` — regenerates every table and figure of the paper in one run
//! and prints the paper-vs-measured record for `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p marchgen-bench --bin repro
//! ```
//!
//! With `--perf-json <path>` it instead runs the offline **perf smoke**:
//! the Table 3 workloads through the full pipeline under every
//! verification backend (scalar, bit-parallel, wide-lane),
//! verify-phase microbenchmarks across all three backends, and — since
//! PR 4 — a **solver phase**: every registered ATSP backend over
//! deterministic instances and pipeline workloads, with per-solver
//! tour-cost and latency columns. Written as a JSON record (the
//! benchmark trajectory, `BENCH_pr10.json`). The process exits
//! non-zero if the bit-parallel verifier is slower than twice the
//! scalar time on any pair-fault workload (2x noise margin over the
//! ~10x measured advantage), if the wide-lane verifier is slower than
//! 1.5x the bit-parallel time on any pair-fault workload (noise margin
//! over the measured multi-batch win), if the verification backends
//! ever disagree on a coverage report, or if the local-search solver
//! misses the exact optimum on an exact-range instance.
//!
//! ```sh
//! cargo run --release -p marchgen-bench --bin repro -- --perf-json BENCH_pr10.json
//! ```

use marchgen_bench::{row_models, section4_tps, TABLE3};
use marchgen_faults::{bfe, catalog, parse_fault_list, FaultModel, TransitionDir};
use marchgen_generator::{
    baseline, generate, gts::Gts, schedule_tour, GenerateRequest, Generator, VerifierChoice,
};
use marchgen_json::Json;
use marchgen_march::{known, MarchTest};
use marchgen_model::{Bit, TwoCellMachine};
use marchgen_sim::coverage::covers_all;
use marchgen_sim::matrix::CoverageMatrix;
use marchgen_sim::verify::Verifier;
use marchgen_sim::{BitSimVerifier, SimVerifier, WideSimVerifier};
use marchgen_tpg::{plan_tour, StartPolicy, Tpg};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--perf-json") {
        let path = args
            .get(pos + 1)
            .cloned()
            .unwrap_or_else(|| "BENCH_pr10.json".to_string());
        return perf_smoke(&path);
    }
    figures();
    table3();
    baseline_comparison();
    ablations();
    ExitCode::SUCCESS
}

// ---- perf smoke (scalar vs bit-parallel verification) ------------------

/// Best-of-`reps` wall-clock of `f`, in µs.
fn best_micros(reps: usize, mut f: impl FnMut()) -> u64 {
    (0..reps)
        .map(|_| {
            let started = Instant::now();
            f();
            u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
        })
        .min()
        .expect("at least one rep")
}

/// One verify-phase microbenchmark: full coverage sweep of `test` over
/// `faults` on `cells` memory cells, scalar vs bit-parallel vs
/// wide-lane.
fn verify_case(label: &str, faults: &str, cells: usize, test: &MarchTest) -> (Json, bool) {
    let models = parse_fault_list(faults).expect("perf workloads parse");
    let pair_fault = models.iter().any(FaultModel::is_pair_fault);
    let scalar = SimVerifier::new(cells);
    let packed = BitSimVerifier::new(cells);
    let wide = WideSimVerifier::new(cells);
    let scalar_report = scalar.verify(test, &models);
    let packed_report = packed.verify(test, &models);
    let wide_report = wide.verify(test, &models);
    let agree = scalar_report == packed_report && scalar_report == wide_report;
    let reps = 5;
    let scalar_micros = best_micros(reps, || {
        let _ = scalar.verify(test, &models);
    });
    let bitsim_micros = best_micros(reps, || {
        let _ = packed.verify(test, &models);
    });
    let wide_micros = best_micros(reps, || {
        let _ = wide.verify(test, &models);
    });
    let speedup = scalar_micros as f64 / bitsim_micros.max(1) as f64;
    let wide_speedup = scalar_micros as f64 / wide_micros.max(1) as f64;
    let wide_vs_bitsim = bitsim_micros as f64 / wide_micros.max(1) as f64;
    // The regression gates leave a safety factor over the raw
    // wall-clock comparison: bitsim-vs-scalar runs ~10x, so a 2x
    // margin still trips on a real regression while scheduler noise on
    // a shared CI runner does not; wide-vs-bitsim runs ~2-4x on the
    // multi-batch pair-fault rows, so it gets a tighter 1.5x margin.
    let ok = agree
        && (!pair_fault
            || (bitsim_micros <= scalar_micros.saturating_mul(2)
                && wide_micros.saturating_mul(2) <= bitsim_micros.saturating_mul(3)));
    println!(
        "  {label:<34} scalar {scalar_micros:>9} µs | bitsim {bitsim_micros:>8} µs ({speedup:>5.1}x) | wide {wide_micros:>8} µs ({wide_speedup:>5.1}x, {wide_vs_bitsim:>4.1}x vs bitsim)  agree={agree}"
    );
    let entry = Json::object([
        ("label", Json::from(label)),
        ("faults", Json::from(faults)),
        ("cells", Json::from(cells)),
        ("test", Json::Str(test.to_string())),
        ("pair_fault", Json::Bool(pair_fault)),
        ("scalar_verify_micros", Json::from(scalar_micros)),
        ("bitsim_verify_micros", Json::from(bitsim_micros)),
        ("wide_verify_micros", Json::from(wide_micros)),
        ("speedup", Json::Str(format!("{speedup:.2}"))),
        ("wide_speedup", Json::Str(format!("{wide_speedup:.2}"))),
        ("wide_vs_bitsim", Json::Str(format!("{wide_vs_bitsim:.2}"))),
        ("reports_agree", Json::Bool(agree)),
    ]);
    (entry, ok)
}

/// Deterministic xorshift instance for the solver sweeps.
fn solver_bench_instance(n: usize, seed: u64) -> marchgen_atsp::AtspInstance {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    marchgen_atsp::AtspInstance::from_fn(n, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % 100
    })
}

/// The ATSP solver sweep: every registered backend over deterministic
/// instances spanning the exact range (n = 12), the branch-and-bound
/// range (n = 30) and the local-search range (n = 48). Emits
/// per-solver tour-cost and latency columns; fails when the local
/// search misses the exact optimum inside the exact range, or any
/// backend returns an invalid tour.
fn solver_sweep(rows: &mut Vec<Json>) -> bool {
    use marchgen_atsp::SolverRegistry;
    let mut ok = true;
    let registry = SolverRegistry::default();
    println!("== perf smoke: ATSP solver sweep (cost | latency) ============");
    for (n, seed) in [(12usize, 7u64), (30, 11), (48, 23)] {
        let inst = solver_bench_instance(n, seed);
        // Exact reference where an exact backend is in range (the same
        // thresholds the auto policy dispatches on).
        let exact_cost = (n <= marchgen_atsp::EXACT_THRESHOLD).then(|| {
            if n <= marchgen_atsp::held_karp::MAX_NODES {
                marchgen_atsp::held_karp::solve(&inst).cost
            } else {
                marchgen_atsp::branch_bound::solve(&inst).cost
            }
        });
        for name in registry.names() {
            let solver = registry.get(name).expect("registered");
            let tour = solver.solve(&inst);
            let valid = inst.is_valid_tour(&tour.order);
            ok &= valid;
            let micros = best_micros(3, || {
                let _ = solver.solve(&inst);
            });
            let exact_hit = exact_cost.map(|opt| tour.cost == opt);
            if let (true, Some(opt)) = (
                name == "local-search" && n <= marchgen_atsp::held_karp::MAX_NODES,
                exact_cost,
            ) {
                // The acceptance gate: inside the exact range the local
                // search must land on the optimum.
                ok &= tour.cost == opt;
            }
            println!(
                "  n={n:<3} {name:<13} cost {:>6} | {micros:>8} µs | exact_hit={:?}",
                tour.cost, exact_hit
            );
            rows.push(Json::object([
                ("n", Json::from(n)),
                ("seed", Json::from(seed)),
                ("solver", Json::from(name)),
                ("tour_cost", Json::from(tour.cost)),
                ("solve_micros", Json::from(micros)),
                (
                    "exact_optimum",
                    exact_cost.map(Json::from).unwrap_or(Json::Null),
                ),
                (
                    "matches_exact",
                    exact_hit.map(Json::Bool).unwrap_or(Json::Null),
                ),
                ("valid_tour", Json::Bool(valid)),
            ]));
        }
    }
    ok
}

/// The pipeline solver sweep: two catalog workloads through `generate`
/// once per backend, recording complexity (the tour-cost proxy the
/// paper optimizes), search latency and the local-search counters.
/// Fails when a backend other than the bounded one-shot heuristic
/// misses the exact baseline complexity or fails verification.
fn solver_pipeline_sweep(rows: &mut Vec<Json>) -> bool {
    use marchgen_atsp::SolverChoice;
    let mut ok = true;
    println!("== perf smoke: pipeline per-solver (complexity | search µs) ==");
    for faults in ["CFid<u,0>, CFid<u,1>", "SAF, TF, ADF, CFin, CFid"] {
        let baseline = generate(&GenerateRequest::from_fault_list(faults).expect("parses"))
            .expect("generates")
            .complexity();
        for key in [
            "auto",
            "held-karp",
            "branch-bound",
            "heuristic",
            "local-search",
        ] {
            let request = GenerateRequest::from_fault_list(faults)
                .expect("parses")
                .with_solver(SolverChoice::from_key(key));
            let started = Instant::now();
            let out = generate(&request).expect("generates");
            let total = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            let d = &out.diagnostics;
            let matches = out.complexity() == baseline && out.verified;
            // Gate by what each backend promises: the enumerating exact
            // backends must hit the baseline complexity exactly; the
            // single-tour backends (branch-and-bound, local search) may
            // lose one operation to tour-enumeration — the March
            // constructor tries every optimal tour only when the
            // backend can enumerate them — and the one-shot heuristic
            // gets the same slack. Everything must verify.
            ok &= out.verified;
            if matches!(key, "auto" | "held-karp") {
                ok &= matches;
            } else {
                ok &= out.complexity() <= baseline + 1;
            }
            println!(
                "  {faults:<26} {key:<13} {:>2}n | search {:>8} µs | total {:>8} µs | ls {}it/{}re",
                out.complexity(),
                d.search_micros,
                total,
                d.solver_iterations,
                d.solver_restarts,
            );
            rows.push(Json::object([
                ("faults", Json::from(faults)),
                ("solver", Json::from(key)),
                ("complexity", Json::from(out.complexity())),
                ("verified", Json::Bool(out.verified)),
                ("matches_baseline", Json::Bool(matches)),
                ("search_micros", Json::from(d.search_micros)),
                ("total_micros", Json::from(total)),
                ("solver_iterations", Json::from(d.solver_iterations)),
                ("solver_restarts", Json::from(d.solver_restarts)),
            ]));
        }
    }
    ok
}

/// The offline perf smoke: per-phase pipeline timings on the Table 3
/// workloads under all three verification backends, verify-phase
/// microbenchmarks (including the pair-fault CFin+CFid+CFst sweep at 8
/// cells), and the per-solver cost/latency sweeps. Writes the record to
/// `path`; non-zero exit when bit-parallel exceeds twice the scalar
/// time on a pair-fault workload (2x noise margin), wide-lane exceeds
/// 1.5x the bit-parallel time on a pair-fault workload, the
/// verification backends disagree, or a solver misses its cost gate.
fn perf_smoke(path: &str) -> ExitCode {
    let mut ok = true;

    println!("== perf smoke: pipeline per-phase timings (Table 3) ==========");
    let mut pipeline_rows = Vec::new();
    for row in TABLE3 {
        let models = row_models(row);
        let pair_fault = models.iter().any(FaultModel::is_pair_fault);
        for (backend, choice) in [
            ("scalar", VerifierChoice::Scalar),
            ("bitsim", VerifierChoice::BitParallel),
            ("wide", VerifierChoice::Wide),
        ] {
            let request = GenerateRequest::new(models.clone()).with_verifier(choice);
            let started = Instant::now();
            let out = generate(&request).expect("table rows generate");
            let total = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            let d = &out.diagnostics;
            println!(
                "  {:<22} {:<7} {:>2}n  expand {:>6} µs | search {:>8} µs | verify {:>9} µs",
                row.label,
                backend,
                out.test.complexity(),
                d.expand_micros,
                d.search_micros,
                d.verify_micros
            );
            pipeline_rows.push(Json::object([
                ("label", Json::from(row.label)),
                ("backend", Json::from(backend)),
                ("complexity", Json::from(out.test.complexity())),
                ("verified", Json::Bool(out.verified)),
                ("pair_fault", Json::Bool(pair_fault)),
                ("expand_micros", Json::from(d.expand_micros)),
                ("search_micros", Json::from(d.search_micros)),
                ("verify_micros", Json::from(d.verify_micros)),
                ("total_micros", Json::from(total)),
                (
                    "shard_micros",
                    Json::array(d.shard_micros.iter().map(|&m| Json::from(m))),
                ),
                ("verifier", Json::Str(d.verifier.clone())),
                (
                    "verify_shard_micros",
                    Json::array(d.verify_shard_micros.iter().map(|&m| Json::from(m))),
                ),
            ]));
        }
    }

    println!("== perf smoke: verify-phase sweeps, scalar vs bitsim vs wide =");
    let mut verify_rows = Vec::new();
    let march_c = known::march_c_minus();
    let march_ss = known::march_ss();
    for (label, faults, cells, test) in [
        (
            "single faults @8 (March C-)",
            "SAF, TF, RDF, IRF",
            8,
            &march_c,
        ),
        ("CFin+CFid @4 (March C-)", "CFin, CFid", 4, &march_c),
        (
            "CFin+CFid+CFst @8 (March C-)",
            "CFin, CFid, CFst",
            8,
            &march_c,
        ),
        (
            "CFin+CFid+CFst @8 (March SS)",
            "CFin, CFid, CFst",
            8,
            &march_ss,
        ),
        (
            "Table3 row5 list @6",
            "SAF, TF, ADF, CFin, CFid",
            6,
            &march_c,
        ),
        (
            "Table3 row5 list @8",
            "SAF, TF, ADF, CFin, CFid",
            8,
            &march_c,
        ),
    ] {
        let (entry, case_ok) = verify_case(label, faults, cells, test);
        verify_rows.push(entry);
        ok &= case_ok;
    }

    let mut solver_rows = Vec::new();
    ok &= solver_sweep(&mut solver_rows);
    let mut solver_pipeline_rows = Vec::new();
    ok &= solver_pipeline_sweep(&mut solver_pipeline_rows);

    let doc = Json::object([
        ("schema", Json::from("marchgen-bench/4")),
        ("pipeline_rows", Json::array(pipeline_rows)),
        ("verify_phase", Json::array(verify_rows)),
        ("solver_phase", Json::array(solver_rows)),
        ("solver_pipeline", Json::array(solver_pipeline_rows)),
        ("pass", Json::Bool(ok)),
    ]);
    if let Err(e) = std::fs::write(path, doc.render_pretty()) {
        eprintln!("error: cannot write {path:?}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "error: a perf gate failed — bit-parallel verify over 2x scalar or wide verify \
             over 1.5x bit-parallel on a pair-fault workload, verifier reports disagreed, \
             or a solver missed its cost gate"
        );
        ExitCode::FAILURE
    }
}

fn figures() {
    println!("== Figures 1-3: memory model =================================");
    let m0 = TwoCellMachine::fault_free();
    println!(
        "Figure 1  M0: 4 states x 7 ops = {} transitions (paper: fault-free two-cell RAM)",
        4 * 7
    );
    let machines = catalog::machines(FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::Zero));
    for (label, m) in &machines {
        let diffs = m0.diff(m);
        println!(
            "Figure 2  {label}: differs from M0 in {} transition(s) (paper: 1)",
            diffs.len()
        );
    }
    let mut tps = Vec::new();
    for (_, m) in &machines {
        for b in bfe::extract(m) {
            tps.extend(b.test_patterns());
        }
    }
    println!(
        "Figure 3  BFE split of CFid<↑,0>: {} TPs (paper: TP1=(01,w1i,r1j), TP2=(10,w1j,r1i))",
        tps.len()
    );
    for tp in &tps {
        println!("          {tp}");
    }

    println!("\n== Figure 4 + Section 4 worked example ======================");
    let tps = section4_tps();
    let tpg = Tpg::new(tps.clone());
    let mut weights: Vec<u32> = tpg.arcs().map(|(_, _, w)| w).collect();
    weights.sort_unstable();
    println!("Figure 4  TPG weights: {weights:?} (paper: 0x2, 1x4, 2x6)");
    let plans = plan_tour(&tpg, StartPolicy::Uniform, 64);
    let plan = &plans[0];
    let tour: Vec<_> = plan.order.iter().map(|&k| tps[k]).collect();
    let gts = Gts::from_tour(&tour);
    println!("GTS ({} ops, paper: 12): {gts}", gts.len());
    let best = plans
        .iter()
        .filter_map(|p| {
            let t: Vec<_> = p.order.iter().map(|&k| tps[k]).collect();
            schedule_tour(&t).ok()
        })
        .min_by_key(marchgen_march::MarchTest::complexity)
        .expect("schedules");
    println!("March test ({}n, paper: 8n): {best}", best.complexity());
}

fn table3() {
    println!("\n== Table 3 ===================================================");
    println!(
        "{:<22} {:>6} {:>6}   {:>9} {:>9}  {:<14} generated test",
        "fault list", "kn", "paper", "time", "paper", "known equiv"
    );
    for row in TABLE3 {
        let models = row_models(row);
        let start = Instant::now();
        let out = Generator::new(models.clone()).run().expect("generates");
        let dt = start.elapsed();
        let cm = CoverageMatrix::build(&out.test, &models, 4);
        let nr = cm.non_redundancy();
        assert!(out.verified && nr.non_redundant, "{}", row.label);
        println!(
            "{:<22} {:>5}n {:>5}n   {:>9.2?} {:>8.2}s  {:<14} {}",
            row.label,
            out.test.complexity(),
            row.paper_complexity,
            dt,
            row.paper_seconds,
            row.known_equivalent,
            out.test
        );
    }
    println!("(every row verified complete + non-redundant by the §6 simulator/set-covering)");

    println!("\nKnown-test cross-check (strict simulator semantics):");
    for (row, name) in [
        (0usize, "MATS"),
        (1, "MATS+"),
        (2, "MATS++"),
        (3, "March X"),
        (4, "March C-"),
    ] {
        let models = row_models(&TABLE3[row]);
        let t = known::by_name(name).expect("known");
        println!(
            "  {:<9} covers {:<22}: {}",
            name,
            TABLE3[row].label,
            covers_all(&t, &models, 4)
        );
    }
}

fn baseline_comparison() {
    println!("\n== §2 baseline: exhaustive transition-tree vs pipeline ======");
    for (label, list, bound) in [
        ("SAF", "SAF", 4usize),
        ("SAF+TF", "SAF, TF", 5),
        ("SAF+TF+ADF", "SAF, TF, ADF", 6),
    ] {
        let models = marchgen_faults::parse_fault_list(list).expect("parses");
        let t0 = Instant::now();
        let out = Generator::new(models.clone()).run().expect("generates");
        let pipeline_time = t0.elapsed();

        let cap = 40_000_000u64;
        let t1 = Instant::now();
        let res = baseline::search(&models, bound, 3, cap);
        let baseline_time = t1.elapsed();
        let found = res
            .test
            .map_or("capped".to_string(), |t| format!("{}n", t.complexity()));
        println!(
            "  {label:<12} pipeline {}n in {:>9.2?} | exhaustive {} after {} nodes in {:>9.2?}",
            out.test.complexity(),
            pipeline_time,
            found,
            res.stats.nodes,
            baseline_time,
        );
    }
}

fn ablations() {
    println!("\n== Ablations on row 5 (SAF+TF+ADF+CFin+CFid) =================");
    let models = row_models(&TABLE3[4]);
    for (label, gen) in [
        (
            "default (f.4.4 + enumeration + Table-2 pass)",
            Generator::new(models.clone()),
        ),
        (
            "start policy: free",
            Generator::new(models.clone()).start_policy(StartPolicy::Free),
        ),
        (
            "single tour per combination",
            Generator::new(models.clone()).tour_cap(1),
        ),
        (
            "no minimization pass",
            Generator::new(models.clone()).compact(false),
        ),
    ] {
        let t = Instant::now();
        let out = gen.run().expect("generates");
        println!(
            "  {:<46} -> {:>2}n, verified={} in {:>9.2?}",
            label,
            out.test.complexity(),
            out.verified,
            t.elapsed()
        );
    }
}
