//! JSON codecs for the typed API surface (`serde` feature): lossless
//! [`GenerateRequest`] / [`GenerateOutcome`] round-trips built on the
//! in-tree [`marchgen_json`] kit.
//!
//! Encoding conventions:
//!
//! * fault models serialize as their canonical parseable names
//!   (`"SA0"`, `"CFid<↑,1>"`); decoding accepts family names too
//!   (`"SAF"` expands, exactly like the textual parser),
//! * March tests serialize as their standard notation and re-parse,
//! * Test Patterns, coverage reports and fault sites serialize
//!   structurally, so outcomes survive a round-trip bit-for-bit.

use crate::outcome::{Diagnostics, GenerateOutcome};
use crate::request::{GenerateRequest, VerifierChoice};
use marchgen_atsp::SolverChoice;
use marchgen_faults::{parse_fault_list, FaultModel, Observation, TestPattern, TpKind};
use marchgen_json::{bool_field, field, str_field, usize_field, FromJson, Json, JsonError, ToJson};
use marchgen_march::MarchTest;
use marchgen_model::{Bit, Cell, MemOp, PairState, Tri};
use marchgen_sim::coverage::{CoverageReport, ModelCoverage};
use marchgen_sim::{FaultSite, SiteCells};
use marchgen_tpg::StartPolicy;

/// Schema identifier stamped into every serialized request/outcome.
const SCHEMA_VERSION: i64 = 1;

fn check_schema(json: &Json) -> Result<(), JsonError> {
    // Tolerate an absent version (hand-written documents); reject a
    // mismatched one.
    match json.get("schema") {
        None => Ok(()),
        Some(v) if v.as_int() == Some(SCHEMA_VERSION) => Ok(()),
        Some(v) => Err(JsonError::decode(format!(
            "unsupported schema version {v:?} (this build reads version {SCHEMA_VERSION})"
        ))),
    }
}

// ---- leaf codecs -------------------------------------------------------

fn fault_to_json(model: FaultModel) -> Json {
    Json::Str(model.name())
}

fn fault_from_json(json: &Json) -> Result<FaultModel, JsonError> {
    let token = json
        .as_str()
        .ok_or_else(|| JsonError::decode("fault model must be a string"))?;
    let models = parse_fault_list(token).map_err(|e| JsonError::decode(e.to_string()))?;
    match models.as_slice() {
        [one] => Ok(*one),
        _ => Err(JsonError::decode(format!(
            "{token:?} names a fault family, not a single model"
        ))),
    }
}

fn faults_from_json(json: &Json) -> Result<Vec<FaultModel>, JsonError> {
    let items = json
        .as_array()
        .ok_or_else(|| JsonError::decode("field \"faults\" must be an array"))?;
    let mut out = Vec::new();
    for item in items {
        let token = item
            .as_str()
            .ok_or_else(|| JsonError::decode("fault list entries must be strings"))?;
        // Families are welcome here — a hand-written request may say
        // "SAF" and mean both polarities, exactly like the CLI parser.
        out.extend(parse_fault_list(token).map_err(|e| JsonError::decode(e.to_string()))?);
    }
    Ok(out)
}

fn bit_to_json(bit: Bit) -> Json {
    Json::Int(bit.as_usize() as i64)
}

fn bit_from_json(json: &Json) -> Result<Bit, JsonError> {
    match json.as_int() {
        Some(0) => Ok(Bit::Zero),
        Some(1) => Ok(Bit::One),
        _ => Err(JsonError::decode("bit must be 0 or 1")),
    }
}

fn tri_from_char(c: char) -> Result<Tri, JsonError> {
    match c {
        '0' => Ok(Tri::Zero),
        '1' => Ok(Tri::One),
        '-' => Ok(Tri::X),
        other => Err(JsonError::decode(format!(
            "invalid tri-state value {other:?}"
        ))),
    }
}

fn pair_state_from_json(json: &Json) -> Result<PairState, JsonError> {
    let text = json
        .as_str()
        .ok_or_else(|| JsonError::decode("pair state must be a string like \"0-\""))?;
    let mut chars = text.chars();
    match (chars.next(), chars.next(), chars.next()) {
        (Some(i), Some(j), None) => Ok(PairState::new(tri_from_char(i)?, tri_from_char(j)?)),
        _ => Err(JsonError::decode(format!(
            "pair state {text:?} must have two components"
        ))),
    }
}

fn cell_from_str(text: &str) -> Result<Cell, JsonError> {
    match text {
        "i" => Ok(Cell::I),
        "j" => Ok(Cell::J),
        other => Err(JsonError::decode(format!("invalid cell {other:?}"))),
    }
}

fn op_from_json(json: &Json) -> Result<MemOp, JsonError> {
    let text = json
        .as_str()
        .ok_or_else(|| JsonError::decode("memory operation must be a string"))?;
    match text.as_bytes() {
        b"T" => Ok(MemOp::Delay),
        [b'r', cell @ ..] => Ok(MemOp::read(cell_from_str(
            std::str::from_utf8(cell).unwrap_or(""),
        )?)),
        [b'w', value, cell @ ..] => {
            let bit = match value {
                b'0' => Bit::Zero,
                b'1' => Bit::One,
                _ => {
                    return Err(JsonError::decode(format!(
                        "invalid write value in {text:?}"
                    )))
                }
            };
            Ok(MemOp::write(
                cell_from_str(std::str::from_utf8(cell).unwrap_or(""))?,
                bit,
            ))
        }
        _ => Err(JsonError::decode(format!(
            "invalid memory operation {text:?}"
        ))),
    }
}

fn observation_to_json(observation: Observation) -> Json {
    match observation {
        Observation::SelfRead { expected } => Json::object([
            ("kind", Json::from("self-read")),
            ("expected", bit_to_json(expected)),
        ]),
        Observation::Read { cell, expected } => Json::object([
            ("kind", Json::from("read")),
            ("cell", Json::Str(cell.to_string())),
            ("expected", bit_to_json(expected)),
        ]),
    }
}

fn observation_from_json(json: &Json) -> Result<Observation, JsonError> {
    let expected = bit_from_json(field(json, "expected")?)?;
    match str_field(json, "kind")? {
        "self-read" => Ok(Observation::SelfRead { expected }),
        "read" => Ok(Observation::Read {
            cell: cell_from_str(str_field(json, "cell")?)?,
            expected,
        }),
        other => Err(JsonError::decode(format!(
            "invalid observation kind {other:?}"
        ))),
    }
}

fn tp_to_json(tp: &TestPattern) -> Json {
    // Schema note: `setup` is an *optional* key (emitted only for
    // two-operation dynamic-fault TPs), so pre-existing clients keep
    // decoding classical TPs unchanged.
    let mut pairs = vec![
        ("init".to_owned(), Json::Str(tp.init.to_string())),
        ("excite".to_owned(), Json::Str(tp.excite.to_string())),
        ("observe".to_owned(), observation_to_json(tp.observe)),
        (
            "kind".to_owned(),
            Json::from(match tp.kind {
                TpKind::SingleCell => "single",
                TpKind::Pair => "pair",
            }),
        ),
        ("immediate".to_owned(), Json::Bool(tp.immediate)),
        ("pre_read".to_owned(), Json::Bool(tp.pre_read)),
    ];
    if let Some(setup) = tp.setup {
        pairs.push(("setup".to_owned(), Json::Str(setup.to_string())));
    }
    Json::Object(pairs)
}

fn tp_from_json(json: &Json) -> Result<TestPattern, JsonError> {
    let kind = match str_field(json, "kind")? {
        "single" => TpKind::SingleCell,
        "pair" => TpKind::Pair,
        other => return Err(JsonError::decode(format!("invalid TP kind {other:?}"))),
    };
    let setup = match json.get("setup") {
        Some(j) => Some(op_from_json(j)?),
        None => None,
    };
    Ok(TestPattern {
        init: pair_state_from_json(field(json, "init")?)?,
        setup,
        excite: op_from_json(field(json, "excite")?)?,
        observe: observation_from_json(field(json, "observe")?)?,
        kind,
        immediate: bool_field(json, "immediate")?,
        pre_read: bool_field(json, "pre_read")?,
    })
}

fn march_to_json(test: &MarchTest) -> Json {
    Json::Str(test.to_string())
}

fn march_from_json(json: &Json) -> Result<MarchTest, JsonError> {
    json.as_str()
        .ok_or_else(|| JsonError::decode("march test must be a string"))?
        .parse::<MarchTest>()
        .map_err(|e| JsonError::decode(e.to_string()))
}

fn site_to_json(site: &FaultSite) -> Json {
    let mut pairs = vec![("model".to_owned(), fault_to_json(site.model))];
    match site.cells {
        SiteCells::Single(cell) => pairs.push(("cell".to_owned(), Json::from(cell))),
        SiteCells::Pair { aggressor, victim } => {
            pairs.push(("aggressor".to_owned(), Json::from(aggressor)));
            pairs.push(("victim".to_owned(), Json::from(victim)));
        }
    }
    Json::Object(pairs)
}

fn site_from_json(json: &Json) -> Result<FaultSite, JsonError> {
    let model = fault_from_json(field(json, "model")?)?;
    let cells = if json.get("cell").is_some() {
        SiteCells::Single(usize_field(json, "cell")?)
    } else {
        SiteCells::Pair {
            aggressor: usize_field(json, "aggressor")?,
            victim: usize_field(json, "victim")?,
        }
    };
    Ok(FaultSite { model, cells })
}

fn model_coverage_to_json(coverage: &ModelCoverage) -> Json {
    Json::object([
        ("model", fault_to_json(coverage.model)),
        ("total_sites", Json::from(coverage.total_sites)),
        ("detected_sites", Json::from(coverage.detected_sites)),
        (
            "escapes",
            Json::array(coverage.escapes.iter().map(site_to_json)),
        ),
    ])
}

fn model_coverage_from_json(json: &Json) -> Result<ModelCoverage, JsonError> {
    let escapes = field(json, "escapes")?
        .as_array()
        .ok_or_else(|| JsonError::decode("field \"escapes\" must be an array"))?
        .iter()
        .map(site_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ModelCoverage {
        model: fault_from_json(field(json, "model")?)?,
        total_sites: usize_field(json, "total_sites")?,
        detected_sites: usize_field(json, "detected_sites")?,
        escapes,
    })
}

/// Structural JSON encoding of a coverage report (used by the CLI's
/// `validate --json`).
#[must_use]
pub fn report_to_json(report: &CoverageReport) -> Json {
    Json::object([
        ("memory_size", Json::from(report.memory_size)),
        ("complete", Json::Bool(report.complete())),
        (
            "models",
            Json::array(report.models.iter().map(model_coverage_to_json)),
        ),
    ])
}

fn report_from_json(json: &Json) -> Result<CoverageReport, JsonError> {
    let models = field(json, "models")?
        .as_array()
        .ok_or_else(|| JsonError::decode("field \"models\" must be an array"))?
        .iter()
        .map(model_coverage_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CoverageReport {
        models,
        memory_size: usize_field(json, "memory_size")?,
    })
}

fn u64_field(json: &Json, key: &str) -> Result<u64, JsonError> {
    field(json, key)?
        .as_int()
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| JsonError::decode(format!("field {key:?} must be a non-negative integer")))
}

// ---- document codecs ---------------------------------------------------

impl ToJson for GenerateRequest {
    fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::Int(SCHEMA_VERSION)),
            (
                "faults",
                Json::array(self.faults.iter().map(|&m| fault_to_json(m))),
            ),
            (
                "start_policy",
                Json::from(match self.start_policy {
                    StartPolicy::Uniform => "uniform",
                    StartPolicy::Free => "free",
                }),
            ),
            ("solver", Json::Str(self.solver.key().to_owned())),
            ("tour_cap", Json::from(self.tour_cap)),
            ("verify_cells", Json::from(self.verify_cells)),
            ("compact", Json::Bool(self.compact)),
            ("check_redundancy", Json::Bool(self.check_redundancy)),
            ("max_combinations", Json::from(self.max_combinations)),
            ("verifier", Json::Str(self.verifier.key().to_owned())),
            ("search_threads", Json::from(self.search_threads)),
        ])
    }
}

impl FromJson for GenerateRequest {
    fn from_json(json: &Json) -> Result<GenerateRequest, JsonError> {
        check_schema(json)?;
        let defaults = GenerateRequest::default();
        // Everything but `faults` is optional and falls back to the
        // paper defaults, so terse hand-written requests stay valid.
        let start_policy = match json.get("start_policy") {
            None => defaults.start_policy,
            Some(v) => match v.as_str() {
                Some("uniform") => StartPolicy::Uniform,
                Some("free") => StartPolicy::Free,
                _ => {
                    return Err(JsonError::decode(
                        "field \"start_policy\" must be \"uniform\" or \"free\"",
                    ))
                }
            },
        };
        let solver = match json.get("solver") {
            None => defaults.solver,
            Some(v) => SolverChoice::from_key(
                v.as_str()
                    .ok_or_else(|| JsonError::decode("field \"solver\" must be a string"))?,
            ),
        };
        // `verifier` is optional and backward compatible: schema v1
        // documents written before the bit-parallel backend existed
        // simply omit it and get the auto choice.
        let verifier = match json.get("verifier") {
            None => defaults.verifier,
            Some(v) => v
                .as_str()
                .and_then(VerifierChoice::from_key)
                .ok_or_else(|| {
                    JsonError::decode(
                        "field \"verifier\" must be \"auto\", \"scalar\", \"bitsim\" or \"wide\"",
                    )
                })?,
        };
        let opt_usize = |key: &str, fallback: usize| -> Result<usize, JsonError> {
            match json.get(key) {
                None => Ok(fallback),
                Some(_) => usize_field(json, key),
            }
        };
        let opt_bool = |key: &str, fallback: bool| -> Result<bool, JsonError> {
            match json.get(key) {
                None => Ok(fallback),
                Some(_) => bool_field(json, key),
            }
        };
        // Route the caps through the builder so decoded requests share
        // its clamp invariants (a hand-written `"tour_cap": 0` behaves
        // like the builder path, not a zero-work run).
        Ok(GenerateRequest {
            faults: faults_from_json(field(json, "faults")?)?,
            start_policy,
            solver,
            verifier,
            verify_cells: opt_usize("verify_cells", defaults.verify_cells)?,
            compact: opt_bool("compact", defaults.compact)?,
            check_redundancy: opt_bool("check_redundancy", defaults.check_redundancy)?,
            search_threads: opt_usize("search_threads", defaults.search_threads)?,
            ..GenerateRequest::default()
        }
        .with_tour_cap(opt_usize("tour_cap", defaults.tour_cap)?)
        .with_max_combinations(opt_usize("max_combinations", defaults.max_combinations)?))
    }
}

impl ToJson for Diagnostics {
    fn to_json(&self) -> Json {
        Json::object([
            ("solver", Json::Str(self.solver.clone())),
            ("solver_iterations", Json::from(self.solver_iterations)),
            ("solver_restarts", Json::from(self.solver_restarts)),
            ("combinations", Json::from(self.combinations)),
            ("unique_tp_sets", Json::from(self.unique_tp_sets)),
            ("tours_tried", Json::from(self.tours_tried)),
            ("candidates", Json::from(self.candidates)),
            (
                "candidate_complexities",
                Json::array(self.candidate_complexities.iter().map(|&c| Json::from(c))),
            ),
            ("expand_micros", Json::from(self.expand_micros)),
            ("search_micros", Json::from(self.search_micros)),
            ("verify_micros", Json::from(self.verify_micros)),
            (
                "shard_micros",
                Json::array(self.shard_micros.iter().map(|&m| Json::from(m))),
            ),
            ("verifier", Json::Str(self.verifier.clone())),
            (
                "verify_shard_micros",
                Json::array(self.verify_shard_micros.iter().map(|&m| Json::from(m))),
            ),
            ("cache_hit", Json::Bool(self.cache_hit)),
        ])
    }
}

impl FromJson for Diagnostics {
    fn from_json(json: &Json) -> Result<Diagnostics, JsonError> {
        let candidate_complexities = field(json, "candidate_complexities")?
            .as_array()
            .ok_or_else(|| JsonError::decode("field \"candidate_complexities\" must be an array"))?
            .iter()
            .map(|v| {
                v.as_usize()
                    .ok_or_else(|| JsonError::decode("complexities must be non-negative integers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        // Optional and backward compatible: documents predating the
        // sharded search omit the per-shard timings.
        let shard_micros = match json.get("shard_micros") {
            None => Vec::new(),
            Some(value) => value
                .as_array()
                .ok_or_else(|| JsonError::decode("field \"shard_micros\" must be an array"))?
                .iter()
                .map(|v| {
                    v.as_int()
                        .and_then(|m| u64::try_from(m).ok())
                        .ok_or_else(|| {
                            JsonError::decode("shard timings must be non-negative integers")
                        })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        // Optional and backward compatible: documents predating the
        // sharded verifier (schema ≤ v2) omit the resolved backend name
        // and the per-shard verify timings.
        let verifier = match json.get("verifier") {
            None => String::new(),
            Some(_) => str_field(json, "verifier")?.to_owned(),
        };
        let verify_shard_micros = match json.get("verify_shard_micros") {
            None => Vec::new(),
            Some(value) => value
                .as_array()
                .ok_or_else(|| JsonError::decode("field \"verify_shard_micros\" must be an array"))?
                .iter()
                .map(|v| {
                    v.as_int()
                        .and_then(|m| u64::try_from(m).ok())
                        .ok_or_else(|| {
                            JsonError::decode("verify shard timings must be non-negative integers")
                        })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        // Optional and backward compatible: documents predating the
        // outcome cache omit the hit flag and decode as fresh computes.
        let cache_hit = match json.get("cache_hit") {
            None => false,
            Some(_) => bool_field(json, "cache_hit")?,
        };
        // Optional and backward compatible: documents predating the
        // solver diagnostics decode with an empty backend name and
        // zeroed local-search counters.
        let solver = match json.get("solver") {
            None => String::new(),
            Some(_) => str_field(json, "solver")?.to_owned(),
        };
        let opt_u64 = |key: &str| -> Result<u64, JsonError> {
            match json.get(key) {
                None => Ok(0),
                Some(_) => u64_field(json, key),
            }
        };
        Ok(Diagnostics {
            solver,
            solver_iterations: opt_u64("solver_iterations")?,
            solver_restarts: opt_u64("solver_restarts")?,
            combinations: usize_field(json, "combinations")?,
            unique_tp_sets: usize_field(json, "unique_tp_sets")?,
            tours_tried: usize_field(json, "tours_tried")?,
            candidates: usize_field(json, "candidates")?,
            candidate_complexities,
            expand_micros: u64_field(json, "expand_micros")?,
            search_micros: u64_field(json, "search_micros")?,
            verify_micros: u64_field(json, "verify_micros")?,
            shard_micros,
            verifier,
            verify_shard_micros,
            cache_hit,
        })
    }
}

impl GenerateOutcome {
    /// Compact single-object encoding for streaming progress frames:
    /// the headline results (test, complexity, verification verdicts)
    /// plus the full per-phase [`Diagnostics`] block, *without* the
    /// tour and the per-site coverage report that dominate the full
    /// [`ToJson`] document. This is the per-item payload of the
    /// daemon's `/v1/stream` endpoint — each frame must stay one short
    /// JSON line; clients wanting the complete outcome re-request it
    /// through `/v1/generate`, which the outcome cache answers without
    /// recomputing.
    #[must_use]
    pub fn to_summary_json(&self) -> Json {
        Json::object([
            ("test", march_to_json(&self.test)),
            ("complexity", Json::from(self.complexity())),
            ("verified", Json::Bool(self.verified)),
            (
                "non_redundant",
                match self.non_redundant {
                    Some(flag) => Json::Bool(flag),
                    None => Json::Null,
                },
            ),
            ("diagnostics", self.diagnostics.to_json()),
        ])
    }
}

impl ToJson for GenerateOutcome {
    fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::Int(SCHEMA_VERSION)),
            ("test", march_to_json(&self.test)),
            ("complexity", Json::from(self.complexity())),
            ("tour", Json::array(self.tour.iter().map(tp_to_json))),
            ("verified", Json::Bool(self.verified)),
            (
                "report",
                match &self.report {
                    Some(report) => report_to_json(report),
                    None => Json::Null,
                },
            ),
            (
                "non_redundant",
                match self.non_redundant {
                    Some(flag) => Json::Bool(flag),
                    None => Json::Null,
                },
            ),
            ("diagnostics", self.diagnostics.to_json()),
        ])
    }
}

impl FromJson for GenerateOutcome {
    fn from_json(json: &Json) -> Result<GenerateOutcome, JsonError> {
        check_schema(json)?;
        let tour = field(json, "tour")?
            .as_array()
            .ok_or_else(|| JsonError::decode("field \"tour\" must be an array"))?
            .iter()
            .map(tp_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let report = match json.get("report") {
            None | Some(Json::Null) => None,
            Some(value) => Some(report_from_json(value)?),
        };
        let non_redundant =
            match json.get("non_redundant") {
                None | Some(Json::Null) => None,
                Some(value) => Some(value.as_bool().ok_or_else(|| {
                    JsonError::decode("field \"non_redundant\" must be a boolean")
                })?),
            };
        Ok(GenerateOutcome {
            test: march_from_json(field(json, "test")?)?,
            tour,
            verified: bool_field(json, "verified")?,
            report,
            non_redundant,
            diagnostics: Diagnostics::from_json(field(json, "diagnostics")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::generate;

    #[test]
    fn request_roundtrip_is_lossless() {
        let request = GenerateRequest::from_fault_list("SAF, TF, CFid<u,1>")
            .unwrap()
            .with_solver(SolverChoice::HeldKarp)
            .with_start_policy(StartPolicy::Free)
            .with_tour_cap(7)
            .with_verify_cells(6)
            .with_compact(false)
            .with_check_redundancy(true)
            .with_max_combinations(99)
            .with_verifier(VerifierChoice::BitParallel)
            .with_search_threads(3);
        let text = request.to_json_string();
        let back = GenerateRequest::from_json_str(&text).unwrap();
        assert_eq!(back, request);
    }

    /// The `verifier` key is optional (pre-bitsim schema v1 documents
    /// omit it) and validated when present.
    #[test]
    fn verifier_key_is_optional_and_checked() {
        let back = GenerateRequest::from_json_str(r#"{"faults": ["SAF"]}"#).unwrap();
        assert_eq!(back.verifier, VerifierChoice::Auto);
        assert_eq!(back.search_threads, 0);
        let back =
            GenerateRequest::from_json_str(r#"{"faults": ["SAF"], "verifier": "scalar"}"#).unwrap();
        assert_eq!(back.verifier, VerifierChoice::Scalar);
        let back =
            GenerateRequest::from_json_str(r#"{"faults": ["SAF"], "verifier": "wide"}"#).unwrap();
        assert_eq!(back.verifier, VerifierChoice::Wide);
        assert!(
            GenerateRequest::from_json_str(r#"{"faults": ["SAF"], "verifier": "quantum"}"#)
                .is_err()
        );
    }

    /// Outcomes predating the sharded search decode with empty shard
    /// timings, and outcomes predating the outcome cache decode as
    /// fresh (non-hit) computes.
    #[test]
    fn absent_shard_micros_decodes_empty() {
        let doc = r#"{
            "combinations": 1, "unique_tp_sets": 1, "tours_tried": 1,
            "candidates": 1, "candidate_complexities": [4],
            "expand_micros": 1, "search_micros": 2, "verify_micros": 3
        }"#;
        let d = Diagnostics::from_json_str(doc).unwrap();
        assert!(d.shard_micros.is_empty());
        assert!(!d.cache_hit);
        assert_eq!(d.solver, "", "pre-solver-diagnostics documents decode");
        assert_eq!(d.solver_iterations, 0);
        assert_eq!(d.solver_restarts, 0);
        assert_eq!(d.verifier, "", "pre-sharded-verifier documents decode");
        assert!(d.verify_shard_micros.is_empty());
    }

    /// The sharded-verifier diagnostics survive a round trip, and the
    /// new keys decode what the encoder writes.
    #[test]
    fn verify_shard_diagnostics_roundtrip() {
        let d = Diagnostics {
            verifier: "widesim".to_owned(),
            verify_shard_micros: vec![11, 0, 42],
            shard_micros: vec![7],
            combinations: 1,
            unique_tp_sets: 1,
            tours_tried: 1,
            candidates: 1,
            candidate_complexities: vec![4],
            ..Diagnostics::default()
        };
        let back = Diagnostics::from_json_str(&d.to_json_string()).unwrap();
        assert_eq!(back, d);
        assert!(
            Diagnostics::from_json_str(
                r#"{
                    "combinations": 1, "unique_tp_sets": 1, "tours_tried": 1,
                    "candidates": 1, "candidate_complexities": [4],
                    "expand_micros": 1, "search_micros": 2, "verify_micros": 3,
                    "verify_shard_micros": "soon"
                }"#
            )
            .is_err(),
            "malformed verify_shard_micros is rejected, not defaulted"
        );
    }

    /// Regression (default consistency): spelling out the `verifier` and
    /// `search_threads` defaults must decode — and therefore normalize
    /// and cache-key — identically to omitting the keys entirely.
    #[test]
    fn explicit_defaults_equal_omitted_keys() {
        let terse = GenerateRequest::from_json_str(r#"{"faults": ["SAF"]}"#).unwrap();
        let spelled = GenerateRequest::from_json_str(
            r#"{"faults": ["SAF"], "verifier": "auto", "search_threads": 0,
                "solver": "auto", "start_policy": "uniform"}"#,
        )
        .unwrap();
        assert_eq!(terse, spelled);
        assert_eq!(terse.clone().normalize(), spelled.normalize());
        // And both re-encode to the same canonical document.
        assert_eq!(
            terse.to_json_string(),
            GenerateRequest::from_json_str(&terse.to_json_string())
                .unwrap()
                .to_json_string()
        );
    }

    #[test]
    fn terse_request_uses_defaults() {
        let back = GenerateRequest::from_json_str(r#"{"faults": ["SAF", "TF<u>"]}"#).unwrap();
        let expected = GenerateRequest::from_fault_list("SAF, TF<u>").unwrap();
        assert_eq!(back, expected);
    }

    /// Decoded requests share the builder's clamp invariants: a
    /// hand-written zero cap cannot produce a zero-work run.
    #[test]
    fn decoded_caps_are_clamped() {
        let back = GenerateRequest::from_json_str(
            r#"{"faults": ["SAF"], "tour_cap": 0, "max_combinations": 0}"#,
        )
        .unwrap();
        assert_eq!(back.tour_cap, 1);
        assert_eq!(back.max_combinations, 1);
        assert!(generate(&back).is_ok());
    }

    #[test]
    fn outcome_roundtrip_is_lossless() {
        let request = GenerateRequest::from_fault_list("SAF, CFin<u>")
            .unwrap()
            .with_check_redundancy(true);
        let outcome = generate(&request).unwrap();
        let text = outcome.to_json_pretty();
        let back = GenerateOutcome::from_json_str(&text).unwrap();
        assert_eq!(back, outcome);
    }

    /// The streaming summary carries the headline results and the full
    /// diagnostics block but drops the heavyweight tour/report members,
    /// and always renders as a single line.
    #[test]
    fn summary_json_is_compact_and_consistent() {
        let request = GenerateRequest::from_fault_list("SAF, TF").unwrap();
        let outcome = generate(&request).unwrap();
        let summary = outcome.to_summary_json();
        assert_eq!(
            summary.get("test").and_then(Json::as_str),
            Some(outcome.test.to_string().as_str())
        );
        assert_eq!(
            summary.get("complexity").and_then(Json::as_int),
            Some(outcome.complexity() as i64)
        );
        assert_eq!(
            summary.get("diagnostics"),
            Some(&outcome.diagnostics.to_json())
        );
        assert!(summary.get("tour").is_none(), "summaries omit the tour");
        assert!(summary.get("report").is_none(), "summaries omit the report");
        assert!(!summary.render().contains('\n'), "one frame, one line");
    }

    #[test]
    fn schema_version_is_checked() {
        let err = GenerateRequest::from_json_str(r#"{"schema": 99, "faults": []}"#)
            .expect_err("must reject");
        assert!(err.message.contains("schema"), "{err}");
    }

    #[test]
    fn bad_fields_are_rejected() {
        for doc in [
            r#"{"faults": ["NOPE"]}"#,
            r#"{"faults": "SAF"}"#,
            r#"{"faults": [], "solver": 3}"#,
            r#"{"faults": [], "start_policy": "sideways"}"#,
        ] {
            assert!(GenerateRequest::from_json_str(doc).is_err(), "{doc}");
        }
    }
}
