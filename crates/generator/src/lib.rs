//! # marchgen-generator
//!
//! The March test generation pipeline of Benso et al. (DATE 2002),
//! Section 4 — the paper's primary contribution:
//!
//! 1. the target fault list is expanded into coverage requirements
//!    (equivalence classes of Test Patterns, Section 5),
//! 2. for every class combination a **Test Pattern Graph** is built and
//!    minimum-weight constrained tours are found by exact ATSP
//!    (Section 4, f.4.1–f.4.4),
//! 3. each tour's **Global Test Sequence** is converted into a March test
//!    by the reordering / minimization / March-generation phases of
//!    §4.1–4.3 (implemented as the per-cell scheduler of [`schedule`];
//!    see `DESIGN.md` for the reconstruction of the paper's mangled
//!    rewrite tables),
//! 4. every candidate is validated by the fault simulator and checked for
//!    non-redundancy (Section 6); the shortest verified test wins.
//!
//! The transition-tree **exhaustive baseline** of the prior art the paper
//! improves on (\[2\]–\[4\]) lives in [`baseline`] for head-to-head
//! benchmarks.
//!
//! # Example
//!
//! ```
//! use marchgen_generator::Generator;
//!
//! // Table 3, row 1: stuck-at faults → a 4n test (MATS-equivalent).
//! let outcome = Generator::from_fault_list("SAF").unwrap().run().unwrap();
//! assert_eq!(outcome.test.complexity(), 4);
//! assert!(outcome.verified);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod gts;
mod outcome;
mod pipeline;
mod request;
pub mod schedule;
#[cfg(feature = "serde")]
pub mod serde;

pub use outcome::{Diagnostics, GenerateOutcome};
pub use pipeline::{
    generate, generate_with, generate_with_registry, verifier_for, ClassCombinations,
    GenerateError, Generator, Outcome,
};
pub use request::{GenerateRequest, VerifierChoice};
pub use schedule::{schedule_tour, ScheduleError};
