//! The prior-art baseline the paper improves on: **bounded exhaustive
//! March test search** in the style of van de Goor & Smit's transition
//! tree (\[2\]–\[4\] in the paper).
//!
//! The search enumerates March tests directly — per-cell operation by
//! operation, with element-boundary and direction decisions — pruning
//! read-inconsistent prefixes, and asks the fault simulator whether each
//! complete candidate covers the target list. As §2 of the paper notes,
//! the tree is unbounded, so a complexity bound must be imposed and the
//! node count explodes exponentially with it; the benchmark harness
//! measures exactly that blow-up against the ATSP pipeline.

use marchgen_faults::FaultModel;
use marchgen_march::{Direction, MarchElement, MarchOp, MarchTest};
use marchgen_model::Bit;
use marchgen_sim::coverage::covers_all;

/// Search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Prefixes expanded (transition-tree nodes).
    pub nodes: u64,
    /// Complete candidates handed to the fault simulator.
    pub simulated: u64,
}

/// Result of the exhaustive search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// The first minimal covering test found, if any exists within the
    /// complexity bound.
    pub test: Option<MarchTest>,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Exhaustively searches for a March test of complexity ≤ `max_ops`
/// covering `models` (verified on an `n = verify_cells` memory), visiting
/// at most `node_cap` tree nodes.
///
/// Tests are enumerated in increasing complexity, so the first hit is
/// minimal. Directions per element range over `⇑`, `⇓` and `⇕`.
#[must_use]
pub fn search(
    models: &[FaultModel],
    max_ops: usize,
    verify_cells: usize,
    node_cap: u64,
) -> SearchResult {
    let mut stats = SearchStats::default();
    for budget in 1..=max_ops {
        let mut state = Dfs {
            models,
            verify_cells,
            node_cap,
            stats: &mut stats,
            budget,
        };
        let mut elements: Vec<MarchElement> = Vec::new();
        if let Some(test) = state.extend(&mut elements, None, 0) {
            return SearchResult {
                test: Some(test),
                stats,
            };
        }
        if stats.nodes >= node_cap {
            break;
        }
    }
    SearchResult { test: None, stats }
}

struct Dfs<'a> {
    models: &'a [FaultModel],
    verify_cells: usize,
    node_cap: u64,
    stats: &'a mut SearchStats,
    budget: usize,
}

impl Dfs<'_> {
    /// Depth-first extension of the current partial test. `cur` is the
    /// per-cell value so far; `used` the operations spent.
    fn extend(
        &mut self,
        elements: &mut Vec<MarchElement>,
        cur: Option<Bit>,
        used: usize,
    ) -> Option<MarchTest> {
        if self.stats.nodes >= self.node_cap {
            return None;
        }
        self.stats.nodes += 1;
        if used == self.budget {
            let candidate = MarchTest::new(elements.clone());
            if candidate.check_consistency().is_err() {
                return None;
            }
            self.stats.simulated += 1;
            if covers_all(&candidate, self.models, self.verify_cells) {
                return Some(candidate);
            }
            return None;
        }
        // Candidate next operations: reads must match the running value;
        // writes are free. (The consistency pruning of the transition
        // tree.)
        let mut ops: Vec<MarchOp> = Vec::with_capacity(3);
        if let Some(v) = cur {
            ops.push(MarchOp::Read(v));
        }
        ops.push(MarchOp::Write(Bit::Zero));
        ops.push(MarchOp::Write(Bit::One));
        for op in ops {
            let next = match op {
                MarchOp::Write(d) => Some(d),
                _ => cur,
            };
            // Same element...
            if let Some(last) = elements.last_mut() {
                last.ops.push(op);
                if let Some(t) = self.extend(elements, next, used + 1) {
                    return Some(t);
                }
                elements.last_mut().expect("non-empty").ops.pop();
            }
            // ...or a new element, in each direction.
            for dir in [Direction::Up, Direction::Down, Direction::Any] {
                elements.push(MarchElement::new(dir, vec![op]));
                if let Some(t) = self.extend(elements, next, used + 1) {
                    return Some(t);
                }
                elements.pop();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::parse_fault_list;

    #[test]
    fn finds_the_minimal_saf_test() {
        let models = parse_fault_list("SAF").unwrap();
        let result = search(&models, 4, 3, 2_000_000);
        let test = result.test.expect("a 4n SAF test exists");
        assert_eq!(test.complexity(), 4);
        assert!(covers_all(&test, &models, 3));
        assert!(result.stats.nodes > 0);
    }

    #[test]
    fn respects_the_node_cap() {
        let models = parse_fault_list("SAF, TF").unwrap();
        let result = search(&models, 6, 3, 500);
        assert!(result.stats.nodes <= 501);
        assert_eq!(result.test, None);
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let models = parse_fault_list("SAF").unwrap();
        let result = search(&models, 3, 3, 1_000_000);
        assert_eq!(result.test, None, "SAF needs 4 operations");
    }

    #[test]
    fn node_counts_grow_exponentially() {
        // The §2 claim: the transition tree explodes with the bound.
        // Compare fully exhausted (solution-free) searches so early
        // termination cannot mask the growth.
        let models = parse_fault_list("SAF").unwrap();
        let shallow = search(&models, 2, 3, u64::MAX).stats.nodes;
        let deep = search(&models, 3, 3, u64::MAX).stats.nodes;
        assert!(deep > shallow * 4, "shallow={shallow} deep={deep}");
    }
}
