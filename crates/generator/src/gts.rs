//! The **Global Test Sequence**: the literal two-cell operation string a
//! TP tour induces (paper Section 4) — initialization writes, each TP's
//! excitation and observation, and the bridging writes of every arc.
//!
//! The GTS is the intermediate artifact of the paper's worked example:
//!
//! ```text
//! GTS = w0i, w0j, w1i, r0j, w1j, r1i, w0i, w0j, w1j, r0i, w1i, r1j
//! ```
//!
//! The March constructor ([`crate::schedule`]) consumes the *tour*, not
//! this string, but the GTS is exposed for inspection, for the worked
//! example reproduction and for the op-count accounting (f.4.3).

use marchgen_faults::{Observation, TestPattern};
use marchgen_model::{Bit, Cell, MemOp, PairState};
use std::fmt;

/// One GTS operation: a two-cell memory operation, optionally a
/// *read-and-verify* with its expected value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtsOp {
    /// The memory operation.
    pub op: MemOp,
    /// Expected value for read-and-verify operations.
    pub verify: Option<Bit>,
    /// Which tour TP produced the op (`None` for bridge/init writes).
    pub tp_index: Option<usize>,
}

impl fmt::Display for GtsOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.op, self.verify) {
            (MemOp::Read(c), Some(d)) => write!(f, "r{d}{c}"),
            (op, _) => write!(f, "{op}"),
        }
    }
}

/// A Global Test Sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Gts {
    ops: Vec<GtsOp>,
}

impl Gts {
    /// Builds the GTS of a TP tour: power-up initialization of the first
    /// TP, then for each TP the bridge writes from the previous
    /// observation state, the excitation and the observation.
    #[must_use]
    pub fn from_tour(tour: &[TestPattern]) -> Gts {
        let mut ops = Vec::new();
        let mut state = PairState::UNKNOWN;
        for (k, tp) in tour.iter().enumerate() {
            for w in state.writes_to(&tp.init) {
                ops.push(GtsOp {
                    op: w,
                    verify: None,
                    tp_index: None,
                });
                if let MemOp::Write(c, d) = w {
                    state = state.with(c, d.into());
                }
            }
            if let Some(setup) = tp.setup {
                ops.push(GtsOp {
                    op: setup,
                    verify: None,
                    tp_index: Some(k),
                });
                if let MemOp::Write(c, d) = setup {
                    state = state.with(c, d.into());
                }
            }
            ops.push(GtsOp {
                op: tp.excite,
                verify: match tp.observe {
                    Observation::SelfRead { expected } => Some(expected),
                    Observation::Read { .. } => None,
                },
                tp_index: Some(k),
            });
            if let MemOp::Write(c, d) = tp.excite {
                state = state.with(c, d.into());
            }
            if let Observation::Read { cell, expected } = tp.observe {
                ops.push(GtsOp {
                    op: MemOp::read(cell),
                    verify: Some(expected),
                    tp_index: Some(k),
                });
            }
        }
        Gts { ops }
    }

    /// The operations in order.
    #[must_use]
    pub fn ops(&self) -> &[GtsOp] {
        &self.ops
    }

    /// Number of operations (the f.4.3 objective realized).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operations addressing `cell`.
    #[must_use]
    pub fn ops_on(&self, cell: Cell) -> usize {
        self.ops
            .iter()
            .filter(|o| o.op.cell() == Some(cell))
            .count()
    }
}

impl fmt::Display for Gts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, op) in self.ops.iter().enumerate() {
            if k > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::{parse_fault_list, requirements_for};

    fn section4_tps() -> Vec<TestPattern> {
        let mut tps = Vec::new();
        for token in ["CFid<u,0>", "CFid<u,1>"] {
            let models = parse_fault_list(token).unwrap();
            for r in requirements_for(&models) {
                tps.push(r.alternatives[0]);
            }
        }
        tps // [TP1, TP2, TP3, TP4] in paper numbering
    }

    /// The paper's §4 GTS for the tour TP3 → TP2 → TP4 → TP1:
    /// `w0i, w0j, w1i, r0j, w1j, r1i, w0i, w0j, w1j, r0i, w1i, r1j`.
    #[test]
    fn section4_worked_example_gts() {
        let tps = section4_tps();
        let tour = vec![tps[2], tps[1], tps[3], tps[0]];
        let gts = Gts::from_tour(&tour);
        assert_eq!(
            gts.to_string(),
            "w0i, w0j, w1i, r0j, w1j, r1i, w0i, w0j, w1j, r0i, w1i, r1j"
        );
        assert_eq!(gts.len(), 12);
    }

    #[test]
    fn zero_weight_arcs_add_no_bridges() {
        let tps = section4_tps();
        // TP4 → TP1 has weight 0: no writes between r0i and w1i.
        let tour = vec![tps[3], tps[0]];
        let gts = Gts::from_tour(&tour);
        // init (w0i, w0j) + w1j + r0i + w1i + r1j
        assert_eq!(gts.len(), 6);
    }

    #[test]
    fn self_read_tps_merge_excite_and_observe() {
        let models = parse_fault_list("ADF<r>").unwrap();
        let tp = requirements_for(&models)[0].alternatives[0];
        let gts = Gts::from_tour(&[tp]);
        // init both cells + one read-and-verify
        assert_eq!(gts.len(), 3);
        let last = gts.ops().last().unwrap();
        assert!(last.verify.is_some());
    }

    #[test]
    fn op_distribution_by_cell() {
        let tps = section4_tps();
        let tour = vec![tps[2], tps[1], tps[3], tps[0]];
        let gts = Gts::from_tour(&tour);
        assert_eq!(gts.ops_on(Cell::I) + gts.ops_on(Cell::J), 12);
    }
}
