//! [`GenerateOutcome`] — the typed, serializable result of one
//! generation run, with structured per-phase [`Diagnostics`].

use marchgen_faults::TestPattern;
use marchgen_march::MarchTest;
use marchgen_sim::coverage::CoverageReport;

/// The result of running a [`GenerateRequest`](crate::GenerateRequest).
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateOutcome {
    /// The best March test found.
    pub test: MarchTest,
    /// The Test Pattern tour it was built from.
    pub tour: Vec<TestPattern>,
    /// `true` when the verifier confirmed full coverage of every
    /// requested model (always checked unless `verify_cells` is 0).
    pub verified: bool,
    /// Verifier coverage report (present when verification ran).
    pub report: Option<CoverageReport>,
    /// Operational non-redundancy (present when requested): no single
    /// operation can be deleted without losing coverage.
    pub non_redundant: Option<bool>,
    /// Structured per-phase statistics of the run.
    pub diagnostics: Diagnostics,
}

impl GenerateOutcome {
    /// The generated test's complexity (operations per cell).
    #[must_use]
    pub fn complexity(&self) -> usize {
        self.test.complexity()
    }
}

/// Per-phase statistics of a generation run: how much of the search
/// space was examined and where the time went.
///
/// Timings are integral microseconds so outcomes serialize losslessly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics {
    /// The ATSP solver backend the run resolved its
    /// [`SolverChoice`](marchgen_atsp::SolverChoice) to (the registry
    /// name: `"auto"`, `"held-karp"`, `"local-search"`, ...). Empty on
    /// documents predating the solver diagnostics.
    pub solver: String,
    /// Improving local-search moves applied across all TP-set solves
    /// (zero when only exact backends ran).
    pub solver_iterations: u64,
    /// Local-search perturbation restarts across all TP-set solves
    /// (zero when only exact backends ran).
    pub solver_restarts: u64,
    /// Equivalence-class combinations examined (the paper's `E`).
    pub combinations: usize,
    /// Distinct post-subsumption TP sets among them (the memoized
    /// ATSP instances actually solved).
    pub unique_tp_sets: usize,
    /// Optimal tours returned by the solver across all combinations.
    pub tours_tried: usize,
    /// Distinct March candidates successfully scheduled from tours.
    pub candidates: usize,
    /// Complexities of the deduplicated candidates, ascending — the
    /// shape of the search frontier the verifier walked.
    pub candidate_complexities: Vec<usize>,
    /// Time expanding the fault list into coverage requirements, µs.
    pub expand_micros: u64,
    /// Time enumerating combinations, solving tours and scheduling
    /// March candidates, µs.
    pub search_micros: u64,
    /// Time spent in the verifier (coverage, compaction, redundancy), µs.
    pub verify_micros: u64,
    /// Per-shard solve times, µs: one entry per unique TP set (the unit
    /// of parallel work the sharded search distributes across its
    /// workers), in deterministic first-seen order. The *length* is
    /// independent of the thread count; only the values vary run to run.
    pub shard_micros: Vec<u64>,
    /// The verification backend the run resolved its
    /// [`VerifierChoice`](crate::VerifierChoice) to (the trait name:
    /// `"simulator"`, `"bitsim"`, `"widesim"`). Empty when verification
    /// was disabled (`verify_cells == 0`) or on documents predating the
    /// verifier diagnostics.
    pub verifier: String,
    /// Per-shard verify times, µs: one entry per verification shard of
    /// each coverage sweep the pipeline ran (candidate screening plus
    /// the final or fallback re-verify), in deterministic shard-plan
    /// order. The shard plan depends only on the fault list and memory
    /// size, so the *length* is independent of the thread count; only
    /// the values vary run to run. Shards run concurrently, so the sum
    /// can exceed the wall-clock `verify_micros`. Empty on documents
    /// predating the sharded verifier.
    pub verify_shard_micros: Vec<u64>,
    /// `true` when this outcome was replayed from a content-addressed
    /// cache (`marchgen-cache`) rather than computed by the pipeline.
    /// Freshly computed outcomes always carry `false`; the cache
    /// re-stamps the flag on every hit. Excluded (with the timings) from
    /// byte-comparability claims: two outcomes for the same request are
    /// equal modulo `Diagnostics`.
    pub cache_hit: bool,
}

impl Diagnostics {
    /// Total accounted time across all phases, µs.
    #[must_use]
    pub fn total_micros(&self) -> u64 {
        self.expand_micros + self.search_micros + self.verify_micros
    }
}
