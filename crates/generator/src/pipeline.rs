//! The end-to-end generation pipeline (paper Sections 4–6): fault list →
//! requirements → class combinations → TPG/ATSP tours → March
//! construction → simulator verification → minimal verified test.

use crate::gts::Gts;
use crate::schedule::schedule_tour;
use marchgen_faults::{
    dedupe_subsumed, parse_fault_list, requirements_for, CoverageRequirement, FaultModel,
    ParseFaultError, TestPattern,
};
use marchgen_march::MarchTest;
use marchgen_sim::coverage::{coverage_report, CoverageReport};
use marchgen_sim::redundancy;
use marchgen_tpg::{plan_tour, StartPolicy, Tpg};
use std::collections::BTreeMap;
use std::fmt;

/// Why generation failed outright (verification shortfalls are reported
/// in [`Outcome::verified`] instead, with the best candidate attached).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// The fault list expanded to no coverage requirement.
    EmptyFaultList,
    /// No tour could be scheduled into a consistent March test.
    NoCandidate,
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::EmptyFaultList => f.write_str("the fault list is empty"),
            GenerateError::NoCandidate => {
                f.write_str("no tour could be scheduled into a march test")
            }
        }
    }
}

impl std::error::Error for GenerateError {}

/// The result of a generator run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The best March test found.
    pub test: MarchTest,
    /// The tour it was built from.
    pub tour: Vec<TestPattern>,
    /// The tour's Global Test Sequence (paper §4 intermediate).
    pub gts: Gts,
    /// `true` when the fault simulator confirmed full coverage of every
    /// requested model (always checked unless `verify_cells` is 0).
    pub verified: bool,
    /// Simulator coverage report (present when verification ran).
    pub report: Option<CoverageReport>,
    /// Operational non-redundancy (present when requested): no single
    /// operation can be deleted without losing coverage.
    pub non_redundant: Option<bool>,
    /// Distinct March candidates constructed across tours/combinations.
    pub candidates: usize,
    /// Equivalence-class combinations examined (the paper's `E`).
    pub combinations: usize,
}

/// The configurable generation pipeline.
///
/// ```
/// use marchgen_generator::Generator;
///
/// let outcome = Generator::from_fault_list("SAF, TF").unwrap().run().unwrap();
/// assert_eq!(outcome.test.complexity(), 5); // Table 3 row 2: MATS+ class
/// ```
#[derive(Debug, Clone)]
pub struct Generator {
    models: Vec<FaultModel>,
    start_policy: StartPolicy,
    tour_cap: usize,
    verify_cells: usize,
    compact: bool,
    check_redundancy: bool,
    max_combinations: usize,
}

impl Generator {
    /// A generator for the given fault models with the paper's default
    /// configuration (uniform-start constraint f.4.4, all-optimal-tour
    /// enumeration, simulator verification on a 4-cell memory,
    /// minimization to non-redundancy).
    #[must_use]
    pub fn new(models: Vec<FaultModel>) -> Generator {
        Generator {
            models,
            start_policy: StartPolicy::Uniform,
            tour_cap: 64,
            verify_cells: 4,
            compact: true,
            check_redundancy: false,
            max_combinations: 4096,
        }
    }

    /// Parses a textual fault list (see
    /// [`parse_fault_list`](marchgen_faults::parse_fault_list)).
    ///
    /// # Errors
    ///
    /// Returns the parse error of the first invalid token.
    pub fn from_fault_list(list: &str) -> Result<Generator, ParseFaultError> {
        Ok(Generator::new(parse_fault_list(list)?))
    }

    /// Overrides the f.4.4 start policy (ablation hook).
    #[must_use]
    pub fn start_policy(mut self, policy: StartPolicy) -> Generator {
        self.start_policy = policy;
        self
    }

    /// Caps the number of optimal tours tried per combination.
    #[must_use]
    pub fn tour_cap(mut self, cap: usize) -> Generator {
        self.tour_cap = cap.max(1);
        self
    }

    /// Memory size for simulator verification; `0` disables verification
    /// (and compaction).
    #[must_use]
    pub fn verify_cells(mut self, n: usize) -> Generator {
        self.verify_cells = n;
        self
    }

    /// Enables/disables the simulator-guided minimization pass (Table 2's
    /// role; on by default).
    #[must_use]
    pub fn compact(mut self, on: bool) -> Generator {
        self.compact = on;
        self
    }

    /// Also run the operation-deletion non-redundancy check on the final
    /// test (off by default; it is implied `true` when compaction ran).
    #[must_use]
    pub fn check_redundancy(mut self, on: bool) -> Generator {
        self.check_redundancy = on;
        self
    }

    /// The fault models targeted.
    #[must_use]
    pub fn models(&self) -> &[FaultModel] {
        &self.models
    }

    /// Runs the pipeline.
    ///
    /// # Errors
    ///
    /// [`GenerateError::EmptyFaultList`] for an empty expansion,
    /// [`GenerateError::NoCandidate`] when no tour schedules (does not
    /// happen for the built-in catalog).
    pub fn run(&self) -> Result<Outcome, GenerateError> {
        let requirements = requirements_for(&self.models);
        if requirements.is_empty() {
            return Err(GenerateError::EmptyFaultList);
        }

        // Enumerate class combinations (paper §5: E = Π |Ci|), memoizing
        // on the post-subsumption TP set: choices that collapse to the
        // same set solve the same ATSP.
        let mut seen_sets: BTreeMap<Vec<TestPattern>, ()> = BTreeMap::new();
        let mut candidates: Vec<(MarchTest, Vec<TestPattern>)> = Vec::new();
        let mut combinations = 0usize;
        let mut constructed = 0usize;
        for combo in ClassCombinations::new(&requirements).take(self.max_combinations) {
            combinations += 1;
            let mut tps = dedupe_subsumed(&combo);
            tps.sort();
            if seen_sets.insert(tps.clone(), ()).is_some() {
                continue;
            }
            let tpg = Tpg::new(tps.clone());
            for plan in plan_tour(&tpg, self.start_policy, self.tour_cap) {
                let tour: Vec<TestPattern> =
                    plan.order.iter().map(|&k| tps[k]).collect();
                if let Ok(test) = schedule_tour(&tour) {
                    if test.check_consistency().is_ok() {
                        constructed += 1;
                        candidates.push((test, tour));
                    }
                }
            }
        }
        if candidates.is_empty() {
            return Err(GenerateError::NoCandidate);
        }

        // Shortest first; deduplicate identical tests.
        candidates.sort_by_key(|(t, _)| (t.complexity(), t.element_count()));
        candidates.dedup_by(|a, b| a.0 == b.0);

        if self.verify_cells == 0 {
            let (test, tour) = candidates.swap_remove(0);
            let gts = Gts::from_tour(&tour);
            return Ok(Outcome {
                test,
                tour,
                gts,
                verified: false,
                report: None,
                non_redundant: None,
                candidates: constructed,
                combinations,
            });
        }

        let n = self.verify_cells;
        let mut fallback: Option<(MarchTest, Vec<TestPattern>)> = None;
        for (test, tour) in &candidates {
            let report = coverage_report(test, &self.models, n);
            if report.complete() {
                let final_test = if self.compact {
                    redundancy::compact(test, &self.models, n)
                } else {
                    test.clone()
                };
                let report = coverage_report(&final_test, &self.models, n);
                let non_redundant = if self.compact || self.check_redundancy {
                    Some(redundancy::is_non_redundant(&final_test, &self.models, n))
                } else {
                    None
                };
                return Ok(Outcome {
                    test: final_test,
                    tour: tour.clone(),
                    gts: Gts::from_tour(tour),
                    verified: true,
                    report: Some(report),
                    non_redundant,
                    candidates: constructed,
                    combinations,
                });
            }
            if fallback.is_none() {
                fallback = Some((test.clone(), tour.clone()));
            }
        }

        // No candidate verified — report the best one honestly.
        let (test, tour) = fallback.expect("candidates non-empty");
        let report = coverage_report(&test, &self.models, n);
        Ok(Outcome {
            test,
            tour: tour.clone(),
            gts: Gts::from_tour(&tour),
            verified: false,
            report: Some(report),
            non_redundant: None,
            candidates: constructed,
            combinations,
        })
    }
}

/// Iterator over the cartesian product of requirement alternatives.
struct ClassCombinations<'a> {
    requirements: &'a [CoverageRequirement],
    indices: Vec<usize>,
    done: bool,
}

impl<'a> ClassCombinations<'a> {
    fn new(requirements: &'a [CoverageRequirement]) -> ClassCombinations<'a> {
        ClassCombinations {
            requirements,
            indices: vec![0; requirements.len()],
            done: requirements.is_empty(),
        }
    }
}

impl Iterator for ClassCombinations<'_> {
    type Item = Vec<TestPattern>;

    fn next(&mut self) -> Option<Vec<TestPattern>> {
        if self.done {
            return None;
        }
        let combo: Vec<TestPattern> = self
            .requirements
            .iter()
            .zip(&self.indices)
            .map(|(r, &k)| r.alternatives[k])
            .collect();
        // Advance the mixed-radix counter.
        let mut pos = self.indices.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.indices[pos] += 1;
            if self.indices[pos] < self.requirements[pos].alternatives.len() {
                break;
            }
            self.indices[pos] = 0;
        }
        Some(combo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_count_is_product_of_cardinalities() {
        let reqs = requirements_for(&parse_fault_list("CFin<u>").unwrap());
        // two classes of two alternatives → E = 4 (paper §5)
        let combos: Vec<_> = ClassCombinations::new(&reqs).collect();
        assert_eq!(combos.len(), 4);
    }

    #[test]
    fn empty_fault_list_rejected() {
        let err = Generator::new(Vec::new()).run().unwrap_err();
        assert_eq!(err, GenerateError::EmptyFaultList);
    }

    /// Table 3 row 1: SAF → 4n, verified and non-redundant.
    #[test]
    fn table3_row1_saf() {
        let out = Generator::from_fault_list("SAF").unwrap().run().unwrap();
        assert!(out.verified, "coverage report: {:?}", out.report);
        assert_eq!(out.test.complexity(), 4, "{}", out.test);
        assert_eq!(out.non_redundant, Some(true));
    }

    /// Table 3 row 2: SAF + TF → 5n (MATS+ class).
    #[test]
    fn table3_row2_saf_tf() {
        let out = Generator::from_fault_list("SAF, TF").unwrap().run().unwrap();
        assert!(out.verified);
        assert_eq!(out.test.complexity(), 5, "{}", out.test);
    }

    /// The §4 example fault list: 8n.
    #[test]
    fn section4_example_8n() {
        let out = Generator::from_fault_list("CFid<u,0>, CFid<u,1>")
            .unwrap()
            .run()
            .unwrap();
        assert!(out.verified);
        assert_eq!(out.test.complexity(), 8, "{}", out.test);
    }

    /// Table 3 row 6: {CFid<↑,1>, CFid<↓,1>} → 5n.
    #[test]
    fn table3_row6_cfid_pair() {
        let out = Generator::from_fault_list("CFid<u,1>, CFid<d,1>")
            .unwrap()
            .run()
            .unwrap();
        assert!(out.verified);
        assert_eq!(out.test.complexity(), 5, "{}", out.test);
    }

    #[test]
    fn unverified_mode_still_returns_a_candidate() {
        let out = Generator::from_fault_list("SAF")
            .unwrap()
            .verify_cells(0)
            .run()
            .unwrap();
        assert!(!out.verified);
        assert!(out.report.is_none());
        assert_eq!(out.test.complexity(), 4);
    }
}
