//! The end-to-end generation pipeline (paper Sections 4–6): fault list →
//! requirements → class combinations → TPG/ATSP tours → March
//! construction → simulator verification → minimal verified test.
//!
//! The engine is the free function [`generate`] (and its
//! dependency-injected variants [`generate_with_registry`] /
//! [`generate_with`]), which maps a typed [`GenerateRequest`] to a typed
//! [`GenerateOutcome`]. The historical [`Generator`] builder survives as
//! a thin compatibility shim over the request layer.

use crate::gts::Gts;
use crate::outcome::{Diagnostics, GenerateOutcome};
use crate::request::{GenerateRequest, VerifierChoice};
use crate::schedule::schedule_tour;
use marchgen_atsp::{AtspSolver, SolveStats, SolverChoice, SolverRegistry};
use marchgen_faults::{
    dedupe_subsumed, parse_fault_list, requirements_for, CoverageRequirement, FaultModel,
    ParseFaultError, TestPattern,
};
use marchgen_march::MarchTest;
use marchgen_sim::coverage::CoverageReport;
use marchgen_sim::{widesim, BitSimVerifier, SimVerifier, Verifier, WideSimVerifier};
use marchgen_tpg::{plan_tour_with_stats, StartPolicy, Tpg};
use std::collections::BTreeMap;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Why generation failed outright (verification shortfalls are reported
/// in [`GenerateOutcome::verified`] instead, with the best candidate
/// attached).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// The fault list expanded to no coverage requirement.
    EmptyFaultList,
    /// No tour could be scheduled into a consistent March test.
    NoCandidate,
    /// The request named an ATSP solver the registry does not know.
    UnknownSolver(String),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::EmptyFaultList => f.write_str("the fault list is empty"),
            GenerateError::NoCandidate => {
                f.write_str("no tour could be scheduled into a march test")
            }
            GenerateError::UnknownSolver(name) => {
                write!(f, "no ATSP solver registered under {name:?}")
            }
        }
    }
}

impl std::error::Error for GenerateError {}

/// Runs a request with the default solver registry and the built-in
/// simulator verifier — the standard entry point.
///
/// # Errors
///
/// [`GenerateError::EmptyFaultList`] for an empty expansion,
/// [`GenerateError::NoCandidate`] when no tour schedules (does not
/// happen for the built-in catalog), [`GenerateError::UnknownSolver`]
/// when the request names an unregistered solver.
pub fn generate(request: &GenerateRequest) -> Result<GenerateOutcome, GenerateError> {
    generate_with_registry(request, &SolverRegistry::default())
}

/// Runs a request resolving its [`SolverChoice`] against a caller
/// registry (custom strategies included), verifying with the built-in
/// simulator.
///
/// # Errors
///
/// As [`generate`].
pub fn generate_with_registry(
    request: &GenerateRequest,
    registry: &SolverRegistry,
) -> Result<GenerateOutcome, GenerateError> {
    let solver = registry
        .resolve(&request.solver)
        .map_err(|e| GenerateError::UnknownSolver(e.name))?;
    let verifier = verifier_for(request);
    generate_with(request, solver.as_ref(), verifier.as_deref())
}

/// Resolves the request's [`VerifierChoice`] into a concrete backend
/// (`None` when `verify_cells == 0` disables verification).
///
/// `Auto` picks by scenario lane count: the wide-lane simulator when
/// any model of the fault list sweeps more than 64 scenario lanes (one
/// full bitsim batch) — pair faults on realistic memories, but also
/// wide single-cell sweeps — and the 64-lane bit-parallel simulator
/// otherwise. Every model of the extended taxonomy, dynamic and linked
/// classes included, is supported by the packed rule-table
/// interpreters, so `Auto` never selects the scalar backend.
#[must_use]
pub fn verifier_for(request: &GenerateRequest) -> Option<Box<dyn Verifier>> {
    if request.verify_cells == 0 {
        return None;
    }
    Some(match request.verifier {
        VerifierChoice::Scalar => Box::new(SimVerifier::new(request.verify_cells)),
        VerifierChoice::BitParallel => Box::new(BitSimVerifier::new(request.verify_cells)),
        VerifierChoice::Wide => Box::new(WideSimVerifier::new(request.verify_cells)),
        VerifierChoice::Auto => {
            if widesim::max_model_lanes(&request.faults, request.verify_cells) > 64 {
                Box::new(WideSimVerifier::new(request.verify_cells))
            } else {
                Box::new(BitSimVerifier::new(request.verify_cells))
            }
        }
    })
}

/// The fully dependency-injected engine: explicit solver strategy and
/// optional verification backend. `None` for `verifier` skips
/// verification, compaction and the redundancy check, exactly like
/// `verify_cells == 0`.
///
/// # Errors
///
/// [`GenerateError::EmptyFaultList`] / [`GenerateError::NoCandidate`];
/// this variant cannot fail on solver resolution.
pub fn generate_with(
    request: &GenerateRequest,
    solver: &dyn AtspSolver,
    verifier: Option<&dyn Verifier>,
) -> Result<GenerateOutcome, GenerateError> {
    let mut diagnostics = Diagnostics {
        solver: solver.name().to_owned(),
        ..Diagnostics::default()
    };

    let expand_started = Instant::now();
    let requirements = requirements_for(&request.faults);
    diagnostics.expand_micros = as_micros(expand_started);
    if requirements.is_empty() {
        return Err(GenerateError::EmptyFaultList);
    }

    // Enumerate class combinations (paper §5: E = Π |Ci|), memoizing on
    // the post-subsumption TP set: choices that collapse to the same set
    // solve the same ATSP. The search is sharded: the mixed-radix
    // combination space is range-partitioned across workers for
    // enumeration, and the unique TP sets are then solved from a shared
    // work queue. Both passes collect results by index, so the outcome is
    // identical for every thread count (including 1, which runs inline).
    let search_started = Instant::now();
    let workers = search_workers(request);
    let limit = ClassCombinations::total(&requirements).min(request.max_combinations);
    diagnostics.combinations = limit;

    // Pass 1: enumerate combinations and collapse them to their
    // post-subsumption TP sets, keeping first-seen order.
    let tp_sets: Vec<Vec<TestPattern>> = {
        let shards = combination_shards(limit, workers);
        let per_shard = run_indexed(shards.len(), workers, |s| {
            let (lo, hi) = shards[s];
            ClassCombinations::range(&requirements, lo, hi)
                .map(|combo| {
                    let mut tps = dedupe_subsumed(&combo);
                    tps.sort();
                    tps
                })
                .collect::<Vec<_>>()
        });
        let mut seen: BTreeMap<Vec<TestPattern>, ()> = BTreeMap::new();
        let mut unique = Vec::new();
        for tps in per_shard.into_iter().flatten() {
            if seen.insert(tps.clone(), ()).is_none() {
                unique.push(tps);
            }
        }
        unique
    };
    diagnostics.unique_tp_sets = tp_sets.len();

    // Pass 2: plan tours and schedule March candidates per unique TP
    // set, fanned out across the workers.
    let solved = run_indexed(tp_sets.len(), workers, |k| {
        let shard_started = Instant::now();
        let tps = &tp_sets[k];
        let tpg = Tpg::new(tps.clone());
        let mut tours_tried = 0usize;
        let mut candidates: Vec<(MarchTest, Vec<TestPattern>)> = Vec::new();
        let (plans, solve_stats) =
            plan_tour_with_stats(&tpg, request.start_policy, request.tour_cap, solver);
        for plan in plans {
            tours_tried += 1;
            let tour: Vec<TestPattern> = plan.order.iter().map(|&i| tps[i]).collect();
            if let Ok(test) = schedule_tour(&tour) {
                if test.check_consistency().is_ok() {
                    candidates.push((test, tour));
                }
            }
        }
        (
            candidates,
            tours_tried,
            solve_stats,
            as_micros(shard_started),
        )
    });
    let mut candidates: Vec<(MarchTest, Vec<TestPattern>)> = Vec::new();
    let mut solver_stats = SolveStats::default();
    for (shard_candidates, tours_tried, solve_stats, micros) in solved {
        diagnostics.tours_tried += tours_tried;
        diagnostics.candidates += shard_candidates.len();
        diagnostics.shard_micros.push(micros);
        solver_stats.absorb(solve_stats);
        candidates.extend(shard_candidates);
    }
    diagnostics.solver_iterations = solver_stats.iterations;
    diagnostics.solver_restarts = solver_stats.restarts;
    if candidates.is_empty() {
        diagnostics.search_micros = as_micros(search_started);
        return Err(GenerateError::NoCandidate);
    }

    // Shortest first; deduplicate identical tests.
    candidates.sort_by_key(|(t, _)| (t.complexity(), t.element_count()));
    candidates.dedup_by(|a, b| a.0 == b.0);
    diagnostics.candidate_complexities = candidates.iter().map(|(t, _)| t.complexity()).collect();
    diagnostics.search_micros = as_micros(search_started);

    let Some(verifier) = verifier else {
        let (test, tour) = candidates.swap_remove(0);
        return Ok(GenerateOutcome {
            test,
            tour,
            verified: false,
            report: None,
            non_redundant: None,
            diagnostics,
        });
    };

    // Every coverage sweep fans out through `verify_sharded`, reusing
    // the search worker budget; per-shard timings accumulate in
    // `verify_shard_micros` (shard counts are data-defined, so the
    // vector's length is thread-count-invariant).
    diagnostics.verifier = verifier.name().to_owned();
    let verify_started = Instant::now();
    let mut fallback: Option<(MarchTest, Vec<TestPattern>)> = None;
    for (test, tour) in &candidates {
        let run = verifier.verify_sharded(test, &request.faults, workers);
        diagnostics.verify_shard_micros.extend(run.shard_micros);
        if run.report.complete() {
            let final_test = if request.compact {
                verifier.compact(test, &request.faults).into_owned()
            } else {
                test.clone()
            };
            let run = verifier.verify_sharded(&final_test, &request.faults, workers);
            diagnostics.verify_shard_micros.extend(run.shard_micros);
            let non_redundant = if request.compact || request.check_redundancy {
                Some(verifier.is_non_redundant(&final_test, &request.faults))
            } else {
                None
            };
            diagnostics.verify_micros = as_micros(verify_started);
            return Ok(GenerateOutcome {
                test: final_test,
                tour: tour.clone(),
                verified: true,
                report: Some(run.report),
                non_redundant,
                diagnostics,
            });
        }
        if fallback.is_none() {
            fallback = Some((test.clone(), tour.clone()));
        }
    }

    // No candidate verified — report the best one honestly.
    let (test, tour) = fallback.expect("candidates non-empty");
    let run = verifier.verify_sharded(&test, &request.faults, workers);
    diagnostics.verify_shard_micros.extend(run.shard_micros);
    diagnostics.verify_micros = as_micros(verify_started);
    Ok(GenerateOutcome {
        test,
        tour,
        verified: false,
        report: Some(run.report),
        non_redundant: None,
        diagnostics,
    })
}

fn as_micros(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Effective worker count for the in-request sharded search.
fn search_workers(request: &GenerateRequest) -> usize {
    match request.search_threads {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        t => t,
    }
}

/// Contiguous `[lo, hi)` index ranges covering `0..limit`, one per
/// worker (empty trailing shards are dropped).
fn combination_shards(limit: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.clamp(1, limit.max(1));
    let chunk = limit.div_ceil(workers).max(1);
    (0..workers)
        .map(|w| ((w * chunk).min(limit), ((w + 1) * chunk).min(limit)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Runs `f(0..jobs)` across up to `workers` scoped threads pulling from
/// a shared queue (the same machinery as the batch service layer),
/// collecting results **by index** — so the output is identical to the
/// inline `workers <= 1` path regardless of scheduling.
fn run_indexed<T: Send>(jobs: usize, workers: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(jobs, || None);
    let slots = Mutex::new(slots);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= jobs {
                    break;
                }
                let out = f(k);
                slots.lock().expect("shard slots lock")[k] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("shard slots lock")
        .into_iter()
        .map(|slot| slot.expect("every shard ran"))
        .collect()
}

/// The result of a [`Generator`] run (compatibility shape; new code
/// should prefer [`GenerateOutcome`]).
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The best March test found.
    pub test: MarchTest,
    /// The tour it was built from.
    pub tour: Vec<TestPattern>,
    /// The tour's Global Test Sequence (paper §4 intermediate).
    pub gts: Gts,
    /// `true` when the fault simulator confirmed full coverage of every
    /// requested model (always checked unless `verify_cells` is 0).
    pub verified: bool,
    /// Simulator coverage report (present when verification ran).
    pub report: Option<CoverageReport>,
    /// Operational non-redundancy (present when requested): no single
    /// operation can be deleted without losing coverage.
    pub non_redundant: Option<bool>,
    /// Distinct March candidates constructed across tours/combinations.
    pub candidates: usize,
    /// Equivalence-class combinations examined (the paper's `E`).
    pub combinations: usize,
}

impl From<GenerateOutcome> for Outcome {
    fn from(outcome: GenerateOutcome) -> Outcome {
        Outcome {
            gts: Gts::from_tour(&outcome.tour),
            test: outcome.test,
            tour: outcome.tour,
            verified: outcome.verified,
            report: outcome.report,
            non_redundant: outcome.non_redundant,
            candidates: outcome.diagnostics.candidates,
            combinations: outcome.diagnostics.combinations,
        }
    }
}

/// The configurable generation pipeline — a builder-style compatibility
/// shim over [`GenerateRequest`] + [`generate`].
///
/// ```
/// use marchgen_generator::Generator;
///
/// let outcome = Generator::from_fault_list("SAF, TF").unwrap().run().unwrap();
/// assert_eq!(outcome.test.complexity(), 5); // Table 3 row 2: MATS+ class
/// ```
#[derive(Debug, Clone)]
pub struct Generator {
    request: GenerateRequest,
}

impl Generator {
    /// A generator for the given fault models with the paper's default
    /// configuration (uniform-start constraint f.4.4, all-optimal-tour
    /// enumeration, simulator verification on a 4-cell memory,
    /// minimization to non-redundancy).
    #[must_use]
    pub fn new(models: Vec<FaultModel>) -> Generator {
        Generator {
            request: GenerateRequest::new(models),
        }
    }

    /// Parses a textual fault list (see
    /// [`parse_fault_list`](marchgen_faults::parse_fault_list)).
    ///
    /// # Errors
    ///
    /// Returns the parse error of the first invalid token.
    pub fn from_fault_list(list: &str) -> Result<Generator, ParseFaultError> {
        Ok(Generator::new(parse_fault_list(list)?))
    }

    /// Wraps an existing request in the builder interface.
    #[must_use]
    pub fn from_request(request: GenerateRequest) -> Generator {
        Generator { request }
    }

    /// Overrides the f.4.4 start policy (ablation hook).
    #[must_use]
    pub fn start_policy(mut self, policy: StartPolicy) -> Generator {
        self.request.start_policy = policy;
        self
    }

    /// Selects the ATSP solver strategy.
    #[must_use]
    pub fn solver(mut self, solver: SolverChoice) -> Generator {
        self.request.solver = solver;
        self
    }

    /// Caps the number of optimal tours tried per combination.
    #[must_use]
    pub fn tour_cap(mut self, cap: usize) -> Generator {
        self.request = self.request.with_tour_cap(cap);
        self
    }

    /// Memory size for simulator verification; `0` disables verification
    /// (and compaction).
    #[must_use]
    pub fn verify_cells(mut self, n: usize) -> Generator {
        self.request.verify_cells = n;
        self
    }

    /// Enables/disables the simulator-guided minimization pass (Table 2's
    /// role; on by default).
    #[must_use]
    pub fn compact(mut self, on: bool) -> Generator {
        self.request.compact = on;
        self
    }

    /// Also run the operation-deletion non-redundancy check on the final
    /// test (off by default; it is implied `true` when compaction ran).
    #[must_use]
    pub fn check_redundancy(mut self, on: bool) -> Generator {
        self.request.check_redundancy = on;
        self
    }

    /// Selects the verification backend (scalar / bit-parallel / auto).
    #[must_use]
    pub fn verifier(mut self, verifier: VerifierChoice) -> Generator {
        self.request.verifier = verifier;
        self
    }

    /// Worker threads for the sharded candidate search (`0` = one per
    /// available CPU). Never changes the outcome, only the wall-clock.
    #[must_use]
    pub fn search_threads(mut self, threads: usize) -> Generator {
        self.request.search_threads = threads;
        self
    }

    /// The fault models targeted.
    #[must_use]
    pub fn models(&self) -> &[FaultModel] {
        &self.request.faults
    }

    /// The underlying typed request.
    #[must_use]
    pub fn request(&self) -> &GenerateRequest {
        &self.request
    }

    /// Consumes the builder into its typed request.
    #[must_use]
    pub fn into_request(self) -> GenerateRequest {
        self.request
    }

    /// Runs the pipeline.
    ///
    /// # Errors
    ///
    /// [`GenerateError::EmptyFaultList`] for an empty expansion,
    /// [`GenerateError::NoCandidate`] when no tour schedules (does not
    /// happen for the built-in catalog).
    pub fn run(&self) -> Result<Outcome, GenerateError> {
        generate(&self.request).map(Outcome::from)
    }
}

/// Iterator over the cartesian product of requirement alternatives —
/// the paper's class combination space, `E = Π |Cᵢ|` entries.
///
/// The counter is a **mixed-radix integer** (last requirement advances
/// fastest), so any contiguous index range `[lo, hi)` of the enumeration
/// can be produced independently via [`ClassCombinations::range`] — the
/// primitive the sharded search uses to partition the space across
/// worker threads without coordination.
pub struct ClassCombinations<'a> {
    requirements: &'a [CoverageRequirement],
    indices: Vec<usize>,
    remaining: usize,
}

impl<'a> ClassCombinations<'a> {
    /// The full enumeration, in mixed-radix order.
    #[must_use]
    pub fn new(requirements: &'a [CoverageRequirement]) -> ClassCombinations<'a> {
        ClassCombinations::range(requirements, 0, ClassCombinations::total(requirements))
    }

    /// The number of combinations `E = Π |Cᵢ|` (saturating; `0` for an
    /// empty requirement list, matching the empty enumeration).
    #[must_use]
    pub fn total(requirements: &[CoverageRequirement]) -> usize {
        if requirements.is_empty() {
            return 0;
        }
        requirements
            .iter()
            .map(|r| r.alternatives.len())
            .fold(1usize, usize::saturating_mul)
    }

    /// The combinations with linear indices in `[lo, hi)` (clamped to
    /// the enumeration size). Concatenating adjacent ranges reproduces
    /// the full enumeration exactly.
    #[must_use]
    pub fn range(
        requirements: &'a [CoverageRequirement],
        lo: usize,
        hi: usize,
    ) -> ClassCombinations<'a> {
        let total = ClassCombinations::total(requirements);
        let lo = lo.min(total);
        let hi = hi.min(total);
        // Decode `lo` into mixed-radix digits, last digit fastest.
        let mut indices = vec![0usize; requirements.len()];
        let mut rest = lo;
        for (pos, requirement) in requirements.iter().enumerate().rev() {
            let radix = requirement.alternatives.len();
            indices[pos] = rest % radix;
            rest /= radix;
        }
        ClassCombinations {
            requirements,
            indices,
            remaining: hi.saturating_sub(lo),
        }
    }
}

impl Iterator for ClassCombinations<'_> {
    type Item = Vec<TestPattern>;

    fn next(&mut self) -> Option<Vec<TestPattern>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let combo: Vec<TestPattern> = self
            .requirements
            .iter()
            .zip(&self.indices)
            .map(|(r, &k)| r.alternatives[k])
            .collect();
        // Advance the mixed-radix counter.
        let mut pos = self.indices.len();
        loop {
            if pos == 0 {
                break;
            }
            pos -= 1;
            self.indices[pos] += 1;
            if self.indices[pos] < self.requirements[pos].alternatives.len() {
                break;
            }
            self.indices[pos] = 0;
        }
        Some(combo)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ClassCombinations<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_count_is_product_of_cardinalities() {
        let reqs = requirements_for(&parse_fault_list("CFin<u>").unwrap());
        // two classes of two alternatives → E = 4 (paper §5)
        let combos: Vec<_> = ClassCombinations::new(&reqs).collect();
        assert_eq!(combos.len(), 4);
        assert_eq!(ClassCombinations::total(&reqs), 4);
    }

    #[test]
    fn range_partitions_reproduce_full_enumeration() {
        let reqs = requirements_for(&parse_fault_list("SAF, TF, CFin, CFid").unwrap());
        let total = ClassCombinations::total(&reqs);
        assert!(total > 8, "want a non-trivial space, got {total}");
        let full: Vec<_> = ClassCombinations::new(&reqs).collect();
        assert_eq!(full.len(), total);
        for parts in [1usize, 2, 3, 7, total, total + 5] {
            let chunk = total.div_ceil(parts).max(1);
            let mut stitched = Vec::new();
            let mut lo = 0;
            while lo < total {
                let hi = (lo + chunk).min(total);
                stitched.extend(ClassCombinations::range(&reqs, lo, hi));
                lo = hi;
            }
            assert_eq!(stitched, full, "{parts} partitions");
        }
        // Out-of-range and empty windows are empty, not wrong.
        assert_eq!(ClassCombinations::range(&reqs, total, total + 9).count(), 0);
        assert_eq!(ClassCombinations::range(&reqs, 3, 3).count(), 0);
    }

    #[test]
    fn combination_shards_cover_the_space() {
        for (limit, workers) in [(1usize, 8usize), (10, 3), (4096, 8), (7, 1), (64, 64)] {
            let shards = combination_shards(limit, workers);
            assert_eq!(shards[0].0, 0);
            assert_eq!(shards.last().unwrap().1, limit);
            for pair in shards.windows(2) {
                assert_eq!(pair[0].1, pair[1].0, "contiguous shards");
            }
        }
    }

    /// The sharded search is deterministic: 1, 2 and 8 workers produce
    /// identical outcomes (modulo wall-clock timings).
    #[test]
    fn sharded_search_is_deterministic() {
        for faults in ["SAF, TF, ADF, CFin", "CFid<u,1>, CFid<d,1>"] {
            let base = GenerateRequest::from_fault_list(faults)
                .unwrap()
                .with_check_redundancy(true);
            let mut outcomes: Vec<GenerateOutcome> = [1usize, 2, 8]
                .iter()
                .map(|&t| generate(&base.clone().with_search_threads(t)).unwrap())
                .collect();
            for o in &mut outcomes {
                o.diagnostics.expand_micros = 0;
                o.diagnostics.search_micros = 0;
                o.diagnostics.verify_micros = 0;
                o.diagnostics.shard_micros = vec![0; o.diagnostics.shard_micros.len()];
                o.diagnostics.verify_shard_micros =
                    vec![0; o.diagnostics.verify_shard_micros.len()];
            }
            assert_eq!(outcomes[0], outcomes[1], "{faults}: 1 vs 2 threads");
            assert_eq!(outcomes[0], outcomes[2], "{faults}: 1 vs 8 threads");
        }
    }

    /// `Auto` resolves by scenario lane count — the 64-lane backend for
    /// sweeps that fit one bitsim batch, the wide backend beyond — and
    /// explicit choices are honored.
    #[test]
    fn verifier_resolution_rules() {
        // SAF+TF at the default 4 cells: ≤ 64 scenario lanes → bitsim.
        let single = GenerateRequest::from_fault_list("SAF, TF").unwrap();
        // Any pair-fault list at 4 cells: 12 sites × 8 patterns = 96
        // lanes → wide.
        let pair = GenerateRequest::from_fault_list("SAF, CFin").unwrap();
        assert_eq!(verifier_for(&single).unwrap().name(), "bitsim");
        assert_eq!(verifier_for(&pair).unwrap().name(), "widesim");
        assert_eq!(
            verifier_for(&single.clone().with_verifier(VerifierChoice::Scalar))
                .unwrap()
                .name(),
            "simulator"
        );
        assert_eq!(
            verifier_for(&single.clone().with_verifier(VerifierChoice::Wide))
                .unwrap()
                .name(),
            "widesim"
        );
        assert_eq!(
            verifier_for(&pair.clone().with_verifier(VerifierChoice::BitParallel))
                .unwrap()
                .name(),
            "bitsim"
        );
        assert_eq!(
            verifier_for(&pair.clone().with_verifier(VerifierChoice::Scalar))
                .unwrap()
                .name(),
            "simulator"
        );
        assert!(verifier_for(&pair.with_verify_cells(0)).is_none());
    }

    /// Regression (PR 9 routed only pair-fault lists to bitsim): `auto`
    /// never selects the scalar backend — dynamic and linked lists
    /// included, at any memory size the packed interpreters support.
    #[test]
    fn auto_never_selects_scalar_when_packed_backend_supports_the_list() {
        for faults in [
            "SAF",
            "SAF, TF",
            "RDF, DRDF, IRF",
            "dRDF, dDRDF, dIRF",
            "dRDF<0>",
            "LCF",
            "LCF<1>",
            "SAF, dRDF, LCF",
            "SAF, CFin",
            "CFin, CFid, CFst",
        ] {
            for cells in [2usize, 4, 8] {
                let request = GenerateRequest::from_fault_list(faults)
                    .unwrap()
                    .with_verify_cells(cells);
                let name = verifier_for(&request).unwrap().name().to_owned();
                assert_ne!(name, "simulator", "{faults} at {cells} cells");
                let expected = if widesim::max_model_lanes(&request.faults, cells) > 64 {
                    "widesim"
                } else {
                    "bitsim"
                };
                assert_eq!(name, expected, "{faults} at {cells} cells");
            }
        }
    }

    /// All three verification backends produce the same outcome on the
    /// paper workloads (end-to-end pipeline agreement).
    #[test]
    fn verifier_backends_agree_end_to_end() {
        for faults in ["SAF, TF", "CFid<u,0>, CFid<u,1>", "SAF, TF, ADF, CFin"] {
            let base = GenerateRequest::from_fault_list(faults)
                .unwrap()
                .with_check_redundancy(true);
            let scalar = generate(&base.clone().with_verifier(VerifierChoice::Scalar)).unwrap();
            for choice in [VerifierChoice::BitParallel, VerifierChoice::Wide] {
                let packed = generate(&base.clone().with_verifier(choice)).unwrap();
                assert_eq!(scalar.test, packed.test, "{faults} via {choice}");
                assert_eq!(scalar.report, packed.report, "{faults} via {choice}");
                assert_eq!(
                    scalar.non_redundant, packed.non_redundant,
                    "{faults} via {choice}"
                );
                assert_eq!(scalar.verified, packed.verified, "{faults} via {choice}");
            }
        }
    }

    /// The resolved backend and per-shard verify timings land in the
    /// diagnostics; inline (single-threaded) shard times sum to at most
    /// the verify phase's wall clock.
    #[test]
    fn verify_shard_diagnostics_are_recorded() {
        let request = GenerateRequest::from_fault_list("SAF, CFin")
            .unwrap()
            .with_search_threads(1);
        let out = generate(&request).unwrap();
        let d = &out.diagnostics;
        assert_eq!(d.verifier, "widesim");
        assert!(!d.verify_shard_micros.is_empty());
        // One plan's worth of shards per coverage sweep the pipeline ran.
        let plan_len = widesim::shard_plan(&request.faults, request.verify_cells).len();
        assert_eq!(d.verify_shard_micros.len() % plan_len, 0);
        // Inline shards nest inside the verify phase: Σ shards ≤ wall
        // clock (strictly concurrent runs could exceed it).
        let total: u64 = d.verify_shard_micros.iter().sum();
        assert!(
            total <= d.verify_micros,
            "Σ verify_shard_micros {total} > verify_micros {}",
            d.verify_micros
        );
        // Verification disabled → no backend, no shards.
        let off = generate(&request.with_verify_cells(0)).unwrap();
        assert_eq!(off.diagnostics.verifier, "");
        assert!(off.diagnostics.verify_shard_micros.is_empty());
    }

    #[test]
    fn empty_fault_list_rejected() {
        let err = Generator::new(Vec::new()).run().unwrap_err();
        assert_eq!(err, GenerateError::EmptyFaultList);
    }

    #[test]
    fn unknown_solver_rejected() {
        let request = GenerateRequest::from_fault_list("SAF")
            .unwrap()
            .with_solver(SolverChoice::Custom("bogus".into()));
        let err = generate(&request).unwrap_err();
        assert_eq!(err, GenerateError::UnknownSolver("bogus".into()));
    }

    /// Table 3 row 1: SAF → 4n, verified and non-redundant.
    #[test]
    fn table3_row1_saf() {
        let out = Generator::from_fault_list("SAF").unwrap().run().unwrap();
        assert!(out.verified, "coverage report: {:?}", out.report);
        assert_eq!(out.test.complexity(), 4, "{}", out.test);
        assert_eq!(out.non_redundant, Some(true));
    }

    /// Table 3 row 2: SAF + TF → 5n (MATS+ class).
    #[test]
    fn table3_row2_saf_tf() {
        let out = Generator::from_fault_list("SAF, TF")
            .unwrap()
            .run()
            .unwrap();
        assert!(out.verified);
        assert_eq!(out.test.complexity(), 5, "{}", out.test);
    }

    /// The §4 example fault list: 8n.
    #[test]
    fn section4_example_8n() {
        let out = Generator::from_fault_list("CFid<u,0>, CFid<u,1>")
            .unwrap()
            .run()
            .unwrap();
        assert!(out.verified);
        assert_eq!(out.test.complexity(), 8, "{}", out.test);
    }

    /// Table 3 row 6: {CFid<↑,1>, CFid<↓,1>} → 5n.
    #[test]
    fn table3_row6_cfid_pair() {
        let out = Generator::from_fault_list("CFid<u,1>, CFid<d,1>")
            .unwrap()
            .run()
            .unwrap();
        assert!(out.verified);
        assert_eq!(out.test.complexity(), 5, "{}", out.test);
    }

    /// The dynamic workload space: every two-operation fault family
    /// generates a verified test (the back-to-back w,r sequence survives
    /// scheduling, March execution and both simulators).
    #[test]
    fn dynamic_fault_lists_generate_verified_tests() {
        for faults in ["dRDF", "dDRDF<1>", "dIRF", "dRDF, dDRDF, dIRF"] {
            let out = Generator::from_fault_list(faults).unwrap().run().unwrap();
            assert!(out.verified, "{faults}: {:?}", out.report);
        }
    }

    /// Linked idempotent coupling generates a verified test end-to-end.
    #[test]
    fn linked_fault_list_generates_verified_test() {
        let out = Generator::from_fault_list("LCF").unwrap().run().unwrap();
        assert!(out.verified, "{:?}", out.report);
    }

    /// Mixed classical + dynamic + linked workloads verify identically on
    /// the scalar, bit-parallel and wide backends.
    #[test]
    fn extended_workload_backends_agree() {
        for faults in ["SAF, dRDF, dIRF", "TF, LCF<1>", "SAF, TF, dDRDF, LCF"] {
            let base = GenerateRequest::from_fault_list(faults).unwrap();
            let scalar = generate(&base.clone().with_verifier(VerifierChoice::Scalar)).unwrap();
            for choice in [VerifierChoice::BitParallel, VerifierChoice::Wide] {
                let packed = generate(&base.clone().with_verifier(choice)).unwrap();
                assert_eq!(scalar.test, packed.test, "{faults} via {choice}");
                assert_eq!(scalar.report, packed.report, "{faults} via {choice}");
                assert!(scalar.verified, "{faults}: {:?}", scalar.report);
            }
        }
    }

    #[test]
    fn unverified_mode_still_returns_a_candidate() {
        let out = Generator::from_fault_list("SAF")
            .unwrap()
            .verify_cells(0)
            .run()
            .unwrap();
        assert!(!out.verified);
        assert!(out.report.is_none());
        assert_eq!(out.test.complexity(), 4);
    }

    /// All exact solver choices agree on the Table 3 workloads.
    #[test]
    fn exact_solver_choices_agree() {
        for faults in ["SAF", "SAF, TF", "CFid<u,0>, CFid<u,1>"] {
            let baseline = generate(&GenerateRequest::from_fault_list(faults).unwrap())
                .unwrap()
                .complexity();
            for choice in [SolverChoice::HeldKarp, SolverChoice::BranchBound] {
                let request = GenerateRequest::from_fault_list(faults)
                    .unwrap()
                    .with_solver(choice.clone());
                let out = generate(&request).unwrap();
                assert!(out.verified, "{faults} with {choice}");
                assert_eq!(out.complexity(), baseline, "{faults} with {choice}");
            }
        }
    }

    /// The local-search backend generates verified tests end-to-end and
    /// surfaces its work in the diagnostics.
    #[test]
    fn local_search_choice_generates_and_reports() {
        let request = GenerateRequest::from_fault_list("CFid<u,0>, CFid<u,1>")
            .unwrap()
            .with_solver(SolverChoice::LocalSearch);
        let out = generate(&request).unwrap();
        assert!(out.verified, "local-search outcome verifies");
        assert_eq!(out.diagnostics.solver, "local-search");
        assert!(
            out.diagnostics.solver_restarts > 0,
            "the TPG here is large enough for the restart phase"
        );
        // The exact baseline: same complexity on this catalog workload.
        let exact =
            generate(&GenerateRequest::from_fault_list("CFid<u,0>, CFid<u,1>").unwrap()).unwrap();
        assert_eq!(out.complexity(), exact.complexity());
        assert_eq!(exact.diagnostics.solver, "auto");
        assert_eq!(
            exact.diagnostics.solver_iterations, 0,
            "exact path is search-free"
        );
    }

    /// Diagnostics account for the search the engine performed.
    #[test]
    fn diagnostics_are_populated() {
        let out = generate(&GenerateRequest::from_fault_list("SAF, TF").unwrap()).unwrap();
        let d = &out.diagnostics;
        assert_eq!(d.solver, "auto");
        assert!(d.combinations > 0);
        assert!(d.unique_tp_sets > 0);
        assert!(d.unique_tp_sets <= d.combinations);
        assert!(d.tours_tried > 0);
        assert!(d.candidates > 0);
        assert!(!d.candidate_complexities.is_empty());
        assert!(d.candidate_complexities.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(d.candidate_complexities[0], out.complexity());
    }

    /// The builder shim and the request layer produce identical results.
    #[test]
    fn shim_matches_engine() {
        let generator = Generator::from_fault_list("SAF, TF")
            .unwrap()
            .check_redundancy(true);
        let via_shim = generator.run().unwrap();
        let via_engine = generate(generator.request()).unwrap();
        assert_eq!(via_shim.test, via_engine.test);
        assert_eq!(via_shim.tour, via_engine.tour);
        assert_eq!(via_shim.verified, via_engine.verified);
        assert_eq!(via_shim.non_redundant, via_engine.non_redundant);
        assert_eq!(via_shim.candidates, via_engine.diagnostics.candidates);
        assert_eq!(via_shim.combinations, via_engine.diagnostics.combinations);
    }
}
