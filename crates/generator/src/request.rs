//! [`GenerateRequest`] — the typed, serializable description of one
//! generation run.
//!
//! Every knob of the historical [`Generator`](crate::Generator) builder
//! is captured here as plain data, so a request can be constructed
//! programmatically, decoded from JSON (`serde` feature), queued through
//! the batch service layer, and replayed byte-for-byte.

use marchgen_atsp::SolverChoice;
use marchgen_faults::{parse_fault_list, FaultModel, ParseFaultError};
use marchgen_tpg::StartPolicy;
use std::fmt;

/// Which verification backend runs the coverage, compaction and
/// redundancy checks of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifierChoice {
    /// Pick per request by scenario lane count: the wide-lane simulator
    /// when any fault model sweeps more than 64 lanes (one full bitsim
    /// batch), the 64-lane bit-parallel simulator otherwise. Every
    /// model of the extended taxonomy — including dynamic (`dRDF` /
    /// `dDRDF` / `dIRF`) and linked (`LCF`) classes — routes to a
    /// packed backend; the scalar simulator is never auto-selected.
    /// The default.
    #[default]
    Auto,
    /// The scalar behavioural simulator
    /// ([`SimVerifier`](marchgen_sim::SimVerifier)), one scenario at a
    /// time.
    Scalar,
    /// The bit-parallel simulator
    /// ([`BitSimVerifier`](marchgen_sim::BitSimVerifier)), 64 scenario
    /// lanes per `u64` word. Exact agreement with the scalar backend is
    /// enforced by the differential test suite.
    BitParallel,
    /// The wide-lane simulator
    /// ([`WideSimVerifier`](marchgen_sim::WideSimVerifier)), `[u64; W]`
    /// lane blocks with W ∈ {2, 4, 8} picked by scenario count
    /// (128–512 lanes per word), sharding the verify phase across
    /// `search_threads` workers. Exact agreement with the scalar
    /// backend at every width is enforced by the differential suite.
    Wide,
}

impl VerifierChoice {
    /// The stable serialization key (`"auto"` / `"scalar"` / `"bitsim"`
    /// / `"wide"`).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            VerifierChoice::Auto => "auto",
            VerifierChoice::Scalar => "scalar",
            VerifierChoice::BitParallel => "bitsim",
            VerifierChoice::Wide => "wide",
        }
    }

    /// Parses a serialization key; `None` for unknown names.
    #[must_use]
    pub fn from_key(key: &str) -> Option<VerifierChoice> {
        match key {
            "auto" => Some(VerifierChoice::Auto),
            "scalar" => Some(VerifierChoice::Scalar),
            "bitsim" => Some(VerifierChoice::BitParallel),
            "wide" => Some(VerifierChoice::Wide),
            _ => None,
        }
    }
}

impl fmt::Display for VerifierChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// A complete, self-contained description of one March-test generation
/// run: target fault models plus engine configuration.
///
/// The [`Default`] configuration mirrors the paper's: uniform-start
/// constraint f.4.4, automatic solver dispatch, all-optimal-tour
/// enumeration capped at 64, simulator verification on a 4-cell memory,
/// and minimization to non-redundancy.
///
/// ```
/// use marchgen_generator::GenerateRequest;
///
/// let request = GenerateRequest::from_fault_list("SAF, TF").unwrap();
/// assert_eq!(request.verify_cells, 4);
/// assert!(request.compact);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateRequest {
    /// The fault models the test must cover.
    pub faults: Vec<FaultModel>,
    /// The f.4.4 start constraint (uniform by default).
    pub start_policy: StartPolicy,
    /// Which ATSP solver strategy plans the TP tours.
    pub solver: SolverChoice,
    /// Cap on optimal tours tried per class combination.
    pub tour_cap: usize,
    /// Memory size for simulator verification; `0` disables verification
    /// (and compaction).
    pub verify_cells: usize,
    /// Run the simulator-guided minimization pass (Table 2's role).
    pub compact: bool,
    /// Also run the operation-deletion non-redundancy check (implied
    /// `true` when compaction ran).
    pub check_redundancy: bool,
    /// Cap on equivalence-class combinations examined (the paper's `E`).
    pub max_combinations: usize,
    /// Which verification backend to use (see [`VerifierChoice`]).
    pub verifier: VerifierChoice,
    /// Worker threads for the in-request candidate search (the class
    /// combination space is range-partitioned across them); `0` means
    /// one per available CPU. The thread count never changes the
    /// outcome — results are collected deterministically.
    pub search_threads: usize,
}

impl GenerateRequest {
    /// A request for the given fault models with the paper's default
    /// configuration.
    #[must_use]
    pub fn new(faults: Vec<FaultModel>) -> GenerateRequest {
        GenerateRequest {
            faults,
            start_policy: StartPolicy::Uniform,
            solver: SolverChoice::Auto,
            tour_cap: 64,
            verify_cells: 4,
            compact: true,
            check_redundancy: false,
            max_combinations: 4096,
            verifier: VerifierChoice::Auto,
            search_threads: 0,
        }
    }

    /// Parses a textual fault list (see
    /// [`parse_fault_list`](marchgen_faults::parse_fault_list)).
    ///
    /// # Errors
    ///
    /// Returns the parse error of the first invalid token.
    pub fn from_fault_list(list: &str) -> Result<GenerateRequest, ParseFaultError> {
        Ok(GenerateRequest::new(parse_fault_list(list)?))
    }

    /// Builder-style override of the start policy.
    #[must_use]
    pub fn with_start_policy(mut self, policy: StartPolicy) -> GenerateRequest {
        self.start_policy = policy;
        self
    }

    /// Builder-style override of the solver strategy.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverChoice) -> GenerateRequest {
        self.solver = solver;
        self
    }

    /// Builder-style override of the per-combination tour cap (clamped
    /// to at least 1).
    #[must_use]
    pub fn with_tour_cap(mut self, cap: usize) -> GenerateRequest {
        self.tour_cap = cap.max(1);
        self
    }

    /// Builder-style override of the verification memory size.
    #[must_use]
    pub fn with_verify_cells(mut self, cells: usize) -> GenerateRequest {
        self.verify_cells = cells;
        self
    }

    /// Builder-style toggle of the minimization pass.
    #[must_use]
    pub fn with_compact(mut self, on: bool) -> GenerateRequest {
        self.compact = on;
        self
    }

    /// Builder-style toggle of the non-redundancy check.
    #[must_use]
    pub fn with_check_redundancy(mut self, on: bool) -> GenerateRequest {
        self.check_redundancy = on;
        self
    }

    /// Builder-style override of the combination cap (clamped to at
    /// least 1).
    #[must_use]
    pub fn with_max_combinations(mut self, cap: usize) -> GenerateRequest {
        self.max_combinations = cap.max(1);
        self
    }

    /// Builder-style override of the verification backend.
    #[must_use]
    pub fn with_verifier(mut self, verifier: VerifierChoice) -> GenerateRequest {
        self.verifier = verifier;
        self
    }

    /// Builder-style override of the search worker count (`0` = one per
    /// available CPU).
    #[must_use]
    pub fn with_search_threads(mut self, threads: usize) -> GenerateRequest {
        self.search_threads = threads;
        self
    }

    /// The canonical form of this request: the fault list sorted in
    /// taxonomy order and deduplicated, and the caps clamped to the
    /// builder invariants (≥ 1).
    ///
    /// Two requests describing the same generation problem — e.g. the
    /// same fault models listed in a different order, or a duplicated
    /// model — normalize to the same value, which makes the canonical
    /// form the natural input for content-addressed caching
    /// (`marchgen-cache`). The generated test, tour and verification
    /// verdicts are invariant under normalization (the engine's search
    /// does not depend on fault-list order, and the clamps mirror what
    /// [`GenerateRequest::with_tour_cap`] /
    /// [`GenerateRequest::with_max_combinations`] already enforce); the
    /// one observable difference is presentational — the coverage
    /// report lists its per-model sections in request order, so a
    /// normalized request reports in canonical taxonomy order.
    #[must_use]
    pub fn normalize(mut self) -> GenerateRequest {
        self.faults.sort_unstable();
        self.faults.dedup();
        self.tour_cap = self.tour_cap.max(1);
        self.max_combinations = self.max_combinations.max(1);
        self
    }
}

impl Default for GenerateRequest {
    fn default() -> GenerateRequest {
        GenerateRequest::new(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let req = GenerateRequest::from_fault_list("SAF").unwrap();
        assert_eq!(req.start_policy, StartPolicy::Uniform);
        assert_eq!(req.solver, SolverChoice::Auto);
        assert_eq!(req.tour_cap, 64);
        assert_eq!(req.verify_cells, 4);
        assert!(req.compact);
        assert!(!req.check_redundancy);
        assert_eq!(req.max_combinations, 4096);
        assert_eq!(req.verifier, VerifierChoice::Auto);
        assert_eq!(req.search_threads, 0, "0 = one worker per CPU");
    }

    #[test]
    fn verifier_choice_keys_roundtrip() {
        for choice in [
            VerifierChoice::Auto,
            VerifierChoice::Scalar,
            VerifierChoice::BitParallel,
            VerifierChoice::Wide,
        ] {
            assert_eq!(VerifierChoice::from_key(choice.key()), Some(choice));
        }
        assert_eq!(VerifierChoice::from_key("bogus"), None);
        assert_eq!(VerifierChoice::BitParallel.to_string(), "bitsim");
        assert_eq!(VerifierChoice::Wide.to_string(), "wide");
    }

    #[test]
    fn normalize_sorts_dedups_and_clamps() {
        let shuffled = GenerateRequest::from_fault_list("CFin<u>, SAF, TF<d>, SA0").unwrap();
        let sorted = GenerateRequest::from_fault_list("SAF, TF<d>, CFin<u>").unwrap();
        assert_ne!(
            shuffled.faults, sorted.faults,
            "inputs differ pre-normalization"
        );
        assert_eq!(shuffled.normalize(), sorted.normalize());

        let mut raw = GenerateRequest::from_fault_list("SAF").unwrap();
        raw.tour_cap = 0;
        raw.max_combinations = 0;
        let normal = raw.normalize();
        assert_eq!(normal.tour_cap, 1);
        assert_eq!(normal.max_combinations, 1);
    }

    /// Normalization is idempotent and preserves already-canonical
    /// requests untouched.
    #[test]
    fn normalize_is_idempotent() {
        let req = GenerateRequest::from_fault_list("SAF, TF, CFin").unwrap();
        let once = req.clone().normalize();
        assert_eq!(once.clone().normalize(), once);
    }

    #[test]
    fn builder_chain() {
        let req = GenerateRequest::default()
            .with_solver(SolverChoice::HeldKarp)
            .with_start_policy(StartPolicy::Free)
            .with_tour_cap(0)
            .with_verify_cells(6)
            .with_compact(false)
            .with_check_redundancy(true)
            .with_max_combinations(0)
            .with_verifier(VerifierChoice::BitParallel)
            .with_search_threads(4);
        assert_eq!(req.solver, SolverChoice::HeldKarp);
        assert_eq!(req.verifier, VerifierChoice::BitParallel);
        assert_eq!(req.search_threads, 4);
        assert_eq!(req.start_policy, StartPolicy::Free);
        assert_eq!(req.tour_cap, 1, "tour cap clamps to 1");
        assert_eq!(req.max_combinations, 1, "combination cap clamps to 1");
        assert_eq!(req.verify_cells, 6);
        assert!(!req.compact);
        assert!(req.check_redundancy);
    }
}
