//! The GTS → March conversion: our reconstruction of the paper's
//! reordering / minimization / March-generation rewrite phases
//! (§4.1–§4.3, Tables 1–2, Rules 1–5).
//!
//! # The reconstruction (see also DESIGN.md)
//!
//! The archived paper's rewrite tables are OCR-mangled, but the §4 worked
//! example pins the semantics down completely. Decoding its intermediate
//! strings shows that the minimized `GTS_M` is exactly the **per-cell
//! operation sequence** of the final March test, with the `i`/`j` tags
//! denoting which *sweep phase* (ascending or descending) realizes each
//! operation's coupling role, and the Red/Blue colors marking coupling
//! excitations and their cross-element observation reads. The three
//! phases then amount to:
//!
//! * **Reordering** — placing each TP's operations into the per-cell
//!   schedule so that the March semantics realize `(I, E, O)`: an
//!   element's leading read observes the pre-element value at every cell
//!   the sweep has not reached yet, so an *aggressor-first* TP fits
//!   inside one element (excite at the aggressor, observe via the same
//!   element's leading read at the victim) while an *aggressor-second*
//!   TP excites at the end of one element and observes with the leading
//!   read of the next (the Red/Blue pair of Rule 2).
//! * **Minimization** — operation sharing: phase-duplicate writes merge
//!   into a single March operation (`ŵdⁱ ŵdʲ → ŵdⁱ` of Table 2), one
//!   write excites several TPs, one read serves as observation of
//!   several TPs and as the verify of the next element.
//! * **March generation** — element boundaries fall where the schedule
//!   opens a new leading read (Rule 1), Red/Blue-marked elements take
//!   their phase's direction (Rules 3–4), unmarked elements are order
//!   free (`⇕`, Rule 5's "c").
//!
//! On the worked example this reproduces the paper's intermediate
//! `GTS_M = ŵ0 r̂0 [ŵ1]_R [r̂1]_B ŵ0 r̂0 [ŵ1]_R [r̂1]_B` and the final 8n
//! test `⇑(w0) ⇑(r0,w1) ⇑(r1,w0) ⇓(r0,w1) ⇓(r1)` exactly (the leading
//! background element is emitted as `⇕`, which subsumes the paper's `⇑`).

use marchgen_faults::{Observation, TestPattern, TpKind};
use marchgen_march::{Direction, MarchElement, MarchOp, MarchTest};
use marchgen_model::{Bit, Cell, MemOp};
use std::fmt;

/// Why a tour could not be scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A read would disagree with the fault-free per-cell value — the TP
    /// sequence is internally inconsistent.
    InconsistentRead {
        /// The value the read expects.
        expected: Bit,
        /// The per-cell value at that point, if initialized.
        actual: Option<Bit>,
    },
    /// Two coupling TPs forced opposite sweep directions onto one
    /// element.
    PhaseConflict,
    /// A TP requires a known initialization the schedule cannot provide
    /// (e.g. a pre-read on a cell whose value is still unknown).
    UnknownValue,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InconsistentRead { expected, actual } => write!(
                f,
                "inconsistent read: expected {expected}, per-cell value is {}",
                actual.map_or("unknown".to_string(), |b| b.to_string())
            ),
            ScheduleError::PhaseConflict => {
                f.write_str("conflicting sweep directions on one march element")
            }
            ScheduleError::UnknownValue => {
                f.write_str("operation requires a cell value that is still unknown")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// One scheduled per-cell operation with its pre-value and color mark.
#[derive(Debug, Clone, Copy)]
struct Slot {
    op: MarchOp,
    /// Per-cell value before this operation.
    pre: Option<Bit>,
}

/// An element under construction.
#[derive(Debug, Clone)]
struct Elem {
    ops: Vec<Slot>,
    /// Per-cell value when the element starts.
    start: Option<Bit>,
    /// Sweep-phase mark from Red/Blue colored operations.
    mark: Option<Direction>,
}

impl Elem {
    fn new(start: Option<Bit>) -> Elem {
        Elem {
            ops: Vec::new(),
            start,
            mark: None,
        }
    }

    fn first_op(&self) -> Option<MarchOp> {
        self.ops.first().map(|s| s.op)
    }

    fn last_op(&self) -> Option<MarchOp> {
        self.ops.last().map(|s| s.op)
    }

    fn set_mark(&mut self, mark: Option<Direction>) -> Result<(), ScheduleError> {
        match (self.mark, mark) {
            (_, None) => Ok(()),
            (None, m) => {
                self.mark = m;
                Ok(())
            }
            (Some(a), Some(b)) if a == b => Ok(()),
            _ => Err(ScheduleError::PhaseConflict),
        }
    }
}

/// A pending observation read: registered when an excitation is placed,
/// discharged by the next matching read (which opens the next element for
/// cross-element observations).
#[derive(Debug, Clone, Copy)]
struct Pending {
    expected: Bit,
    /// Blue mark: the phase whose direction the observing element takes.
    mark: Option<Direction>,
}

#[derive(Debug)]
struct Builder {
    closed: Vec<Elem>,
    open: Option<Elem>,
    cur: Option<Bit>,
    phase: Direction,
    pendings: Vec<Pending>,
    /// Whether the most recently closed element may still host a shared
    /// cross-excitation (no operation appended since it closed).
    last_closed_sharable: bool,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            closed: Vec::new(),
            open: None,
            cur: None,
            phase: Direction::Up,
            pendings: Vec::new(),
            last_closed_sharable: false,
        }
    }

    fn open_mut(&mut self) -> &mut Elem {
        if self.open.is_none() {
            self.open = Some(Elem::new(self.cur));
        }
        self.open.as_mut().expect("just ensured")
    }

    fn close(&mut self) {
        if let Some(e) = self.open.take() {
            if !e.ops.is_empty() {
                self.closed.push(e);
                self.last_closed_sharable = true;
            }
        }
    }

    /// Appends a write, discharging pending observations first.
    fn push_write(&mut self, value: Bit, mark: Option<Direction>) -> Result<(), ScheduleError> {
        self.discharge_pendings()?;
        let pre = self.cur;
        let elem = self.open_mut();
        elem.ops.push(Slot {
            op: MarchOp::Write(value),
            pre,
        });
        elem.set_mark(mark)?;
        self.cur = Some(value);
        self.last_closed_sharable = false;
        Ok(())
    }

    /// Appends a read-and-verify; it discharges every pending observation
    /// (they all expect the current per-cell value by construction).
    fn push_read(&mut self, expected: Bit, mark: Option<Direction>) -> Result<(), ScheduleError> {
        if self.cur != Some(expected) {
            return Err(ScheduleError::InconsistentRead {
                expected,
                actual: self.cur,
            });
        }
        let mut mark = mark;
        for p in std::mem::take(&mut self.pendings) {
            debug_assert_eq!(p.expected, expected, "pending invariant");
            if mark.is_none() {
                mark = p.mark;
            }
        }
        let pre = self.cur;
        let elem = self.open_mut();
        elem.ops.push(Slot {
            op: MarchOp::Read(expected),
            pre,
        });
        elem.set_mark(mark)?;
        self.last_closed_sharable = false;
        Ok(())
    }

    /// Emits the pending observation reads (each opens a fresh element if
    /// none is open — the cross-element observation shape).
    fn discharge_pendings(&mut self) -> Result<(), ScheduleError> {
        if self.pendings.is_empty() {
            return Ok(());
        }
        let expected = self.pendings[0].expected;
        self.push_read(expected, None)
    }

    /// Brings the per-cell value to `value` (no-op when already there or
    /// when `value` is unconstrained).
    fn ensure_value(&mut self, value: Option<Bit>) -> Result<(), ScheduleError> {
        match value {
            Some(v) if self.cur != Some(v) => self.push_write(v, None),
            _ => Ok(()),
        }
    }

    fn finish(mut self) -> Result<MarchTest, ScheduleError> {
        self.discharge_pendings()?;
        self.close();
        let elements: Vec<MarchElement> = self
            .closed
            .into_iter()
            .filter(|e| !e.ops.is_empty())
            .map(|e| {
                MarchElement::new(
                    e.mark.unwrap_or(Direction::Any),
                    e.ops.iter().map(|s| s.op).collect::<Vec<_>>(),
                )
            })
            .collect();
        Ok(MarchTest::new(elements))
    }
}

/// The placement a pair TP gets in the current schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Placement {
    /// Reuse an existing excitation operation (cost 0 + possible close
    /// fix).
    ShareCross { phase: Direction, fix_close: bool },
    /// Aggressor is swept first: excite inside an element whose leading
    /// read observes the victim.
    Within { phase: Direction },
    /// Aggressor is swept second: excite at the element end, observe with
    /// the next element's leading read.
    AppendCross { phase: Direction },
}

/// Converts a TP tour into a March test (the §4.1–4.3 phases).
///
/// # Errors
///
/// Returns [`ScheduleError`] when the tour cannot form a consistent March
/// test (the pipeline then skips this tour).
pub fn schedule_tour(tour: &[TestPattern]) -> Result<MarchTest, ScheduleError> {
    let mut b = Builder::new();
    for tp in tour {
        match tp.kind {
            TpKind::SingleCell => place_single(&mut b, tp)?,
            TpKind::Pair => place_pair(&mut b, tp)?,
        }
    }
    b.finish()
}

fn place_single(b: &mut Builder, tp: &TestPattern) -> Result<(), ScheduleError> {
    let x = tp.init.i.bit();
    if let Some(setup) = tp.setup {
        return place_single_sequence(b, tp, x, setup);
    }
    match tp.excite {
        MemOp::Write(_, d) => {
            b.ensure_value(x)?;
            if tp.pre_read {
                let Some(v) = x.or(b.cur) else {
                    return Err(ScheduleError::UnknownValue);
                };
                if b.open.as_ref().and_then(Elem::last_op) != Some(MarchOp::Read(v)) {
                    b.discharge_pendings()?;
                    b.push_read(v, None)?;
                }
            }
            b.push_write(d, None)?;
            if tp.immediate {
                b.push_read(d, None)?;
            } else {
                b.pendings.push(Pending {
                    expected: d,
                    mark: None,
                });
            }
        }
        MemOp::Read(_) => {
            let Some(v) = x else {
                return Err(ScheduleError::UnknownValue);
            };
            b.ensure_value(Some(v))?;
            b.push_read(v, None)?;
            if matches!(tp.observe, Observation::Read { .. }) {
                // deceptive read faults: a second read catches the flip
                b.pendings.push(Pending {
                    expected: v,
                    mark: None,
                });
            }
        }
        MemOp::Delay => {
            let Some(v) = x else {
                return Err(ScheduleError::UnknownValue);
            };
            b.ensure_value(Some(v))?;
            b.discharge_pendings()?;
            b.close();
            b.closed.push(Elem {
                ops: vec![Slot {
                    op: MarchOp::Delay,
                    pre: b.cur,
                }],
                start: b.cur,
                mark: None,
            });
            b.last_closed_sharable = false;
            b.pendings.push(Pending {
                expected: v,
                mark: None,
            });
        }
    }
    Ok(())
}

/// Places a two-operation (dynamic-fault) single-cell TP: the setup op
/// and the excitation must reach the cell back-to-back, which March
/// semantics guarantee for adjacent operations of one element.
fn place_single_sequence(
    b: &mut Builder,
    tp: &TestPattern,
    x: Option<Bit>,
    setup: MemOp,
) -> Result<(), ScheduleError> {
    let MemOp::Write(_, s) = setup else {
        // Only write-setup sequences are in the workload space.
        return Err(ScheduleError::UnknownValue);
    };
    b.ensure_value(x)?;
    // `push_write` discharges pendings first, so nothing can slip in
    // between the setup write and the excitation below.
    b.push_write(s, None)?;
    match tp.excite {
        MemOp::Read(_) => {
            let expected = tp.observe.expected();
            b.push_read(expected, None)?;
            if matches!(tp.observe, Observation::Read { .. }) {
                // Deceptive dynamic faults: the excitation read returns
                // the correct value, a trailing read catches the flip.
                b.pendings.push(Pending {
                    expected,
                    mark: None,
                });
            }
        }
        MemOp::Write(_, d) => {
            b.push_write(d, None)?;
            b.pendings.push(Pending {
                expected: d,
                mark: None,
            });
        }
        MemOp::Delay => return Err(ScheduleError::UnknownValue),
    }
    Ok(())
}

fn place_pair(b: &mut Builder, tp: &TestPattern) -> Result<(), ScheduleError> {
    let aggr = tp.excite_cell();
    let x_a = tp.init.get(aggr).bit();
    let x_v = tp
        .init
        .get(aggr.other())
        .bit()
        .ok_or(ScheduleError::UnknownValue)?;

    let placement = choose_placement(b, tp, aggr, x_a, x_v);
    match placement {
        Placement::ShareCross { phase, fix_close } => {
            if fix_close {
                b.push_write(x_v, None)?;
            }
            // Mark the hosting element with the phase (it may have been
            // built unmarked).
            if let Some(e) = b.open.as_mut() {
                e.set_mark(Some(phase))?;
                b.close();
            } else if let Some(e) = b.closed.last_mut() {
                e.set_mark(Some(phase))?;
            }
            register_observation(b, tp, x_v, phase);
        }
        Placement::Within { phase } => {
            let needs_leading_read = matches!(tp.observe, Observation::Read { .. });
            let host_ok = |b: &Builder| -> bool {
                b.phase == phase
                    && match (&b.open, needs_leading_read) {
                        (Some(e), true) => {
                            e.first_op() == Some(MarchOp::Read(x_v))
                                && e.start == Some(x_v)
                                && (e.mark.is_none() || e.mark == Some(phase))
                        }
                        (Some(e), false) => {
                            e.start == Some(x_v) && (e.mark.is_none() || e.mark == Some(phase))
                        }
                        (None, _) => false,
                    }
            };
            if !host_ok(b) {
                // A pending cross-observation read may open exactly the
                // element this TP needs (its leading read then serves
                // both TPs — the paper's operation sharing).
                b.discharge_pendings()?;
                if !host_ok(b) {
                    // Arrange the pre-element value (bridge writes join
                    // the element being closed — the paper's ⇑(r1,w0)
                    // junction shape), close it, flip the sweep phase if
                    // needed, then open the observation element.
                    b.ensure_value(Some(x_v))?;
                    b.close();
                    b.phase = phase;
                    if needs_leading_read {
                        b.push_read(x_v, None)?;
                    }
                }
            }
            // When the host is reusable, its leading read doubles as this
            // TP's observation — nothing to add.
            if let Some(v) = x_a {
                if b.cur != Some(v) {
                    b.push_write(v, None)?;
                }
            }
            match tp.excite {
                MemOp::Write(_, d) => b.push_write(d, Some(phase))?,
                MemOp::Read(_) => {
                    let expected = tp.observe.expected();
                    b.push_read(expected, Some(phase))?;
                }
                MemOp::Delay => return Err(ScheduleError::UnknownValue),
            }
        }
        Placement::AppendCross { phase } => {
            if b.phase != phase {
                b.discharge_pendings()?;
                b.close();
                b.phase = phase;
            }
            b.ensure_value(x_a)?;
            match tp.excite {
                MemOp::Write(_, d) => {
                    b.push_write(d, Some(phase))?;
                    if b.cur != Some(x_v) {
                        b.push_write(x_v, Some(phase))?;
                    }
                }
                MemOp::Read(_) => {
                    let expected = tp.observe.expected();
                    b.push_read(expected, Some(phase))?;
                    if b.cur != Some(x_v) {
                        b.push_write(x_v, Some(phase))?;
                    }
                }
                MemOp::Delay => return Err(ScheduleError::UnknownValue),
            }
            b.close();
            register_observation(b, tp, x_v, phase);
        }
    }
    Ok(())
}

fn register_observation(b: &mut Builder, tp: &TestPattern, x_v: Bit, phase: Direction) {
    if matches!(tp.observe, Observation::Read { .. }) {
        b.pendings.push(Pending {
            expected: x_v,
            mark: Some(phase),
        });
    }
}

/// Picks the cheapest feasible placement: a zero-cost excitation share in
/// the current phase, otherwise within/cross in the current phase before
/// the flipped one.
fn choose_placement(
    b: &Builder,
    tp: &TestPattern,
    aggr: Cell,
    x_a: Option<Bit>,
    x_v: Bit,
) -> Placement {
    // 1. Share an existing excitation (open element, or the element that
    //    just closed while its observation slot is still free).
    for phase in [b.phase, b.phase.reversed()] {
        // Sharing keeps the host element's sweep direction: the TP's
        // aggressor must be swept *second* in that phase for the
        // cross-observation shape.
        let second = match phase {
            Direction::Down => Cell::I,
            _ => Cell::J,
        };
        if aggr != second {
            continue;
        }
        let excite_matches = |slot: &Slot| -> bool {
            match (tp.excite, slot.op) {
                (MemOp::Write(_, d), MarchOp::Write(v)) => {
                    d == v && (x_a.is_none() || slot.pre == x_a)
                }
                (MemOp::Read(_), MarchOp::Read(v)) => {
                    tp.observe.expected() == v && (x_a.is_none() || slot.pre == x_a)
                }
                _ => false,
            }
        };
        if let Some(e) = &b.open {
            let mark_ok = e.mark.is_none() || e.mark == Some(phase);
            if mark_ok && e.ops.iter().any(excite_matches) {
                let fix_close = b.cur != Some(x_v);
                // A fixing write must not undo the shared excitation: the
                // excite op's effect on the aggressor has already fired
                // when the sweep reaches it, so a trailing write is fine;
                // but only a *write*-excite tolerates it (a shared read
                // excite needs the pre-value intact — it has it, reads
                // don't change values).
                if !fix_close || matches!(tp.excite, MemOp::Write(..)) {
                    return Placement::ShareCross { phase, fix_close };
                }
            }
        } else if b.last_closed_sharable {
            if let Some(e) = b.closed.last() {
                let mark_ok = e.mark.is_none() || e.mark == Some(phase);
                if mark_ok
                    && b.cur == Some(x_v)
                    && e.ops.iter().any(excite_matches)
                    && phase == b.phase
                {
                    return Placement::ShareCross {
                        phase,
                        fix_close: false,
                    };
                }
            }
        }
    }

    // 2. Within / cross placement, preferring the current phase.
    for phase in [b.phase, b.phase.reversed()] {
        let first = match phase {
            Direction::Down => Cell::J,
            _ => Cell::I,
        };
        if aggr == first {
            return Placement::Within { phase };
        }
    }
    // aggr is the second cell in the current phase.
    Placement::AppendCross { phase: b.phase }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::{parse_fault_list, requirements_for};

    fn tps_for(list: &str) -> Vec<TestPattern> {
        let models = parse_fault_list(list).unwrap();
        requirements_for(&models)
            .iter()
            .map(|r| r.alternatives[0])
            .collect()
    }

    /// §4 worked example: the tour TP3 → TP2 → TP4 → TP1 yields the 8n
    /// test `⇕(w0) ⇑(r0,w1) ⇑(r1,w0) ⇓(r0,w1) ⇓(r1)`.
    #[test]
    fn section4_worked_example_march() {
        let tps = tps_for("CFid<u,0>, CFid<u,1>");
        // indices: 0=TP1 (01,w1i,r1j), 1=TP2 (10,w1j,r1i),
        //          2=TP3 (00,w1i,r0j), 3=TP4 (00,w1j,r0i)
        let tour = [tps[2], tps[1], tps[3], tps[0]];
        let m = schedule_tour(&tour).expect("schedulable");
        assert_eq!(m.check_consistency(), Ok(()));
        assert_eq!(m.complexity(), 8, "{m}");
        let want: MarchTest = "⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1)"
            .parse()
            .unwrap();
        assert_eq!(m, want, "{m}");
    }

    /// Table 3 row 1 shape: SAF alone schedules to 4 operations.
    #[test]
    fn saf_tour_schedules_to_4n() {
        let tps = tps_for("SAF");
        let m = schedule_tour(&tps).expect("schedulable");
        assert_eq!(m.check_consistency(), Ok(()));
        assert_eq!(m.complexity(), 4, "{m}");
    }

    /// Table 3 row 2 shape: the subsumption-deduped SAF+TF tour
    /// (TF↑ then TF↓) schedules to 5 operations.
    #[test]
    fn saf_tf_tour_schedules_to_5n() {
        let tps = tps_for("TF"); // SAF patterns are subsumed by TF's
        let m = schedule_tour(&tps).expect("schedulable");
        assert_eq!(m.check_consistency(), Ok(()));
        assert_eq!(m.complexity(), 5, "{m}");
    }

    /// Table 3 row 6 shape: {CFid<↑,1>, CFid<↓,1>} admits a 5n test
    /// (the paper's `⇑(w0) ⇑(r0,w1,w0) ⇓(r0)`, "Not Found" in the
    /// literature) — via excitation sharing.
    #[test]
    fn cfid_row6_tour_schedules_to_5n() {
        let tps = tps_for("CFid<u,1>, CFid<d,1>");
        // tps: [P1=(00,w1i,r0j), P2=(00,w1j,r0i), P3=(10,w0i,r0j), P4=(01,w0j,r0i)]
        let tour = [tps[0], tps[2], tps[1], tps[3]];
        let m = schedule_tour(&tour).expect("schedulable");
        assert_eq!(m.check_consistency(), Ok(()));
        assert_eq!(m.complexity(), 5, "{m}");
    }

    /// A data-retention TP produces a standalone Del element.
    #[test]
    fn drf_schedules_delay_element() {
        let tps = tps_for("DRF<1>");
        let m = schedule_tour(&tps).expect("schedulable");
        assert_eq!(m.check_consistency(), Ok(()));
        assert_eq!(m.delay_count(), 1);
        // w1; Del; r1
        assert_eq!(m.complexity(), 2, "{m}");
    }

    /// SOF TPs produce the r-w-r same-element shape.
    #[test]
    fn sof_schedules_pre_read_and_immediate_read() {
        let tps = tps_for("SOF");
        let m = schedule_tour(&tps).expect("schedulable");
        assert_eq!(m.check_consistency(), Ok(()));
        let shaped = m.elements().iter().any(|e| {
            e.ops
                .windows(3)
                .any(|w| w[0].is_read() && w[1].is_write() && w[2].is_read())
        });
        assert!(shaped, "expected an r,w,r element: {m}");
    }

    /// Deceptive read-destructive faults schedule a double read.
    #[test]
    fn drdf_schedules_double_read() {
        let tps = tps_for("DRDF<0>");
        let m = schedule_tour(&tps).expect("schedulable");
        assert_eq!(m.check_consistency(), Ok(()));
        let seq = m.per_cell_sequence();
        let reads = seq.iter().filter(|o| o.is_read()).count();
        assert!(reads >= 2, "{m}");
    }

    /// Every scheduled tour over catalog TPs is read-consistent.
    #[test]
    fn random_tours_always_consistent() {
        let tps = tps_for("SAF, TF, CFin, CFid, ADF");
        // Walk a few deterministic permutations.
        let mut order: Vec<usize> = (0..tps.len()).collect();
        for round in 0..24 {
            order.rotate_left(1 + round % 3);
            if round % 2 == 0 {
                let last = order.len() - 1;
                order.swap(0, last);
            }
            let tour: Vec<TestPattern> = order.iter().map(|&k| tps[k]).collect();
            match schedule_tour(&tour) {
                Ok(m) => assert_eq!(m.check_consistency(), Ok(()), "round {round}: {m}"),
                Err(e) => panic!("round {round}: unschedulable: {e}"),
            }
        }
    }
}
