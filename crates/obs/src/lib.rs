//! Std-only observability kit for the marchgen workspace.
//!
//! Two halves, both zero-dependency and thread-safe:
//!
//! - [`Registry`]: a lock-sharded metrics registry holding counters,
//!   gauges, and fixed-bucket histograms, rendered on demand in the
//!   Prometheus text exposition format (`# HELP`/`# TYPE` metadata,
//!   escaped label values, cumulative histogram buckets).
//! - [`Tracer`]: a lightweight per-request span API. [`Tracer::span`]
//!   returns an RAII guard that measures wall time and, on drop, feeds
//!   an optional observer callback (used to populate phase-duration
//!   histograms) and a span tree that [`Tracer::finish`] assembles for
//!   `diagnostics.trace` blocks.
//!
//! Instruments are cheap `Arc` handles over atomics; the shard locks
//! are taken only on get-or-create and at render time, never on the
//! increment hot path. Every lock acquisition is poison-tolerant, so a
//! panic inside a scrape handler cannot wedge the registry for later
//! scrapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod trace;

pub use registry::{Counter, Gauge, Histogram, Registry};
pub use trace::{Span, SpanNode, Tracer};

/// Opens an RAII span on a [`Tracer`] for the rest of the enclosing
/// scope: `span!(tracer, "verify");` is shorthand for binding the
/// guard returned by [`Tracer::span`] to a scope-local.
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr) => {
        let _span = $tracer.span($name);
    };
}
