//! Lock-sharded metrics registry and the Prometheus text renderer.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of independent family-map shards. Instrument lookup hashes
/// the family name so unrelated families never contend on one lock.
const SHARDS: usize = 8;

/// A monotonically increasing counter.
///
/// `inc`/`add` are the normal write path. [`Counter::store`] exists
/// for *mirror* counters whose source of truth is an atomic owned by
/// another subsystem (cache, stream registry, server stats): the
/// scrape path copies the authoritative value in, so the JSON and
/// Prometheus views can never drift apart.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (mirror-counter sync; see type docs).
    pub fn store(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move in either direction.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations (microseconds, in
/// this workspace). Buckets are per-bucket internally and rendered
/// cumulatively, Prometheus-style, with a trailing `+Inf` bucket plus
/// `_sum` and `_count` series.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing. The implicit
    /// `+Inf` bucket is `counts[bounds.len()]`.
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.to_vec(),
            counts,
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|bound| value <= *bound)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Cumulative counts per bound (same order as the constructor's
    /// bounds), plus the `+Inf` total last.
    #[must_use]
    pub fn cumulative(&self) -> Vec<u64> {
        let mut running = 0u64;
        self.counts
            .iter()
            .map(|c| {
                running += c.load(Ordering::Relaxed);
                running
            })
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric family: shared metadata plus a child instrument per
/// distinct label set. `BTreeMap` keys give a deterministic render
/// order regardless of registration order.
#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    children: BTreeMap<Vec<(String, String)>, Instrument>,
}

/// Lock-sharded instrument registry.
///
/// `counter`/`gauge`/`histogram` are get-or-create: the first call
/// registers the family (name, help text, kind) and every call
/// returns a cheap `Arc` handle to the per-label-set instrument.
/// Updates through a handle touch only atomics; the shard mutexes
/// guard the family maps and are poison-tolerant.
#[derive(Debug, Default)]
pub struct Registry {
    shards: [Mutex<HashMap<String, Family>>; SHARDS],
}

/// Point-in-time copy of one family taken under the shard lock:
/// `(help, kind, children)`.
type FamilySnapshot = (String, Kind, Vec<(Vec<(String, String)>, Instrument)>);

fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect()
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    fn shard(&self, name: &str) -> MutexGuard<'_, HashMap<String, Family>> {
        let idx = (fnv1a(name) % SHARDS as u64) as usize;
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        bounds: Option<&[u64]>,
    ) -> Instrument {
        let mut shard = self.shard(name);
        let family = shard.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            kind,
            children: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric family `{name}` re-registered as {} (was {})",
            kind.as_str(),
            family.kind.as_str()
        );
        family
            .children
            .entry(own_labels(labels))
            .or_insert_with(|| match kind {
                Kind::Counter => Instrument::Counter(Arc::new(Counter::default())),
                Kind::Gauge => Instrument::Gauge(Arc::new(Gauge::default())),
                Kind::Histogram => {
                    Instrument::Histogram(Arc::new(Histogram::new(bounds.unwrap_or(&[]))))
                }
            })
            .clone()
    }

    /// Get-or-create the counter `name{labels}`.
    #[must_use]
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.instrument(name, help, Kind::Counter, labels, None) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    /// Get-or-create the gauge `name{labels}`.
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.instrument(name, help, Kind::Gauge, labels, None) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    /// Get-or-create the histogram `name{labels}` with the given
    /// inclusive bucket upper bounds (strictly increasing; the `+Inf`
    /// bucket is implicit). Bounds are fixed by the first
    /// registration of each child.
    #[must_use]
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        match self.instrument(name, help, Kind::Histogram, labels, Some(bounds)) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    /// Renders every registered family in the Prometheus text
    /// exposition format (version 0.0.4): families sorted by name,
    /// `# HELP` and `# TYPE` before the samples, label values
    /// escaped, histogram buckets cumulative with a `+Inf` bucket and
    /// `_sum`/`_count` series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut families: BTreeMap<String, FamilySnapshot> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (name, family) in shard.iter() {
                let children = family
                    .children
                    .iter()
                    .map(|(labels, instrument)| (labels.clone(), instrument.clone()))
                    .collect();
                families.insert(name.clone(), (family.help.clone(), family.kind, children));
            }
        }

        let mut out = String::new();
        for (name, (help, kind, children)) in &families {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(out, "# TYPE {name} {}", kind.as_str());
            for (labels, instrument) in children {
                match instrument {
                    Instrument::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                    }
                    Instrument::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), g.get());
                    }
                    Instrument::Histogram(h) => {
                        let cumulative = h.cumulative();
                        for (bound, count) in h.bounds.iter().zip(&cumulative) {
                            let le = bound.to_string();
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {count}",
                                render_labels(labels, Some(&le))
                            );
                        }
                        let total = cumulative.last().copied().unwrap_or(0);
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {total}",
                            render_labels(labels, Some("+Inf"))
                        );
                        let _ =
                            writeln!(out, "{name}_sum{} {}", render_labels(labels, None), h.sum());
                        let _ =
                            writeln!(out, "{name}_count{} {total}", render_labels(labels, None));
                    }
                }
            }
        }
        out
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (key, value) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_metadata() {
        let registry = Registry::new();
        let hits = registry.counter("cache_hits_total", "Cache hits.", &[("tier", "memory")]);
        hits.add(3);
        registry
            .counter("cache_hits_total", "Cache hits.", &[("tier", "disk")])
            .inc();
        let gauge = registry.gauge("in_flight", "Requests in flight.", &[]);
        gauge.set(2);
        gauge.sub(1);
        let text = registry.render();
        assert!(text.contains("# HELP cache_hits_total Cache hits.\n"));
        assert!(text.contains("# TYPE cache_hits_total counter\n"));
        // BTreeMap order: disk before memory.
        let disk = text.find("cache_hits_total{tier=\"disk\"} 1").unwrap();
        let memory = text.find("cache_hits_total{tier=\"memory\"} 3").unwrap();
        assert!(disk < memory);
        assert!(text.contains("# TYPE in_flight gauge\n"));
        assert!(text.contains("\nin_flight 1\n"));
    }

    #[test]
    fn histogram_buckets_render_cumulative_and_sum_consistent() {
        let registry = Registry::new();
        let h = registry.histogram(
            "latency",
            "Latency.",
            &[("endpoint", "/x")],
            &[10, 100, 1000],
        );
        for value in [5, 7, 50, 5000] {
            h.observe(value);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5062);
        assert_eq!(h.cumulative(), vec![2, 3, 3, 4]);
        let text = registry.render();
        assert!(text.contains("latency_bucket{endpoint=\"/x\",le=\"10\"} 2\n"));
        assert!(text.contains("latency_bucket{endpoint=\"/x\",le=\"100\"} 3\n"));
        assert!(text.contains("latency_bucket{endpoint=\"/x\",le=\"1000\"} 3\n"));
        assert!(text.contains("latency_bucket{endpoint=\"/x\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("latency_sum{endpoint=\"/x\"} 5062\n"));
        assert!(text.contains("latency_count{endpoint=\"/x\"} 4\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter(
                "odd_total",
                "Hostile\nhelp \\ text",
                &[("name", "a\"b\\c\nd")],
            )
            .inc();
        let text = registry.render();
        assert!(text.contains("# HELP odd_total Hostile\\nhelp \\\\ text\n"));
        assert!(text.contains("odd_total{name=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn handles_are_shared_across_lookups() {
        let registry = Registry::new();
        let a = registry.counter("shared_total", "Shared.", &[]);
        let b = registry.counter("shared_total", "Shared.", &[]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn counter_store_overwrites_for_mirrors() {
        let registry = Registry::new();
        let mirror = registry.counter("mirror_total", "Mirrored.", &[]);
        mirror.store(41);
        mirror.store(42);
        assert_eq!(mirror.get(), 42);
    }
}
