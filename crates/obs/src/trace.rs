//! Per-request span tracing: RAII wall-clock timers feeding an
//! optional observer (phase histograms) and an optional span tree
//! (the `diagnostics.trace` wire block).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// One closed span as recorded in flat form before tree assembly.
#[derive(Debug)]
struct Record {
    name: &'static str,
    parent: Option<usize>,
    micros: u64,
}

#[derive(Debug, Default)]
struct TraceState {
    records: Vec<Record>,
    /// Indices of currently-open spans, innermost last. New spans
    /// parent onto the top of this stack.
    stack: Vec<usize>,
}

#[derive(Debug, Default)]
struct TraceTree {
    state: Mutex<TraceState>,
    /// Latched by [`Tracer::record`]/span drops after `finish`; not
    /// an error, but keeps late closes from corrupting the stack.
    finished: AtomicBool,
}

type Observer = dyn Fn(&'static str, u64) + Send + Sync;

/// A per-request trace context. Cloning shares the underlying tree.
///
/// Two independent switches:
/// - an **observer** callback, invoked with `(name, micros)` every
///   time a live [`Span`] guard drops — the daemon points this at its
///   phase-duration histograms, so histograms fill even when no trace
///   was requested;
/// - a **tree**, enabled per request (`?trace=1` / `X-Trace: 1`),
///   collecting spans for [`Tracer::finish`].
///
/// [`Tracer::record`] inserts a span with an externally measured
/// duration (the generator's `Diagnostics` micros) into the tree
/// *without* invoking the observer, so phases measured by the
/// generator itself are never double-counted.
#[derive(Clone, Default)]
pub struct Tracer {
    tree: Option<Arc<TraceTree>>,
    observer: Option<Arc<Observer>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("tree", &self.tree.is_some())
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl Tracer {
    /// A tracer with no tree and no observer; spans opened on it are
    /// pure no-ops.
    #[must_use]
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer that collects a span tree when `collect_tree` is
    /// true. Chain [`Tracer::with_observer`] to also feed histograms.
    #[must_use]
    pub fn new(collect_tree: bool) -> Tracer {
        Tracer {
            tree: collect_tree.then(|| Arc::new(TraceTree::default())),
            observer: None,
        }
    }

    /// Attaches an observer invoked with `(span name, micros)` on
    /// every live span drop.
    #[must_use]
    pub fn with_observer(
        mut self,
        observer: impl Fn(&'static str, u64) + Send + Sync + 'static,
    ) -> Tracer {
        self.observer = Some(Arc::new(observer));
        self
    }

    /// True when this tracer is collecting a span tree.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.tree.is_some()
    }

    /// Opens a wall-clock span; it closes (and reports) when the
    /// returned guard drops. See also the [`crate::span!`] macro.
    #[must_use = "dropping the guard immediately records a zero-length span"]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            tracer: self,
            name,
            started: Instant::now(),
            index: self.open(name),
        }
    }

    /// Inserts a span with an externally measured duration. The
    /// `children` closure runs with the span open, so nested
    /// `record`/`span` calls parent underneath it. The observer is
    /// *not* invoked (see type docs).
    pub fn record(&self, name: &'static str, micros: u64, children: impl FnOnce(&Tracer)) {
        let index = self.open(name);
        children(self);
        if let Some(index) = index {
            self.close(index, micros);
        }
    }

    fn open(&self, name: &'static str) -> Option<usize> {
        let tree = self.tree.as_ref()?;
        if tree.finished.load(Ordering::Relaxed) {
            return None;
        }
        let mut state = tree.state.lock().unwrap_or_else(PoisonError::into_inner);
        let parent = state.stack.last().copied();
        let index = state.records.len();
        state.records.push(Record {
            name,
            parent,
            micros: 0,
        });
        state.stack.push(index);
        Some(index)
    }

    fn close(&self, index: usize, micros: u64) {
        let Some(tree) = self.tree.as_ref() else {
            return;
        };
        let mut state = tree.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(record) = state.records.get_mut(index) {
            record.micros = micros;
        }
        state.stack.retain(|open| *open != index);
    }

    /// Assembles and returns the collected span tree (the roots, in
    /// open order). Returns an empty vec when tracing is off or no
    /// spans were recorded. Later spans are ignored.
    #[must_use]
    pub fn finish(&self) -> Vec<SpanNode> {
        let Some(tree) = self.tree.as_ref() else {
            return Vec::new();
        };
        tree.finished.store(true, Ordering::Relaxed);
        let state = tree.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); state.records.len()];
        let mut roots = Vec::new();
        for (index, record) in state.records.iter().enumerate() {
            match record.parent {
                Some(parent) => children[parent].push(index),
                None => roots.push(index),
            }
        }
        roots
            .into_iter()
            .map(|root| build_node(root, &state.records, &children))
            .collect()
    }
}

fn build_node(index: usize, records: &[Record], children: &[Vec<usize>]) -> SpanNode {
    SpanNode {
        name: records[index].name,
        micros: records[index].micros,
        children: children[index]
            .iter()
            .map(|child| build_node(*child, records, children))
            .collect(),
    }
}

/// RAII guard returned by [`Tracer::span`]; reports the span's
/// wall-clock duration when dropped.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately records ~0µs"]
pub struct Span<'t> {
    tracer: &'t Tracer,
    name: &'static str,
    started: Instant,
    index: Option<usize>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let micros = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        if let Some(observer) = &self.tracer.observer {
            observer(self.name, micros);
        }
        if let Some(index) = self.index {
            self.tracer.close(index, micros);
        }
    }
}

/// One node of an assembled span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name (phase label).
    pub name: &'static str,
    /// Wall-clock (or externally measured) duration in microseconds.
    pub micros: u64,
    /// Child spans, in open order.
    pub children: Vec<SpanNode>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        {
            crate::span!(tracer, "noop");
        }
        assert!(tracer.finish().is_empty());
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let tracer = Tracer::new(true);
        {
            let _request = tracer.span("request");
            {
                crate::span!(tracer, "decode");
            }
            tracer.record("generate", 120, |t| {
                t.record("expand", 30, |_| {});
                t.record("search", 80, |_| {});
            });
        }
        let roots = tracer.finish();
        assert_eq!(roots.len(), 1);
        let request = &roots[0];
        assert_eq!(request.name, "request");
        let names: Vec<&str> = request.children.iter().map(|c| c.name).collect();
        assert_eq!(names, ["decode", "generate"]);
        let generate = &request.children[1];
        assert_eq!(generate.micros, 120);
        assert_eq!(
            generate.children[0],
            SpanNode {
                name: "expand",
                micros: 30,
                children: Vec::new()
            }
        );
        assert_eq!(generate.children[1].micros, 80);
    }

    #[test]
    fn observer_sees_live_spans_but_not_recorded_ones() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen_in = Arc::clone(&seen);
        let tracer = Tracer::new(false).with_observer(move |name, _| {
            assert_eq!(name, "live");
            seen_in.fetch_add(1, Ordering::Relaxed);
        });
        {
            crate::span!(tracer, "live");
        }
        tracer.record("synthesized", 10, |_| {});
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn finish_ignores_later_spans() {
        let tracer = Tracer::new(true);
        tracer.record("first", 5, |_| {});
        let roots = tracer.finish();
        assert_eq!(roots.len(), 1);
        tracer.record("late", 7, |_| {});
        assert_eq!(tracer.finish().len(), 1);
    }
}
