//! A minimal, strict HTTP/1.1 codec over blocking streams.
//!
//! Scope is exactly what the service front-end needs: request-line +
//! header parsing with hard limits, `Content-Length` bodies (chunked
//! uploads are rejected — the wire format is small JSON documents),
//! keep-alive by default, and structured JSON error responses. Every
//! limit violation maps to a proper status code instead of a dropped
//! connection.
//!
//! Two response shapes exist. [`Response`] is the buffered one: the
//! whole body is assembled first and serialized with an explicit
//! `Content-Length`. [`StreamResponse`] is the incremental one: the
//! handler hands over a producer callback and the engine serializes
//! whatever it emits as `Transfer-Encoding: chunked` frames through a
//! [`ChunkSink`] — this is what feeds the daemon's `/v1/stream`
//! progress endpoint, where a multi-second batch reports per-item
//! completions as they happen instead of a silent buffered POST.

use marchgen_json::Json;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// Longest accepted request line (method + path + version).
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted single header line.
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Longest client-supplied `X-Request-Id` honored verbatim; anything
/// longer (or carrying non-printable bytes) is replaced by a generated
/// id rather than echoed into logs and headers.
const MAX_REQUEST_ID: usize = 128;

static REQUEST_ID_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique request id (`req-<pid>-<seq>`), used when the
/// client did not supply a usable `X-Request-Id`.
#[must_use]
pub fn next_request_id() -> String {
    format!(
        "req-{:x}-{:x}",
        std::process::id(),
        REQUEST_ID_SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// The path component as sent, query string included; route on
    /// [`Request::route_path`] and read parameters via
    /// [`Request::query_param`].
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// `true` when the request line said `HTTP/1.0`, whose connection
    /// default is close (1.1 defaults to keep-alive).
    pub http10: bool,
    /// The request's correlation id: the client's `X-Request-Id` header
    /// when it is printable ASCII of a sane length, otherwise generated
    /// (`req-<pid>-<seq>`). Echoed on every response and in the
    /// engine's log lines.
    pub request_id: String,
}

impl Request {
    /// First header value under `name` (case-insensitive). For headers
    /// where a duplicate changes framing (`Content-Length`,
    /// `Transfer-Encoding`) the parser rejects the request *before*
    /// this accessor can be reached with conflicting values — a request
    /// smuggled behind a proxy must never be served using whichever
    /// copy this happens to return.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value carried under `name` (case-insensitive), in order.
    #[must_use]
    pub fn header_values(&self, name: &str) -> Vec<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// The path with any query string removed — what routing matches
    /// on (`/v1/stream?resume=x` routes as `/v1/stream`).
    #[must_use]
    pub fn route_path(&self) -> &str {
        match self.path.split_once('?') {
            Some((path, _)) => path,
            None => &self.path,
        }
    }

    /// The raw value of query parameter `name` (`?a=1&b=2` style).
    /// Values are returned byte-for-byte as sent — no percent-decoding;
    /// the service API's parameters (resume tokens, sequence numbers)
    /// are plain `[0-9a-z-]` text. A key without `=` yields `Some("")`.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let (_, query) = self.path.split_once('?')?;
        query.split('&').find_map(|pair| {
            let (key, value) = match pair.split_once('=') {
                Some((key, value)) => (key, value),
                None => (pair, ""),
            };
            (key == name).then_some(value)
        })
    }

    /// `true` when the connection should drop after this exchange: the
    /// client said `Connection: close`, or spoke HTTP/1.0 without
    /// opting into keep-alive (1.0's default is close).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(value) => value.eq_ignore_ascii_case("close"),
            None => self.http10,
        }
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (reason phrase derived).
    pub status: u16,
    /// Response body bytes.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Close the connection after sending (errors that leave the stream
    /// in an undefined position always close).
    pub close: bool,
    /// Ask the server to begin a graceful shutdown once this response
    /// is on the wire (used by the admin shutdown endpoint).
    pub shutdown: bool,
    /// When set, a `Retry-After: <seconds>` header is emitted — the
    /// standard companion of `429`/`503` answers telling well-behaved
    /// clients how long to back off before retrying.
    pub retry_after: Option<u64>,
    /// When set, an `X-Request-Id: <id>` header is emitted. Handlers
    /// normally leave this `None`; the connection engine stamps the
    /// request's id onto every response — including rejects — before
    /// serialization.
    pub request_id: Option<String>,
}

impl Response {
    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(doc: &Json) -> Response {
        Response {
            status: 200,
            body: doc.render(),
            content_type: "application/json",
            close: false,
            shutdown: false,
            retry_after: None,
            request_id: None,
        }
    }

    /// A `200 OK` plain-text response with an explicit content type —
    /// the Prometheus `/metrics` exposition
    /// (`text/plain; version=0.0.4`), for example.
    #[must_use]
    pub fn text(body: String, content_type: &'static str) -> Response {
        Response {
            status: 200,
            body,
            content_type,
            close: false,
            shutdown: false,
            retry_after: None,
            request_id: None,
        }
    }

    /// A structured JSON error: `{"error": {"status", "code", "message"}}`.
    #[must_use]
    pub fn error(status: u16, code: &str, message: impl Into<String>) -> Response {
        let doc = Json::object([(
            "error",
            Json::object([
                ("status", Json::Int(i64::from(status))),
                ("code", Json::from(code)),
                ("message", Json::Str(message.into())),
            ]),
        )]);
        Response {
            status,
            body: doc.render(),
            content_type: "application/json",
            // 4xx responses keep the connection when the stream is
            // still in sync; the parser overrides `close` when not.
            close: status >= 500,
            shutdown: false,
            retry_after: None,
            request_id: None,
        }
    }

    /// Builder-style: close the connection after this response.
    #[must_use]
    pub fn with_close(mut self) -> Response {
        self.close = true;
        self
    }

    /// Builder-style: trigger graceful server shutdown after sending.
    #[must_use]
    pub fn with_shutdown(mut self) -> Response {
        self.shutdown = true;
        self
    }

    /// Builder-style: advertise `Retry-After: seconds` (for `429`/`503`
    /// answers from the rate limiter and the drain path).
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Builder-style: echo `id` as the `X-Request-Id` header.
    #[must_use]
    pub fn with_request_id(mut self, id: impl Into<String>) -> Response {
        self.request_id = Some(id.into());
        self
    }

    /// Serializes onto `stream` (HTTP/1.1, explicit `Content-Length`).
    /// The whole response is assembled in memory and written in one
    /// call, so it leaves as a single segment on unfragmented paths.
    ///
    /// # Errors
    ///
    /// Propagates stream write failures.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let connection = if self.close { "close" } else { "keep-alive" };
        let retry = match self.retry_after {
            Some(seconds) => format!("retry-after: {seconds}\r\n"),
            None => String::new(),
        };
        let request_id = match &self.request_id {
            Some(id) => format!("x-request-id: {id}\r\n"),
            None => String::new(),
        };
        let mut wire = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{retry}{request_id}connection: {connection}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        );
        wire.push_str(&self.body);
        stream.write_all(wire.as_bytes())?;
        stream.flush()
    }
}

/// The serializer side of a [`StreamResponse`]: the engine constructs
/// one over the connection and hands it to the producer callback, which
/// emits body frames through it. Each frame leaves as one
/// `Transfer-Encoding: chunked` chunk (flushed immediately, so clients
/// observe progress in real time); against an HTTP/1.0 peer — which
/// predates chunked encoding — frames are written raw and the body is
/// delimited by connection close instead.
pub struct ChunkSink<'a> {
    writer: &'a mut (dyn Write + Send),
    chunked: bool,
}

impl ChunkSink<'_> {
    /// Writes one body frame (one chunk) and flushes it to the wire.
    ///
    /// # Errors
    ///
    /// Propagates stream write failures — typically the peer hanging
    /// up mid-stream. Producers should treat an error as "nobody is
    /// listening" and stop emitting (already-running work may finish).
    pub fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        if frame.is_empty() {
            // An empty chunk would terminate the chunked body early.
            return Ok(());
        }
        // Chaos site: `delay(...)` models a slow peer / congested
        // socket, `err` models the peer hanging up mid-stream.
        marchgen_failpoint::fail_point!("daemon.socket.write", |msg: String| {
            Err(std::io::Error::other(msg))
        });
        if self.chunked {
            write!(self.writer, "{:x}\r\n", frame.len())?;
            self.writer.write_all(frame)?;
            self.writer.write_all(b"\r\n")?;
        } else {
            self.writer.write_all(frame)?;
        }
        self.writer.flush()
    }

    /// Renders `doc` and sends it as one newline-terminated frame —
    /// the JSON-lines convention of the `/v1/stream` wire format.
    ///
    /// # Errors
    ///
    /// Propagates stream write failures (see [`ChunkSink::send`]).
    pub fn send_json(&mut self, doc: &Json) -> std::io::Result<()> {
        let mut line = doc.render();
        line.push('\n');
        self.send(line.as_bytes())
    }
}

/// The producer callback of a [`StreamResponse`]: invoked exactly once
/// with the live [`ChunkSink`] after the response head is on the wire.
pub type StreamProducer = Box<dyn FnOnce(&mut ChunkSink<'_>) -> std::io::Result<()> + Send>;

/// An incremental response: status and headers are decided up front,
/// the body is produced frame-by-frame while the handler's work runs.
/// Built by handlers via [`StreamResponse::new`] and returned through
/// [`Reply::Stream`](crate::server::Reply); the connection engine owns
/// serialization (chunked framing, the terminal zero chunk, keep-alive
/// bookkeeping).
pub struct StreamResponse {
    /// Status code sent before the first frame (the producer cannot
    /// change it later — validate the request *before* streaming).
    pub status: u16,
    /// `Content-Type` header value; defaults to `application/x-ndjson`
    /// (one JSON document per line).
    pub content_type: &'static str,
    /// Close the connection after the stream completes instead of
    /// keeping it alive for the next request.
    pub close: bool,
    /// When set, an `X-Request-Id: <id>` header is emitted with the
    /// head; stamped by the connection engine like
    /// [`Response::request_id`].
    pub request_id: Option<String>,
    producer: StreamProducer,
}

impl StreamResponse {
    /// A `200` JSON-lines stream whose body is written by `producer`.
    #[must_use]
    pub fn new(
        producer: impl FnOnce(&mut ChunkSink<'_>) -> std::io::Result<()> + Send + 'static,
    ) -> StreamResponse {
        StreamResponse {
            status: 200,
            content_type: "application/x-ndjson",
            close: false,
            request_id: None,
            producer: Box::new(producer),
        }
    }

    /// Builder-style: close the connection once the stream completes.
    #[must_use]
    pub fn with_close(mut self) -> StreamResponse {
        self.close = true;
        self
    }

    /// Serializes the head, runs the producer, and terminates the body.
    /// `http10` selects the framing: chunked for HTTP/1.1, raw bytes +
    /// connection close for HTTP/1.0 (which predates chunked encoding).
    /// Returns `true` when the connection may be kept alive — only a
    /// chunked stream that completed without error keeps its framing
    /// synchronized.
    ///
    /// # Errors
    ///
    /// Propagates write failures from the head, the producer, or the
    /// terminal chunk; the connection must close in every error case.
    pub fn write_to(self, stream: &mut (impl Write + Send), http10: bool) -> std::io::Result<bool> {
        let close = self.close || http10;
        let connection = if close { "close" } else { "keep-alive" };
        let framing = if http10 {
            String::new()
        } else {
            "transfer-encoding: chunked\r\n".to_owned()
        };
        let request_id = match &self.request_id {
            Some(id) => format!("x-request-id: {id}\r\n"),
            None => String::new(),
        };
        write!(
            stream,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n{framing}{request_id}connection: {connection}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
        )?;
        stream.flush()?;
        let mut sink = ChunkSink {
            writer: stream,
            chunked: !http10,
        };
        (self.producer)(&mut sink)?;
        if !http10 {
            stream.write_all(b"0\r\n\r\n")?;
        }
        stream.flush()?;
        Ok(!close)
    }
}

impl std::fmt::Debug for StreamResponse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamResponse")
            .field("status", &self.status)
            .field("content_type", &self.content_type)
            .field("close", &self.close)
            .finish_non_exhaustive()
    }
}

/// Canonical reason phrases for the codes this daemon emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        411 => "Length Required",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The outcome of reading one request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, well-formed request.
    Complete(Request),
    /// The peer closed (or timed out) between requests — a normal
    /// keep-alive termination, nothing to answer.
    Closed,
    /// The request violated the protocol or a limit; answer with this
    /// response (already marked close) and drop the connection.
    Reject(Response),
}

fn reject(status: u16, code: &str, message: impl Into<String>) -> ReadOutcome {
    ReadOutcome::Reject(Response::error(status, code, message).with_close())
}

/// Reads one line terminated by `\n` (tolerating `\r\n`), bounded.
/// `Ok(None)` on clean EOF before any byte.
fn read_line(
    reader: &mut impl BufRead,
    limit: usize,
) -> std::io::Result<Option<Result<String, ()>>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return Ok(if line.is_empty() { None } else { Some(Err(())) });
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(String::from_utf8(line).map_err(|_| ())));
                }
                if line.len() >= limit {
                    return Ok(Some(Err(())));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reads and validates one request. `max_body` bounds the accepted
/// `Content-Length`; larger bodies are answered `413` without reading.
///
/// # Errors
///
/// Propagates underlying I/O failures (including read timeouts, which
/// the server layer treats as [`ReadOutcome::Closed`]).
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> std::io::Result<ReadOutcome> {
    // ---- request line ---------------------------------------------------
    let line = match read_line(reader, MAX_REQUEST_LINE)? {
        None => return Ok(ReadOutcome::Closed),
        Some(Err(())) => return Ok(reject(400, "bad_request_line", "unreadable request line")),
        Some(Ok(line)) => line,
    };
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
            (m.to_owned(), p.to_owned(), v)
        }
        _ => {
            return Ok(reject(
                400,
                "bad_request_line",
                format!("malformed request line {line:?}"),
            ))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Ok(reject(
            400,
            "bad_version",
            format!("unsupported protocol version {version:?}"),
        ));
    }

    // ---- headers --------------------------------------------------------
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(reader, MAX_HEADER_LINE)? {
            None => {
                return Ok(reject(
                    400,
                    "truncated_headers",
                    "connection closed mid-headers",
                ))
            }
            Some(Err(())) => {
                return Ok(reject(431, "oversized_header", "header line exceeds limit"))
            }
            Some(Ok(line)) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Ok(reject(
                431,
                "too_many_headers",
                "more headers than accepted",
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(reject(
                400,
                "bad_header",
                format!("malformed header {line:?}"),
            ));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request_id = headers
        .iter()
        .find(|(n, _)| n == "x-request-id")
        .map(|(_, v)| v.as_str())
        .filter(|id| {
            !id.is_empty() && id.len() <= MAX_REQUEST_ID && id.bytes().all(|b| b.is_ascii_graphic())
        })
        .map_or_else(next_request_id, str::to_owned);
    let mut request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
        http10: version == "HTTP/1.0",
        request_id,
    };

    // ---- body -----------------------------------------------------------
    // Framing headers are checked for *conflicts first*: a request
    // carrying two Content-Length values (or Content-Length next to
    // Transfer-Encoding) is the classic smuggling shape behind a proxy
    // that resolves the ambiguity differently than we would. Serving it
    // using "the first matching header" silently picks a side; reject
    // the whole request instead.
    let lengths = request.header_values("content-length");
    if lengths.len() > 1 {
        return Ok(reject(
            400,
            "duplicate_content_length",
            format!(
                "{} content-length headers in one request; requests must carry at most one",
                lengths.len()
            ),
        ));
    }
    // Transfer-Encoding gets the same every-copy treatment: a proxy in
    // front joins repeated lines into one comma list ("identity,
    // chunked"), so inspecting only the first copy would let the
    // chunked rejection be bypassed by a duplicate header line.
    let encodings = request.header_values("transfer-encoding");
    if encodings.len() > 1 {
        return Ok(reject(
            400,
            "duplicate_transfer_encoding",
            format!(
                "{} transfer-encoding headers in one request; requests must carry at most one",
                encodings.len()
            ),
        ));
    }
    if !lengths.is_empty() && !encodings.is_empty() {
        return Ok(reject(
            400,
            "conflicting_framing",
            "content-length and transfer-encoding must not be combined",
        ));
    }
    if encodings
        .first()
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Ok(reject(
            411,
            "length_required",
            "chunked transfer encoding is not supported; send Content-Length",
        ));
    }
    let content_length = match lengths.first() {
        None => 0,
        Some(text) => match text.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Ok(reject(
                    400,
                    "bad_content_length",
                    format!("unparseable content-length {text:?}"),
                ))
            }
        },
    };
    if content_length > max_body {
        return Ok(reject(
            413,
            "body_too_large",
            format!("request body of {content_length} bytes exceeds the {max_body} byte limit"),
        ));
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length];
        if reader.read_exact(&mut body).is_err() {
            return Ok(reject(400, "truncated_body", "connection closed mid-body"));
        }
        request.body = body;
    }
    Ok(ReadOutcome::Complete(request))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> ReadOutcome {
        read_request(&mut BufReader::new(text.as_bytes()), 1024).unwrap()
    }

    #[test]
    fn parses_a_post_with_body() {
        let outcome =
            parse("POST /v1/generate HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello");
        let ReadOutcome::Complete(req) = outcome else {
            panic!("expected a complete request, got {outcome:?}");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/generate");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn get_without_body() {
        let ReadOutcome::Complete(req) = parse("GET /v1/health HTTP/1.1\r\n\r\n") else {
            panic!("expected complete");
        };
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn route_path_and_query_params_split_correctly() {
        let ReadOutcome::Complete(req) =
            parse("GET /v1/stream?resume=b-12ab&from=7&flag HTTP/1.1\r\n\r\n")
        else {
            panic!("expected complete");
        };
        assert_eq!(req.path, "/v1/stream?resume=b-12ab&from=7&flag");
        assert_eq!(req.route_path(), "/v1/stream");
        assert_eq!(req.query_param("resume"), Some("b-12ab"));
        assert_eq!(req.query_param("from"), Some("7"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("missing"), None);
        let ReadOutcome::Complete(req) = parse("GET /v1/stream HTTP/1.1\r\n\r\n") else {
            panic!("expected complete");
        };
        assert_eq!(req.route_path(), "/v1/stream");
        assert_eq!(req.query_param("resume"), None);
    }

    #[test]
    fn client_request_ids_are_honored_or_replaced() {
        let ReadOutcome::Complete(req) =
            parse("GET /v1/health HTTP/1.1\r\nX-Request-Id: trace-41\r\n\r\n")
        else {
            panic!("expected complete");
        };
        assert_eq!(req.request_id, "trace-41");
        // Unusable ids (whitespace/control bytes, oversized, empty) are
        // replaced by a generated one rather than echoed verbatim into
        // headers and logs.
        for bad in [
            "X-Request-Id: has space\r\n".to_owned(),
            "X-Request-Id: \r\n".to_owned(),
            format!("X-Request-Id: {}\r\n", "x".repeat(200)),
        ] {
            let ReadOutcome::Complete(req) = parse(&format!("GET / HTTP/1.1\r\n{bad}\r\n")) else {
                panic!("expected complete");
            };
            assert!(req.request_id.starts_with("req-"), "{}", req.request_id);
        }
        // Absent header: generated, and unique per request.
        let parse_id = || match parse("GET / HTTP/1.1\r\n\r\n") {
            ReadOutcome::Complete(req) => req.request_id,
            other => panic!("expected complete, got {other:?}"),
        };
        let (a, b) = (parse_id(), parse_id());
        assert!(a.starts_with("req-"));
        assert_ne!(a, b);
    }

    #[test]
    fn responses_echo_the_request_id_header() {
        let mut wire = Vec::new();
        Response::error(404, "not_found", "no route")
            .with_request_id("trace-9")
            .write_to(&mut wire)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("x-request-id: trace-9\r\n"), "{text}");

        let mut wire = Vec::new();
        let mut stream = StreamResponse::new(|sink| sink.send(b"x\n"));
        stream.request_id = Some("trace-10".to_owned());
        stream.write_to(&mut wire, false).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("x-request-id: trace-10\r\n"), "{text}");
    }

    #[test]
    fn eof_before_bytes_is_a_clean_close() {
        assert!(matches!(parse(""), ReadOutcome::Closed));
    }

    #[test]
    fn oversized_body_rejects_with_413() {
        let outcome = parse("POST /v1/generate HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
        let ReadOutcome::Reject(resp) = outcome else {
            panic!("expected a reject");
        };
        assert_eq!(resp.status, 413);
        assert!(resp.close);
        assert!(resp.body.contains("body_too_large"));
    }

    #[test]
    fn garbage_rejects_with_400() {
        for bad in [
            "NOT A REQUEST\r\n\r\n",
            "GET missing-slash HTTP/1.1\r\n\r\n",
            "GET /x HTTP/3.0\r\n\r\n",
            "GET /x HTTP/1.1\r\nbroken header line\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let outcome = parse(bad);
            let ReadOutcome::Reject(resp) = outcome else {
                panic!("{bad:?} should reject, got {outcome:?}");
            };
            assert_eq!(resp.status, 400, "{bad:?}");
        }
    }

    /// Duplicate `Content-Length` headers — equal or conflicting — are
    /// the request-smuggling shape: a proxy in front may frame the body
    /// with one copy while we frame it with the other. Reject with a
    /// structured 400 instead of serving whichever header comes first.
    #[test]
    fn duplicate_content_length_is_rejected() {
        for bad in [
            // conflicting values
            "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello",
            // equal values are rejected too: a smuggler controls both
            "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello",
            // case variations collapse onto the same header name
            "POST /x HTTP/1.1\r\ncontent-length: 5\r\nCONTENT-LENGTH: 99\r\n\r\nhello",
        ] {
            let outcome = parse(bad);
            let ReadOutcome::Reject(resp) = outcome else {
                panic!("{bad:?} should reject, got {outcome:?}");
            };
            assert_eq!(resp.status, 400, "{bad:?}");
            assert!(resp.close, "desynchronized stream must drop");
            assert!(
                resp.body.contains("duplicate_content_length"),
                "{}",
                resp.body
            );
        }
    }

    /// `Content-Length` combined with `Transfer-Encoding` (any value,
    /// chunked or identity) is the other smuggling vector: the two
    /// frame the body differently. Structured 400, not 411.
    #[test]
    fn content_length_with_transfer_encoding_is_rejected() {
        for bad in [
            "POST /x HTTP/1.1\r\nContent-Length: 5\r\nTransfer-Encoding: chunked\r\n\r\nhello",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: identity\r\nContent-Length: 5\r\n\r\nhello",
        ] {
            let outcome = parse(bad);
            let ReadOutcome::Reject(resp) = outcome else {
                panic!("{bad:?} should reject, got {outcome:?}");
            };
            assert_eq!(resp.status, 400, "{bad:?}");
            assert!(resp.body.contains("conflicting_framing"), "{}", resp.body);
        }
    }

    /// Duplicate `Transfer-Encoding` lines must not bypass the chunked
    /// rejection: a front proxy joins them into one comma list, so a
    /// first-copy-only check ("identity") would desynchronize framing.
    #[test]
    fn duplicate_transfer_encoding_is_rejected() {
        let outcome = parse(
            "POST /x HTTP/1.1\r\nTransfer-Encoding: identity\r\nTransfer-Encoding: chunked\r\n\r\n",
        );
        let ReadOutcome::Reject(resp) = outcome else {
            panic!("expected reject");
        };
        assert_eq!(resp.status, 400);
        assert!(
            resp.body.contains("duplicate_transfer_encoding"),
            "{}",
            resp.body
        );
    }

    /// A comma-joined length list inside one header value is just as
    /// ambiguous and stays rejected through the number parser.
    #[test]
    fn comma_joined_content_length_is_rejected() {
        let outcome = parse("POST /x HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nhello");
        let ReadOutcome::Reject(resp) = outcome else {
            panic!("expected reject");
        };
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("bad_content_length"));
    }

    #[test]
    fn header_values_collects_every_copy() {
        let ReadOutcome::Complete(req) =
            parse("GET /v1/health HTTP/1.1\r\nAccept: a\r\nACCEPT: b\r\n\r\n")
        else {
            panic!("expected complete");
        };
        assert_eq!(req.header_values("accept"), vec!["a", "b"]);
        assert_eq!(req.header("accept"), Some("a"));
        assert!(req.header_values("cookie").is_empty());
    }

    #[test]
    fn chunked_uploads_are_rejected() {
        let outcome = parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        let ReadOutcome::Reject(resp) = outcome else {
            panic!("expected reject");
        };
        assert_eq!(resp.status, 411);
    }

    #[test]
    fn truncated_body_rejects() {
        let outcome = parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort");
        let ReadOutcome::Reject(resp) = outcome else {
            panic!("expected reject");
        };
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn http10_defaults_to_close_unless_keepalive_requested() {
        let ReadOutcome::Complete(req) = parse("GET /v1/health HTTP/1.0\r\n\r\n") else {
            panic!("expected complete");
        };
        assert!(req.http10);
        assert!(req.wants_close(), "HTTP/1.0 default is close");
        let ReadOutcome::Complete(req) =
            parse("GET /v1/health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        else {
            panic!("expected complete");
        };
        assert!(!req.wants_close(), "explicit keep-alive opts in");
        let ReadOutcome::Complete(req) = parse("GET /v1/health HTTP/1.1\r\n\r\n") else {
            panic!("expected complete");
        };
        assert!(!req.wants_close(), "HTTP/1.1 default is keep-alive");
    }

    #[test]
    fn connection_close_header_is_honored() {
        let ReadOutcome::Complete(req) =
            parse("GET /v1/health HTTP/1.1\r\nConnection: close\r\n\r\n")
        else {
            panic!("expected complete");
        };
        assert!(req.wants_close());
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let mut wire = Vec::new();
        Response::json(&Json::object([("ok", Json::Bool(true))]))
            .write_to(&mut wire)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11"), "{text}");
        assert!(text.contains("connection: keep-alive"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");

        let mut wire = Vec::new();
        Response::error(429, "queue_full", "try later")
            .with_close()
            .write_to(&mut wire)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("connection: close"), "{text}");
        assert!(text.contains("\"code\":\"queue_full\""), "{text}");
    }

    #[test]
    fn retry_after_header_is_emitted_when_set() {
        let mut wire = Vec::new();
        Response::error(429, "rate_limited", "slow down")
            .with_retry_after(7)
            .with_close()
            .write_to(&mut wire)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("retry-after: 7\r\n"), "{text}");
        let mut wire = Vec::new();
        Response::error(429, "queue_full", "later")
            .write_to(&mut wire)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(!text.contains("retry-after"), "{text}");
    }

    #[test]
    fn stream_response_frames_as_chunked_and_keeps_alive() {
        let mut wire = Vec::new();
        let keep_alive = StreamResponse::new(|sink| {
            sink.send_json(&Json::object([("event", Json::from("started"))]))?;
            sink.send(b"")?; // empty frames are dropped, not terminal
            sink.send_json(&Json::object([("event", Json::from("completed"))]))
        })
        .write_to(&mut wire, false)
        .unwrap();
        assert!(keep_alive, "clean chunked stream may keep the connection");
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("transfer-encoding: chunked"), "{text}");
        assert!(
            text.contains("content-type: application/x-ndjson"),
            "{text}"
        );
        assert!(text.contains("connection: keep-alive"), "{text}");
        // Each frame is one sized chunk; the body ends with the
        // terminal zero chunk.
        let line = "{\"event\":\"started\"}\n";
        assert!(
            text.contains(&format!("{:x}\r\n{line}\r\n", line.len())),
            "{text}"
        );
        assert!(text.ends_with("0\r\n\r\n"), "{text}");
    }

    #[test]
    fn stream_response_to_http10_writes_raw_and_closes() {
        let mut wire = Vec::new();
        let keep_alive = StreamResponse::new(|sink| sink.send(b"{\"ok\":true}\n"))
            .write_to(&mut wire, true)
            .unwrap();
        assert!(!keep_alive, "EOF-delimited bodies must close");
        let text = String::from_utf8(wire).unwrap();
        assert!(!text.contains("transfer-encoding"), "{text}");
        assert!(text.contains("connection: close"), "{text}");
        assert!(text.ends_with("{\"ok\":true}\n"), "{text}");
    }

    #[test]
    fn stream_response_propagates_producer_errors() {
        let mut wire = Vec::new();
        let result = StreamResponse::new(|sink| {
            sink.send(b"partial\n")?;
            Err(std::io::Error::other("peer went away"))
        })
        .write_to(&mut wire, false);
        assert!(result.is_err());
        let text = String::from_utf8(wire).unwrap();
        assert!(
            !text.ends_with("0\r\n\r\n"),
            "a failed stream must not be terminated cleanly: {text}"
        );
    }
}
