//! # marchgen-daemon
//!
//! A dependency-free HTTP/1.1 service front-end for the `marchgen`
//! workspace: `TcpListener` + worker-pool threading (no async runtime —
//! the offline-build constraint rules out tokio/hyper, and the
//! generation core is synchronous by design), a bounded accept queue
//! that owns backpressure, structured JSON errors with proper status
//! codes, live server counters and graceful shutdown.
//!
//! This crate is protocol only; it knows nothing about March tests. The
//! application (routing, the outcome cache, the batch layer) lives in
//! the `marchgend` binary of the facade crate and plugs in through the
//! [`Handler`] trait:
//!
//! ```
//! use marchgen_daemon::{Handler, Request, Response, Server, ServerConfig};
//! use marchgen_json::Json;
//!
//! let handler = |request: &Request| match request.path.as_str() {
//!     "/v1/health" => Response::json(&Json::object([("status", Json::from("ok"))])),
//!     _ => Response::error(404, "not_found", "no such endpoint"),
//! };
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default(), handler).unwrap();
//! let addr = server.local_addr().unwrap();
//! let stop = server.shutdown_signal();
//! let serving = std::thread::spawn(move || server.run());
//! // ... drive requests against `addr` ...
//! stop.trigger();
//! serving.join().unwrap();
//! ```
//!
//! Handlers answer with a [`Reply`]: either a buffered [`Response`]
//! (serialized with `Content-Length` — the common case) or a
//! [`StreamResponse`] whose body is produced frame-by-frame through a
//! [`ChunkSink`] while the work runs (serialized with
//! `Transfer-Encoding: chunked` — long-running progress streams).
//! Closures returning a plain [`Response`] keep working unchanged.
//!
//! Connection-level abuse is bounded twice: the bounded accept queue
//! (global backpressure) and an optional per-peer token-bucket
//! [`RateLimiter`] ([`ServerConfig::rate_limit`]) that answers
//! over-budget peers `429` + `Retry-After` before they reach a worker.
//!
//! Status codes emitted by the engine itself: `400` (malformed
//! protocol), `411` (chunked upload), `413` (oversized body), `429`
//! (accept queue full, or per-peer rate limit with a `Retry-After`
//! header), `431` (oversized headers), `500` (handler panic), `503`
//! (shutting down). Everything else is the handler's business.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod limit;
pub mod server;
pub mod stats;

pub use http::{reason, ChunkSink, ReadOutcome, Request, Response, StreamResponse};
pub use limit::{RateDecision, RateLimitConfig, RateLimiter};
pub use server::{Handler, Reply, Server, ServerConfig, ShutdownSignal};
pub use stats::{ServerStats, ServerStatsSnapshot};

// The JSON kit is part of this crate's API surface
// ([`Response::json`], error bodies), so re-export it: handlers build
// documents without naming another dependency.
pub use marchgen_json::{FromJson, Json, JsonError, ToJson};

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_json::Json;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    fn echo_handler(request: &Request) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/v1/health") => Response::json(&Json::object([("status", Json::from("ok"))])),
            ("POST", "/echo") => {
                Response::json(&Json::object([("len", Json::from(request.body.len()))]))
            }
            ("POST", "/v1/shutdown") => {
                Response::json(&Json::object([("stopping", Json::Bool(true))])).with_shutdown()
            }
            ("GET", "/panic") => panic!("handler exploded"),
            _ => Response::error(404, "not_found", "no such endpoint"),
        }
    }

    fn start() -> (
        std::net::SocketAddr,
        ShutdownSignal,
        std::thread::JoinHandle<()>,
    ) {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            echo_handler,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let signal = server.shutdown_signal();
        let handle = std::thread::spawn(move || server.run());
        (addr, signal, handle)
    }

    fn roundtrip(addr: std::net::SocketAddr, wire: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(wire.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn end_to_end_over_real_sockets() {
        let (addr, signal, handle) = start();

        let health = roundtrip(addr, "GET /v1/health HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");

        let echo = roundtrip(
            addr,
            "POST /echo HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd",
        );
        assert!(echo.contains("\"len\":4"), "{echo}");

        let missing = roundtrip(addr, "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let panicked = roundtrip(addr, "GET /panic HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(panicked.starts_with("HTTP/1.1 500"), "{panicked}");

        // Keep-alive: two requests down one connection. Reads loop
        // until the body is complete — a response may arrive in several
        // TCP segments.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for _ in 0..2 {
            stream
                .write_all(b"GET /v1/health HTTP/1.1\r\n\r\n")
                .unwrap();
            let mut text = String::new();
            let mut chunk = [0u8; 512];
            while !text.contains("{\"status\":\"ok\"}") {
                let n = stream.read(&mut chunk).unwrap();
                assert!(n > 0, "connection closed early: {text:?}");
                text.push_str(&String::from_utf8_lossy(&chunk[..n]));
            }
            assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
            assert!(text.contains("connection: keep-alive"), "{text}");
        }

        signal.trigger();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server_and_rejects_latecomers() {
        let (addr, _signal, handle) = start();
        let reply = roundtrip(
            addr,
            "POST /v1/shutdown HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.contains("\"stopping\":true"), "{reply}");
        // The engine drains and exits on its own.
        handle.join().unwrap();
        // The port no longer accepts (or resets immediately).
        let late = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
        if let Ok(mut stream) = late {
            let _ = stream.write_all(b"GET /v1/health HTTP/1.1\r\n\r\n");
            let mut buf = Vec::new();
            let _ = stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .and_then(|()| stream.read_to_end(&mut buf).map(|_| ()));
            let text = String::from_utf8_lossy(&buf);
            assert!(
                text.is_empty() || text.starts_with("HTTP/1.1 503"),
                "late request should see nothing or a 503, got {text:?}"
            );
        }
    }

    /// A handler mixing buffered and streaming replies: `/stream`
    /// emits three chunked frames, everything else stays buffered.
    fn mixed_handler(request: &Request) -> Reply {
        match request.path.as_str() {
            "/stream" => Reply::Stream(StreamResponse::new(|sink| {
                for i in 0..3u64 {
                    sink.send_json(&Json::object([("frame", Json::from(i))]))?;
                }
                Ok(())
            })),
            "/stream-panic" => Reply::Stream(StreamResponse::new(|sink| {
                sink.send(b"first\n")?;
                panic!("producer exploded mid-stream");
            })),
            _ => Reply::Full(Response::json(&Json::object([("ok", Json::Bool(true))]))),
        }
    }

    #[test]
    fn streaming_replies_are_chunked_and_keep_the_connection() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
            mixed_handler,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let stats = server.stats();
        let signal = server.shutdown_signal();
        let handle = std::thread::spawn(move || server.run());

        // One keep-alive connection: stream, then a buffered request.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"GET /stream HTTP/1.1\r\n\r\n").unwrap();
        let mut text = String::new();
        let mut chunk = [0u8; 512];
        while !text.contains("0\r\n\r\n") {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed before terminal chunk: {text:?}");
            text.push_str(&String::from_utf8_lossy(&chunk[..n]));
        }
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("transfer-encoding: chunked"), "{text}");
        assert!(text.contains("connection: keep-alive"), "{text}");
        for i in 0..3 {
            assert!(text.contains(&format!("{{\"frame\":{i}}}")), "{text}");
        }

        // The connection survived the stream: a buffered request works.
        stream.write_all(b"GET /after HTTP/1.1\r\n\r\n").unwrap();
        let mut text = String::new();
        while !text.contains("{\"ok\":true}") {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "keep-alive after stream failed: {text:?}");
            text.push_str(&String::from_utf8_lossy(&chunk[..n]));
        }
        drop(stream);

        // A panicking producer tears the connection down without a
        // terminal chunk (the client sees a truncated chunked body).
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /stream-panic HTTP/1.1\r\n\r\n")
            .unwrap();
        let mut wire = String::new();
        stream.read_to_string(&mut wire).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK"), "{wire}");
        assert!(!wire.ends_with("0\r\n\r\n"), "{wire}");

        signal.trigger();
        handle.join().unwrap();
        let snapshot = stats.snapshot();
        assert_eq!(snapshot.streams, 2, "both streams counted");
        assert_eq!(snapshot.streams_active, 0, "no stream left on the wire");
        assert_eq!(snapshot.in_flight, 0, "gauge balanced across streams");
    }

    /// A peer that opens a stream and then stops reading (zero TCP
    /// receive window, socket still open) must not pin its worker
    /// forever: the configured write timeout surfaces the stall as a
    /// send error, the producer stops, and the worker is freed for
    /// other connections.
    #[test]
    fn stalled_stream_reader_frees_its_worker() {
        fn firehose_handler(request: &Request) -> Reply {
            match request.path.as_str() {
                "/firehose" => Reply::Stream(StreamResponse::new(|sink| {
                    // Far more bytes than the loopback send + receive
                    // buffers hold, so an unread stream must block.
                    let frame = vec![b'x'; 64 * 1024];
                    for _ in 0..1024 {
                        sink.send(&frame)?;
                    }
                    Ok(())
                })),
                _ => Reply::Full(Response::json(&Json::object([("ok", Json::Bool(true))]))),
            }
        }
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                write_timeout: Duration::from_millis(200),
                ..ServerConfig::default()
            },
            firehose_handler,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let stats = server.stats();
        let signal = server.shutdown_signal();
        let handle = std::thread::spawn(move || server.run());

        // Open the stream and never read a byte from it.
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled
            .write_all(b"GET /firehose HTTP/1.1\r\n\r\n")
            .unwrap();

        // With a single worker this request can only be answered once
        // the stalled stream has been torn down by the write timeout —
        // a response here *is* the proof that the worker was freed.
        let ok = roundtrip(addr, "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");

        drop(stalled);
        signal.trigger();
        handle.join().unwrap();
        let snapshot = stats.snapshot();
        assert_eq!(snapshot.streams, 1);
        assert_eq!(snapshot.streams_active, 0, "stalled stream released");
        assert_eq!(snapshot.in_flight, 0);
    }

    #[test]
    fn per_peer_rate_limit_rejects_with_retry_after() {
        // Refill is 0.01 tokens/s: the bucket cannot regain a token
        // within any plausible test runtime, so the third connection is
        // deterministically over budget even on a stalled CI machine.
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                rate_limit: Some(crate::limit::RateLimitConfig::new(0.01, 2.0)),
                ..ServerConfig::default()
            },
            mixed_handler,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let stats = server.stats();
        let signal = server.shutdown_signal();
        let handle = std::thread::spawn(move || server.run());

        // The burst budget admits the first two connections.
        for _ in 0..2 {
            let ok = roundtrip(addr, "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
            assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        }
        // The third is over budget: 429 + Retry-After, never dispatched.
        let rejected = roundtrip(addr, "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(
            rejected.starts_with("HTTP/1.1 429 Too Many Requests"),
            "{rejected}"
        );
        assert!(rejected.contains("retry-after: "), "{rejected}");
        assert!(rejected.contains("\"code\":\"rate_limited\""), "{rejected}");

        signal.trigger();
        handle.join().unwrap();
        let snapshot = stats.snapshot();
        assert_eq!(snapshot.rejected_rate_limited, 1);
        assert_eq!(
            snapshot.rate_limit_allowed, 2,
            "both admitted decisions counted"
        );
        assert_eq!(snapshot.requests, 2, "the rejected connection never ran");
    }

    #[test]
    fn stats_count_requests_and_protocol_errors() {
        let (addr, signal, handle) = start();
        let server_stats = {
            // Rebind: grab stats before moving the server — use a fresh
            // server for precise counting instead.
            signal.trigger();
            handle.join().unwrap();
            let server = Server::bind(
                "127.0.0.1:0",
                ServerConfig {
                    workers: 1,
                    ..ServerConfig::default()
                },
                echo_handler,
            )
            .unwrap();
            let addr = server.local_addr().unwrap();
            let stats = server.stats();
            let signal = server.shutdown_signal();
            let handle = std::thread::spawn(move || server.run());
            let _ = roundtrip(addr, "GET /v1/health HTTP/1.1\r\nConnection: close\r\n\r\n");
            let _ = roundtrip(addr, "BROKEN\r\n\r\n");
            signal.trigger();
            handle.join().unwrap();
            stats.snapshot()
        };
        assert_eq!(server_stats.requests, 1);
        assert_eq!(server_stats.protocol_errors, 1);
        assert_eq!(server_stats.connections, 2);
        assert_eq!(server_stats.in_flight, 0);
        let _ = addr;
    }
}
