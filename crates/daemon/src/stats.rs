//! Server-level counters, shared between the accept loop, the workers
//! and the application handler (which typically folds a snapshot into
//! its `/v1/stats` response).

use std::sync::atomic::{AtomicU64, Ordering};

/// Live atomic counters. Cheap to update from any thread; read with
/// [`ServerStats::snapshot`].
#[derive(Debug, Default)]
pub struct ServerStats {
    connections: AtomicU64,
    requests: AtomicU64,
    in_flight: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_rate_limited: AtomicU64,
    rate_limit_allowed: AtomicU64,
    rejected_shutdown: AtomicU64,
    protocol_errors: AtomicU64,
    streams: AtomicU64,
    streams_active: AtomicU64,
}

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStatsSnapshot {
    /// Connections accepted (including ones later rejected).
    pub connections: u64,
    /// Requests fully parsed and dispatched to the handler.
    pub requests: u64,
    /// Requests currently being served: handler execution plus the
    /// response write, so a chunked stream counts for its whole
    /// duration — this is the live worker-occupancy gauge.
    pub in_flight: u64,
    /// Connections turned away with `429` because the accept queue was
    /// full.
    pub rejected_queue_full: u64,
    /// Connections turned away with `429` by the per-peer rate limiter
    /// (`ServerConfig::rate_limit`).
    pub rejected_rate_limited: u64,
    /// Connections the per-peer rate limiter admitted (the other half
    /// of the limiter-decision pair; zero when no limiter is
    /// configured).
    pub rate_limit_allowed: u64,
    /// Requests/connections answered `503` during shutdown.
    pub rejected_shutdown: u64,
    /// Requests rejected at the protocol layer (4xx before dispatch).
    pub protocol_errors: u64,
    /// Streaming responses started (chunked bodies; each pins a worker
    /// for its duration). Cumulative — see
    /// [`ServerStatsSnapshot::streams_active`] for the live gauge.
    pub streams: u64,
    /// Streaming responses currently on the wire (gauge; each occupies
    /// one worker until its batch finishes).
    pub streams_active: u64,
}

impl ServerStats {
    pub(crate) fn connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn queue_full(&self) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn rate_limited(&self) {
        self.rejected_rate_limited.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn rate_allowed(&self) {
        self.rate_limit_allowed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stream_begin(&self) {
        self.streams.fetch_add(1, Ordering::Relaxed);
        self.streams_active.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stream_end(&self) {
        self.streams_active.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn shutdown_reject(&self) {
        self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dispatch_begin(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dispatch_end(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// A point-in-time copy (each counter atomic; the set not).
    #[must_use]
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_rate_limited: self.rejected_rate_limited.load(Ordering::Relaxed),
            rate_limit_allowed: self.rate_limit_allowed.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            streams: self.streams.load(Ordering::Relaxed),
            streams_active: self.streams_active.load(Ordering::Relaxed),
        }
    }
}
