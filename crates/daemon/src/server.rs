//! The connection engine: accept loop, bounded queue, worker pool.
//!
//! Threading model (std-only, no async runtime — the generation core is
//! synchronous by design, so the daemon owns concurrency with plain
//! threads):
//!
//! * one accept loop polls the listener and pushes connections into a
//!   **bounded** queue — when the queue is full the connection is
//!   answered `429`, which is the backpressure surface (the answer is
//!   written by a dedicated reject-drainer thread, so a misbehaving
//!   peer can never stall the accept loop itself);
//! * `workers` threads pop connections and serve them keep-alive,
//!   dispatching each parsed request to the application [`Handler`];
//! * graceful shutdown (a handler response flagged
//!   [`Response::with_shutdown`], or [`ShutdownSignal::trigger`]) stops
//!   the accept loop, drains queued connections with `503`, lets
//!   in-flight requests finish, and joins every thread before
//!   [`Server::run`] returns.

use crate::http::{next_request_id, read_request, ReadOutcome, Request, Response, StreamResponse};
use crate::limit::{RateDecision, RateLimiter};
use crate::stats::ServerStats;
use marchgen_failpoint::fail_point;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Most requests served on one keep-alive connection before it is
/// recycled.
const MAX_KEEPALIVE_REQUESTS: usize = 1024;
/// Accept-loop poll interval while idle or draining.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Most rejected connections queued for the reject drainer; beyond it
/// the socket is dropped unanswered (the peer sees a reset instead of
/// a structured `429` — better than backlogging the drainer behind a
/// flood).
const REJECT_QUEUE_CAPACITY: usize = 128;

/// What a [`Handler`] answers a request with: either a fully buffered
/// [`Response`] (the common case — small JSON documents) or a
/// [`StreamResponse`] whose body is produced incrementally while the
/// work runs (the `/v1/stream` case — chunked progress frames).
#[derive(Debug)]
pub enum Reply {
    /// A buffered response, serialized with `Content-Length`.
    Full(Response),
    /// An incremental response, serialized with
    /// `Transfer-Encoding: chunked` (raw + close for HTTP/1.0 peers).
    Stream(StreamResponse),
}

impl From<Response> for Reply {
    fn from(response: Response) -> Reply {
        Reply::Full(response)
    }
}

impl From<StreamResponse> for Reply {
    fn from(response: StreamResponse) -> Reply {
        Reply::Stream(response)
    }
}

/// The application half of the daemon: maps one parsed request to one
/// reply. Implementations must be thread-safe — workers call
/// concurrently. Plain functions and closures returning [`Response`]
/// (or anything `Into<Reply>`) implement it automatically.
pub trait Handler: Send + Sync {
    /// Produces the reply for `request`.
    fn handle(&self, request: &Request) -> Reply;
}

impl<F, R> Handler for F
where
    F: Fn(&Request) -> R + Send + Sync,
    R: Into<Reply>,
{
    fn handle(&self, request: &Request) -> Reply {
        self(request).into()
    }
}

/// Tunables of the connection engine.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections (`0` = one per available
    /// CPU).
    pub workers: usize,
    /// Bound of the accept queue; connections beyond it get `429`.
    pub queue_capacity: usize,
    /// Largest accepted request body, bytes; beyond it `413`.
    pub max_body_bytes: usize,
    /// Per-read socket timeout; an idle keep-alive connection is
    /// recycled after this long.
    pub read_timeout: Duration,
    /// Per-write socket timeout. A peer that stays connected but stops
    /// reading (zero TCP receive window) never produces a write error
    /// on its own, so without this bound a blocked response write — in
    /// particular a chunked `/v1/stream` body, whose producer holds the
    /// sink while the batch runs — would pin its worker forever. The
    /// timeout turns the stall into an error, which tears the
    /// connection down and frees the worker.
    pub write_timeout: Duration,
    /// Per-peer connection rate limit (token bucket keyed by peer IP);
    /// `None` disables limiting. Enforced in the accept loop, before
    /// the queue: an over-budget peer is answered `429` +
    /// `Retry-After` and never occupies a worker.
    pub rate_limit: Option<crate::limit::RateLimitConfig>,
    /// Emit one stderr line per served request
    /// (`peer "METHOD /path" status id=<request-id>`), correlating log
    /// output with the `X-Request-Id` echoed on the response.
    pub log_requests: bool,
    /// Threshold in milliseconds past which a served request earns a
    /// `slow request` warning line on stderr, measured from dispatch
    /// to the end of the response write (so a slow stream consumer
    /// counts too). Emitted even when `log_requests` is off — a
    /// latency cliff matters regardless of access logging. `0`
    /// disables the warning.
    pub slow_request_millis: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_capacity: 256,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            rate_limit: None,
            log_requests: false,
            slow_request_millis: 1000,
        }
    }
}

/// A cloneable handle that triggers graceful shutdown from outside the
/// request path (signal handlers, tests).
#[derive(Debug, Clone)]
pub struct ShutdownSignal(Arc<AtomicBool>);

impl ShutdownSignal {
    /// Begins graceful shutdown; idempotent.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown has been requested.
    #[must_use]
    pub fn is_triggered(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A bound-and-listening service daemon; [`Server::run`] serves until
/// shutdown.
pub struct Server<H> {
    listener: TcpListener,
    config: ServerConfig,
    handler: H,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
}

impl<H: Handler> Server<H> {
    /// Binds `addr` (e.g. `"127.0.0.1:8378"`; port `0` picks a free
    /// one) and prepares the engine. Nothing is served until
    /// [`Server::run`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        handler: H,
    ) -> std::io::Result<Server<H>> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            config,
            handler,
            stats: Arc::new(ServerStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The live server counters (share with the handler so `/v1/stats`
    /// can report them).
    #[must_use]
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// A handle that triggers graceful shutdown from another thread.
    #[must_use]
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        ShutdownSignal(Arc::clone(&self.shutdown))
    }

    /// Serves until shutdown is triggered, then drains and joins every
    /// worker. Accept errors are not fatal: the loop keeps serving.
    pub fn run(self) {
        let Server {
            listener,
            config,
            handler,
            stats,
            shutdown,
        } = self;
        listener
            .set_nonblocking(true)
            .expect("listener nonblocking mode");
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let queue: Mutex<VecDeque<TcpStream>> = Mutex::new(VecDeque::new());
        let available = Condvar::new();
        // Connections turned away at accept time (rate limit, queue
        // full) are answered off the accept thread: the write + drain
        // in `reject_connection` can stall on a misbehaving peer, and
        // the accept loop's stall radius is every future connection.
        let rejects: Mutex<VecDeque<(TcpStream, Response)>> = Mutex::new(VecDeque::new());
        let reject_available = Condvar::new();

        std::thread::scope(|scope| {
            // ---- reject drainer -----------------------------------------
            scope.spawn(|| loop {
                let next = {
                    let mut q = rejects.lock().expect("reject queue lock");
                    loop {
                        if let Some(next) = q.pop_front() {
                            break Some(next);
                        }
                        if shutdown.load(Ordering::SeqCst) {
                            break None;
                        }
                        q = reject_available
                            .wait_timeout(q, ACCEPT_POLL * 20)
                            .expect("reject queue lock")
                            .0;
                    }
                };
                let Some((stream, response)) = next else {
                    break;
                };
                if shutdown.load(Ordering::SeqCst) {
                    // Draining: each stalled peer in the backlog could
                    // cost up to the write timeout plus the drain
                    // deadline, serializing shutdown behind a reject
                    // flood. Drop the socket instead (the peer sees a
                    // reset — the same forfeit as queue overflow);
                    // shutdown then waits on at most the one reject
                    // already in flight.
                    continue;
                }
                reject_connection(stream, &response);
            });

            for _ in 0..workers {
                scope.spawn(|| loop {
                    let conn = {
                        let mut q = queue.lock().expect("accept queue lock");
                        loop {
                            if let Some(conn) = q.pop_front() {
                                break Some(conn);
                            }
                            if shutdown.load(Ordering::SeqCst) {
                                break None;
                            }
                            q = available
                                .wait_timeout(q, ACCEPT_POLL * 20)
                                .expect("accept queue lock")
                                .0;
                        }
                    };
                    let Some(stream) = conn else { break };
                    if shutdown.load(Ordering::SeqCst) {
                        // Drain: the connection was queued before the
                        // shutdown request — turn it away cleanly.
                        stats.shutdown_reject();
                        reject_connection(
                            stream,
                            &Response::error(503, "shutting_down", "server is shutting down")
                                .with_close(),
                        );
                        continue;
                    }
                    serve_connection(stream, &config, &handler, &stats, &shutdown);
                });
            }

            // ---- accept loop (this thread) ------------------------------
            let limiter = config.rate_limit.map(RateLimiter::new);
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, peer)) => {
                        stats.connection();
                        if let Some(limiter) = &limiter {
                            if let RateDecision::Reject { retry_after } = limiter.check(peer.ip()) {
                                stats.rate_limited();
                                enqueue_reject(
                                    &rejects,
                                    &reject_available,
                                    stream,
                                    Response::error(
                                        429,
                                        "rate_limited",
                                        format!(
                                            "per-peer connection budget exhausted; retry in {retry_after}s"
                                        ),
                                    )
                                    .with_retry_after(retry_after)
                                    .with_close(),
                                );
                                continue;
                            }
                            stats.rate_allowed();
                        }
                        let mut q = queue.lock().expect("accept queue lock");
                        if q.len() >= config.queue_capacity {
                            drop(q);
                            stats.queue_full();
                            enqueue_reject(
                                &rejects,
                                &reject_available,
                                stream,
                                Response::error(
                                    429,
                                    "queue_full",
                                    "accept queue is full; retry with backoff",
                                )
                                .with_close(),
                            );
                        } else {
                            q.push_back(stream);
                            drop(q);
                            available.notify_one();
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            available.notify_all();
            reject_available.notify_all();
        });
    }
}

/// Hands a turned-away connection to the reject drainer. When the
/// drainer is itself backlogged (a reject flood) the socket is dropped
/// unanswered — the peer sees a reset instead of a structured `429`,
/// which beats serializing the flood through the accept loop.
fn enqueue_reject(
    queue: &Mutex<VecDeque<(TcpStream, Response)>>,
    available: &Condvar,
    stream: TcpStream,
    response: Response,
) {
    let mut q = queue.lock().expect("reject queue lock");
    if q.len() < REJECT_QUEUE_CAPACITY {
        q.push_back((stream, response));
        drop(q);
        available.notify_one();
    }
}

/// Answers a connection that is being turned away before dispatch
/// (queue full, rate limited, draining) and closes it cleanly. The
/// write-then-drain order matters: the peer has usually already sent
/// its request bytes, and dropping the socket with them unread would
/// RST and destroy the queued response before the client reads it.
///
/// Runs on the reject drainer (accept-time rejects) or a worker
/// (shutdown drain) — never on the accept thread — and is still
/// bounded tightly: an honest client reads the error and closes within
/// a round trip; a peer stalled or trickling at a deadline forfeits
/// clean delivery.
fn reject_connection(mut stream: TcpStream, response: &Response) {
    fail_point!("daemon.reject.drain");
    // The response is a small JSON document that fits the socket
    // buffer, so the write normally completes instantly; the timeout
    // only fires against a peer whose receive window is already full.
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = response.write_to(&mut stream);
    let mut reader = match stream.try_clone() {
        Ok(reader) => reader,
        Err(_) => return,
    };
    drain_before_close(&stream, &mut reader, Duration::from_millis(250));
}

/// Discards unread request bytes before a connection is dropped with
/// data still queued by the peer: without this, `close()` sends RST and
/// the kernel throws away the un-acknowledged response bytes. Bounded
/// in volume *and wall time* — the byte budget alone would let a peer
/// trickling one byte per read-timeout pin the calling thread for
/// hours, so `deadline` is the authoritative bound; a peer that is
/// still sending when it expires simply loses the clean close.
fn drain_before_close(stream: &TcpStream, reader: &mut impl std::io::Read, deadline: Duration) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let expires = std::time::Instant::now() + deadline;
    let mut scratch = [0u8; 8192];
    let mut budget: usize = 4 << 20;
    while budget > 0 {
        let remaining = expires.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return;
        }
        let _ = stream.set_read_timeout(Some(remaining.min(Duration::from_millis(250))));
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => return,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// Balances [`ServerStats::dispatch_begin`] when dropped, so the
/// in-flight gauge falls on every exit path — including early returns
/// and panics while the response (or stream body) is being written.
struct InFlightGuard<'a>(&'a ServerStats);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.dispatch_end();
    }
}

/// Balances the active-streams gauge of [`ServerStats::stream_begin`]
/// once the stream body is off the wire (cleanly or not).
struct StreamGuard<'a>(&'a ServerStats);

impl Drop for StreamGuard<'_> {
    fn drop(&mut self) {
        self.0.stream_end();
    }
}

/// One served request's stderr log line (gated by
/// [`ServerConfig::log_requests`]): peer, request line, status and the
/// correlation id echoed as `X-Request-Id`.
fn log_request(config: &ServerConfig, peer: &str, method: &str, path: &str, status: u16, id: &str) {
    if config.log_requests {
        eprintln!("marchgen-daemon: {peer} \"{method} {path}\" {status} id={id}");
    }
}

/// Stderr warning for a request that took longer than
/// [`ServerConfig::slow_request_millis`] from dispatch to the end of
/// the response write. Unconditional on `log_requests` (see the
/// config-field docs); `0` disables.
fn warn_slow_request(
    config: &ServerConfig,
    peer: &str,
    method: &str,
    path: &str,
    status: u16,
    id: &str,
    elapsed: Duration,
) {
    let threshold = config.slow_request_millis;
    if threshold == 0 {
        return;
    }
    let millis = elapsed.as_millis();
    if millis >= u128::from(threshold) {
        eprintln!(
            "marchgen-daemon: slow request: {peer} \"{method} {path}\" {status} id={id} \
             took {millis}ms (threshold {threshold}ms)"
        );
    }
}

/// Serves one connection keep-alive until close, error, idle timeout or
/// the keep-alive cap.
///
/// Between requests the worker polls in short slices so a graceful
/// shutdown is noticed within [`ACCEPT_POLL`]-scale latency even while
/// parked on an idle keep-alive connection; once bytes start arriving,
/// the full `read_timeout` applies to the request.
fn serve_connection(
    stream: TcpStream,
    config: &ServerConfig,
    handler: &impl Handler,
    stats: &ServerStats,
    shutdown: &AtomicBool,
) {
    let boundary_poll = Duration::from_millis(100);
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "-".to_owned(), |addr| addr.to_string());
    // BSD-derived platforms make accepted sockets inherit the
    // listener's O_NONBLOCK; this loop assumes blocking reads with
    // timeouts, so reset explicitly (a no-op on Linux).
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    // A peer that stops reading but keeps the socket open never
    // produces a write error on its own; the write timeout turns the
    // stall into one. For a stream this unblocks the producer inside
    // `ChunkSink::send`, which marks the sink dead and lets the batch
    // finish — instead of the blocked send pinning this worker (and,
    // through the sink mutex, every batch worker) forever.
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    for _ in 0..MAX_KEEPALIVE_REQUESTS {
        // ---- idle wait at the request boundary ---------------------
        let _ = writer.set_read_timeout(Some(boundary_poll));
        let mut idle = Duration::ZERO;
        loop {
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF between requests
                Ok(_) => break,   // bytes waiting — parse a request
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    idle += boundary_poll;
                    if idle >= config.read_timeout {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        let _ = writer.set_read_timeout(Some(config.read_timeout));
        let request = match read_request(&mut reader, config.max_body_bytes) {
            // I/O failures (including idle timeouts) end the connection.
            Err(_) | Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Reject(mut response)) => {
                stats.protocol_error();
                // The request never parsed far enough to carry an id;
                // generate one so even protocol rejects correlate with
                // the log line.
                let request_id = next_request_id();
                response.request_id = Some(request_id.clone());
                log_request(config, &peer, "-", "-", response.status, &request_id);
                let _ = response.write_to(&mut writer);
                // The reject may leave unread request bytes (e.g. a 413
                // body that was never read); closing now would RST and
                // destroy the queued response before the client reads
                // it. Signal FIN, then drain a bounded amount so the
                // error actually arrives. The deadline is looser than
                // the accept-loop's: stalling here pins one worker,
                // not the listener.
                drain_before_close(&writer, &mut reader, Duration::from_secs(2));
                return;
            }
            Ok(ReadOutcome::Complete(request)) => request,
        };
        // Slow-request timing covers the handler *and* the response
        // write: a stream whose consumer reads slowly is slow from the
        // operator's point of view even when the handler returned fast.
        let dispatched = Instant::now();
        let (reply, _in_flight) = if shutdown.load(Ordering::SeqCst) {
            stats.shutdown_reject();
            let reply = Reply::Full(
                Response::error(503, "shutting_down", "server is shutting down").with_close(),
            );
            (reply, None)
        } else {
            stats.dispatch_begin();
            // The in-flight gauge covers the response write too — a
            // streaming reply occupies this worker long after the
            // handler returns, and `/v1/stats` must report that load.
            // The guard balances `dispatch_begin` on every exit path.
            let in_flight = InFlightGuard(stats);
            let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Chaos site: a panic injected here exercises the same
                // recovery path as a handler bug — the worker answers a
                // structured 500 and lives on.
                fail_point!("daemon.worker.dispatch");
                handler.handle(&request)
            }))
            .unwrap_or_else(|_| {
                Reply::Full(
                    Response::error(500, "handler_panic", "internal handler failure").with_close(),
                )
            });
            (reply, Some(in_flight))
        };
        match reply {
            Reply::Full(mut response) => {
                // Honor the client's `Connection: close` in the
                // advertised header, not just in behaviour.
                response.close = response.close || request.wants_close();
                if response.request_id.is_none() {
                    response.request_id = Some(request.request_id.clone());
                }
                if response.shutdown {
                    shutdown.store(true, Ordering::SeqCst);
                }
                log_request(
                    config,
                    &peer,
                    &request.method,
                    &request.path,
                    response.status,
                    &request.request_id,
                );
                let write_failed = response.write_to(&mut writer).is_err();
                warn_slow_request(
                    config,
                    &peer,
                    &request.method,
                    &request.path,
                    response.status,
                    &request.request_id,
                    dispatched.elapsed(),
                );
                if write_failed || response.close {
                    return;
                }
            }
            Reply::Stream(mut stream_response) => {
                stats.stream_begin();
                let _active = StreamGuard(stats);
                stream_response.close = stream_response.close || request.wants_close();
                if stream_response.request_id.is_none() {
                    stream_response.request_id = Some(request.request_id.clone());
                }
                log_request(
                    config,
                    &peer,
                    &request.method,
                    &request.path,
                    stream_response.status,
                    &request.request_id,
                );
                // The producer is application code running after the
                // response head is on the wire: a panic cannot be
                // turned into a 500 anymore, so it tears the
                // connection down instead — the truncated chunked body
                // (no terminal zero chunk) tells the client the stream
                // died.
                let status = stream_response.status;
                let served = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    stream_response.write_to(&mut writer, request.http10)
                }));
                warn_slow_request(
                    config,
                    &peer,
                    &request.method,
                    &request.path,
                    status,
                    &request.request_id,
                    dispatched.elapsed(),
                );
                match served {
                    Ok(Ok(true)) => {} // clean stream; keep the connection
                    _ => return,
                }
            }
        }
    }
}
