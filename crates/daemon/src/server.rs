//! The connection engine: accept loop, bounded queue, worker pool.
//!
//! Threading model (std-only, no async runtime — the generation core is
//! synchronous by design, so the daemon owns concurrency with plain
//! threads):
//!
//! * one accept loop polls the listener and pushes connections into a
//!   **bounded** queue — when the queue is full the connection is
//!   answered `429` immediately, which is the backpressure surface;
//! * `workers` threads pop connections and serve them keep-alive,
//!   dispatching each parsed request to the application [`Handler`];
//! * graceful shutdown (a handler response flagged
//!   [`Response::with_shutdown`], or [`ShutdownSignal::trigger`]) stops
//!   the accept loop, drains queued connections with `503`, lets
//!   in-flight requests finish, and joins every thread before
//!   [`Server::run`] returns.

use crate::http::{read_request, ReadOutcome, Request, Response};
use crate::stats::ServerStats;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Most requests served on one keep-alive connection before it is
/// recycled.
const MAX_KEEPALIVE_REQUESTS: usize = 1024;
/// Accept-loop poll interval while idle or draining.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// The application half of the daemon: maps one parsed request to one
/// response. Implementations must be thread-safe — workers call
/// concurrently.
pub trait Handler: Send + Sync {
    /// Produces the response for `request`.
    fn handle(&self, request: &Request) -> Response;
}

impl<F: Fn(&Request) -> Response + Send + Sync> Handler for F {
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// Tunables of the connection engine.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections (`0` = one per available
    /// CPU).
    pub workers: usize,
    /// Bound of the accept queue; connections beyond it get `429`.
    pub queue_capacity: usize,
    /// Largest accepted request body, bytes; beyond it `413`.
    pub max_body_bytes: usize,
    /// Per-read socket timeout; an idle keep-alive connection is
    /// recycled after this long.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_capacity: 256,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// A cloneable handle that triggers graceful shutdown from outside the
/// request path (signal handlers, tests).
#[derive(Debug, Clone)]
pub struct ShutdownSignal(Arc<AtomicBool>);

impl ShutdownSignal {
    /// Begins graceful shutdown; idempotent.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown has been requested.
    #[must_use]
    pub fn is_triggered(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A bound-and-listening service daemon; [`Server::run`] serves until
/// shutdown.
pub struct Server<H> {
    listener: TcpListener,
    config: ServerConfig,
    handler: H,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
}

impl<H: Handler> Server<H> {
    /// Binds `addr` (e.g. `"127.0.0.1:8378"`; port `0` picks a free
    /// one) and prepares the engine. Nothing is served until
    /// [`Server::run`].
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        handler: H,
    ) -> std::io::Result<Server<H>> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            config,
            handler,
            stats: Arc::new(ServerStats::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the underlying socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The live server counters (share with the handler so `/v1/stats`
    /// can report them).
    #[must_use]
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// A handle that triggers graceful shutdown from another thread.
    #[must_use]
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        ShutdownSignal(Arc::clone(&self.shutdown))
    }

    /// Serves until shutdown is triggered, then drains and joins every
    /// worker. Accept errors are not fatal: the loop keeps serving.
    pub fn run(self) {
        let Server {
            listener,
            config,
            handler,
            stats,
            shutdown,
        } = self;
        listener
            .set_nonblocking(true)
            .expect("listener nonblocking mode");
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let queue: Mutex<VecDeque<TcpStream>> = Mutex::new(VecDeque::new());
        let available = Condvar::new();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let conn = {
                        let mut q = queue.lock().expect("accept queue lock");
                        loop {
                            if let Some(conn) = q.pop_front() {
                                break Some(conn);
                            }
                            if shutdown.load(Ordering::SeqCst) {
                                break None;
                            }
                            q = available
                                .wait_timeout(q, ACCEPT_POLL * 20)
                                .expect("accept queue lock")
                                .0;
                        }
                    };
                    let Some(stream) = conn else { break };
                    if shutdown.load(Ordering::SeqCst) {
                        // Drain: the connection was queued before the
                        // shutdown request — turn it away cleanly.
                        stats.shutdown_reject();
                        let mut stream = stream;
                        let _ = Response::error(503, "shutting_down", "server is shutting down")
                            .with_close()
                            .write_to(&mut stream);
                        continue;
                    }
                    serve_connection(stream, &config, &handler, &stats, &shutdown);
                });
            }

            // ---- accept loop (this thread) ------------------------------
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        stats.connection();
                        let mut q = queue.lock().expect("accept queue lock");
                        if q.len() >= config.queue_capacity {
                            drop(q);
                            stats.queue_full();
                            let mut stream = stream;
                            let _ = Response::error(
                                429,
                                "queue_full",
                                "accept queue is full; retry with backoff",
                            )
                            .with_close()
                            .write_to(&mut stream);
                        } else {
                            q.push_back(stream);
                            drop(q);
                            available.notify_one();
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            available.notify_all();
        });
    }
}

/// Discards unread request bytes before a connection is dropped with
/// data still queued by the peer: without this, `close()` sends RST and
/// the kernel throws away the un-acknowledged response bytes. Bounded
/// in both volume and time — a hostile streamer cannot pin the worker.
fn drain_before_close(stream: &TcpStream, reader: &mut impl std::io::Read) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut scratch = [0u8; 8192];
    let mut budget: usize = 4 << 20;
    while budget > 0 {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => return,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// Serves one connection keep-alive until close, error, idle timeout or
/// the keep-alive cap.
///
/// Between requests the worker polls in short slices so a graceful
/// shutdown is noticed within [`ACCEPT_POLL`]-scale latency even while
/// parked on an idle keep-alive connection; once bytes start arriving,
/// the full `read_timeout` applies to the request.
fn serve_connection(
    stream: TcpStream,
    config: &ServerConfig,
    handler: &impl Handler,
    stats: &ServerStats,
    shutdown: &AtomicBool,
) {
    let boundary_poll = Duration::from_millis(100);
    // BSD-derived platforms make accepted sockets inherit the
    // listener's O_NONBLOCK; this loop assumes blocking reads with
    // timeouts, so reset explicitly (a no-op on Linux).
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    for _ in 0..MAX_KEEPALIVE_REQUESTS {
        // ---- idle wait at the request boundary ---------------------
        let _ = writer.set_read_timeout(Some(boundary_poll));
        let mut idle = Duration::ZERO;
        loop {
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF between requests
                Ok(_) => break,   // bytes waiting — parse a request
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    idle += boundary_poll;
                    if idle >= config.read_timeout {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        let _ = writer.set_read_timeout(Some(config.read_timeout));
        let request = match read_request(&mut reader, config.max_body_bytes) {
            // I/O failures (including idle timeouts) end the connection.
            Err(_) | Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Reject(response)) => {
                stats.protocol_error();
                let _ = response.write_to(&mut writer);
                // The reject may leave unread request bytes (e.g. a 413
                // body that was never read); closing now would RST and
                // destroy the queued response before the client reads
                // it. Signal FIN, then drain a bounded amount so the
                // error actually arrives.
                drain_before_close(&writer, &mut reader);
                return;
            }
            Ok(ReadOutcome::Complete(request)) => request,
        };
        let mut response = if shutdown.load(Ordering::SeqCst) {
            stats.shutdown_reject();
            Response::error(503, "shutting_down", "server is shutting down").with_close()
        } else {
            stats.dispatch_begin();
            let response =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler.handle(&request)))
                    .unwrap_or_else(|_| {
                        Response::error(500, "handler_panic", "internal handler failure")
                            .with_close()
                    });
            stats.dispatch_end();
            response
        };
        // Honor the client's `Connection: close` in the advertised
        // header, not just in behaviour.
        response.close = response.close || request.wants_close();
        if response.shutdown {
            shutdown.store(true, Ordering::SeqCst);
        }
        if response.write_to(&mut writer).is_err() || response.close {
            return;
        }
    }
}
