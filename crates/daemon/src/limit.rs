//! Per-peer connection rate limiting: a classic token bucket keyed by
//! peer IP address.
//!
//! The limiter sits in the accept loop, *before* the bounded queue: a
//! peer opening connections faster than its bucket refills is answered
//! `429` with a `Retry-After` hint and never reaches a worker. This is
//! what keeps the streaming endpoint honest — a chunked `/v1/stream`
//! response pins a worker for the duration of its batch, so without a
//! per-peer bound one client could open enough streams to starve
//! everyone else.
//!
//! Buckets are keyed by IP only (not port): every connection from one
//! host draws from one budget, which is the right granularity both for
//! a hostile peer cycling source ports and for a well-behaved client
//! pool. Behind a reverse proxy the daemon sees the proxy's address —
//! terminate abuse at the proxy in that deployment (see
//! `docs/DEPLOY.md`) or run with the limiter sized for the proxy's
//! aggregate.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Most peers tracked, a hard bound. At the cap a sweep drops buckets
/// that have refilled to capacity — forgetting a full bucket is
/// lossless, it reconstructs identically on the peer's next connection.
/// If the table is still full after sweeping (a distinct-IP flood with
/// slow refill), *new* peers are admitted untracked rather than
/// inserted: per-IP budgets cannot stop an address-rotating flood
/// anyway, and the alternative — unbounded growth, or rejecting every
/// newcomer — hurts memory or honest first-time clients instead.
const MAX_TRACKED_PEERS: usize = 4096;

/// Least wall-clock time between two capacity sweeps. The sweep is the
/// only O(table) operation, and it runs under the accept loop's mutex —
/// throttling it keeps a distinct-IP flood from turning every accept
/// into a full-table scan.
const SWEEP_INTERVAL: Duration = Duration::from_secs(1);

/// Largest `Retry-After` hint ever reported, in seconds. `1e18` is
/// exactly representable in both `f64` and `u64`; waits beyond it (a
/// peer facing a near-zero refill rate) clamp *here*, never down to 1 —
/// a 1-second hint against a bucket that will not refill within any
/// client's lifetime would invite a tight 429 retry loop.
const MAX_RETRY_AFTER_SECS: f64 = 1e18;

/// Tunables of the per-peer token bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Sustained budget: tokens (connections) added per second.
    pub per_second: f64,
    /// Burst budget: bucket capacity, and the budget a fresh peer
    /// starts with.
    pub burst: f64,
}

impl RateLimitConfig {
    /// A config allowing `per_second` sustained connections with bursts
    /// of `burst`; both clamped to at least a whole token so a
    /// configured limiter can never deadlock every peer out.
    #[must_use]
    pub fn new(per_second: f64, burst: f64) -> RateLimitConfig {
        RateLimitConfig {
            per_second: per_second.max(f64::MIN_POSITIVE),
            burst: burst.max(1.0),
        }
    }
}

/// One peer's bucket: the balance at `refreshed`; the true balance at
/// any later instant is `tokens + elapsed × per_second`, capped at
/// `burst`.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refreshed: Instant,
}

/// The decision for one connection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDecision {
    /// Within budget: serve the connection.
    Admit,
    /// Over budget: reject with `429` and this many seconds of
    /// `Retry-After` (always ≥ 1 so clients cannot busy-loop on a
    /// zero hint).
    Reject {
        /// Whole seconds until a token will be available.
        retry_after: u64,
    },
}

/// The mutex-guarded interior of a [`RateLimiter`].
#[derive(Debug)]
struct LimiterState {
    buckets: HashMap<IpAddr, Bucket>,
    /// When the last capacity sweep ran (`None` = never).
    swept: Option<Instant>,
}

/// A thread-safe token-bucket rate limiter keyed by peer IP.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimitConfig,
    state: Mutex<LimiterState>,
}

impl RateLimiter {
    /// A limiter enforcing `config` with no peers tracked yet.
    #[must_use]
    pub fn new(config: RateLimitConfig) -> RateLimiter {
        RateLimiter {
            config,
            state: Mutex::new(LimiterState {
                buckets: HashMap::new(),
                swept: None,
            }),
        }
    }

    /// The config this limiter enforces.
    #[must_use]
    pub fn config(&self) -> RateLimitConfig {
        self.config
    }

    /// Charges one connection from `peer` against its bucket at the
    /// current instant.
    pub fn check(&self, peer: IpAddr) -> RateDecision {
        self.check_at(peer, Instant::now())
    }

    /// [`RateLimiter::check`] with an explicit clock — the testable
    /// core: decisions are a pure function of the config and the
    /// sequence of `(peer, now)` calls.
    pub fn check_at(&self, peer: IpAddr, now: Instant) -> RateDecision {
        let state = &mut *self.state.lock().expect("rate limiter lock");
        if state.buckets.len() >= MAX_TRACKED_PEERS && !state.buckets.contains_key(&peer) {
            // At capacity and meeting a new peer: sweep buckets that
            // have refilled to the full burst (dropping them is
            // lossless — a fresh bucket starts full). The sweep is
            // O(table) under the accept loop's mutex, so it runs at
            // most once per SWEEP_INTERVAL.
            let due = state
                .swept
                .is_none_or(|last| now.saturating_duration_since(last) >= SWEEP_INTERVAL);
            if due {
                let config = self.config;
                state.buckets.retain(|_, bucket| {
                    let elapsed = now.saturating_duration_since(bucket.refreshed);
                    bucket.tokens + elapsed.as_secs_f64() * config.per_second < config.burst
                });
                state.swept = Some(now);
            }
            if state.buckets.len() >= MAX_TRACKED_PEERS {
                // Still full: admit the newcomer untracked instead of
                // growing without bound (see MAX_TRACKED_PEERS).
                return RateDecision::Admit;
            }
        }
        let bucket = state.buckets.entry(peer).or_insert(Bucket {
            tokens: self.config.burst,
            refreshed: now,
        });
        // Refill for the time elapsed since the last decision, capped
        // at the burst budget. Out-of-order `now` values from racing
        // callers are tolerated by never rewinding the bucket's clock:
        // `saturating_duration_since` credits an out-of-order call zero
        // refill, and `refreshed` only moves forward — assigning the
        // earlier instant would let the next call re-credit the span
        // between the two clocks and admit the peer above its rate.
        let elapsed = now.saturating_duration_since(bucket.refreshed);
        bucket.tokens =
            (bucket.tokens + elapsed.as_secs_f64() * self.config.per_second).min(self.config.burst);
        if now > bucket.refreshed {
            bucket.refreshed = now;
        }
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            RateDecision::Admit
        } else {
            // Seconds until the deficit refills to one whole token,
            // rounded up and floored at 1 — a `Retry-After: 0` would
            // invite an immediate busy retry. Oversized or non-finite
            // waits (a pathologically small per-second rate) clamp up
            // to the cap, not down.
            let deficit = 1.0 - bucket.tokens;
            let wait = (deficit / self.config.per_second).ceil();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let retry_after = if wait.is_finite() && wait <= MAX_RETRY_AFTER_SECS {
                wait.max(1.0) as u64
            } else {
                MAX_RETRY_AFTER_SECS as u64
            };
            RateDecision::Reject { retry_after }
        }
    }

    /// Peers currently tracked (diagnostic; racy by nature).
    #[must_use]
    pub fn tracked_peers(&self) -> usize {
        self.state.lock().expect("rate limiter lock").buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn burst_is_admitted_then_rejected_with_retry_hint() {
        let limiter = RateLimiter::new(RateLimitConfig::new(1.0, 3.0));
        let t0 = Instant::now();
        for _ in 0..3 {
            assert_eq!(limiter.check_at(ip(1), t0), RateDecision::Admit);
        }
        let RateDecision::Reject { retry_after } = limiter.check_at(ip(1), t0) else {
            panic!("fourth connection in the same instant must be rejected");
        };
        assert_eq!(retry_after, 1, "one token per second → retry in 1s");
    }

    #[test]
    fn tokens_refill_over_time() {
        let limiter = RateLimiter::new(RateLimitConfig::new(2.0, 2.0));
        let t0 = Instant::now();
        assert_eq!(limiter.check_at(ip(1), t0), RateDecision::Admit);
        assert_eq!(limiter.check_at(ip(1), t0), RateDecision::Admit);
        assert!(matches!(
            limiter.check_at(ip(1), t0),
            RateDecision::Reject { .. }
        ));
        // Half a second at 2 tokens/s refills one whole token.
        let t1 = t0 + Duration::from_millis(500);
        assert_eq!(limiter.check_at(ip(1), t1), RateDecision::Admit);
        assert!(matches!(
            limiter.check_at(ip(1), t1),
            RateDecision::Reject { .. }
        ));
    }

    #[test]
    fn refill_is_capped_at_burst() {
        let limiter = RateLimiter::new(RateLimitConfig::new(100.0, 2.0));
        let t0 = Instant::now();
        // A long idle period must not bank more than `burst` tokens.
        let t1 = t0 + Duration::from_secs(3600);
        assert_eq!(limiter.check_at(ip(1), t0), RateDecision::Admit);
        assert_eq!(limiter.check_at(ip(1), t1), RateDecision::Admit);
        assert_eq!(limiter.check_at(ip(1), t1), RateDecision::Admit);
        assert!(matches!(
            limiter.check_at(ip(1), t1),
            RateDecision::Reject { .. }
        ));
    }

    #[test]
    fn peers_are_isolated() {
        let limiter = RateLimiter::new(RateLimitConfig::new(1.0, 1.0));
        let t0 = Instant::now();
        assert_eq!(limiter.check_at(ip(1), t0), RateDecision::Admit);
        assert!(matches!(
            limiter.check_at(ip(1), t0),
            RateDecision::Reject { .. }
        ));
        // A different peer has its own untouched bucket.
        assert_eq!(limiter.check_at(ip(2), t0), RateDecision::Admit);
    }

    #[test]
    fn slow_refill_reports_a_proportional_retry_after() {
        // 0.1 tokens/s: after spending the single burst token the peer
        // must wait 10 seconds for the next one.
        let limiter = RateLimiter::new(RateLimitConfig::new(0.1, 1.0));
        let t0 = Instant::now();
        assert_eq!(limiter.check_at(ip(1), t0), RateDecision::Admit);
        let RateDecision::Reject { retry_after } = limiter.check_at(ip(1), t0) else {
            panic!("over budget");
        };
        assert_eq!(retry_after, 10);
    }

    #[test]
    fn out_of_order_clocks_do_not_double_credit_refill() {
        let limiter = RateLimiter::new(RateLimitConfig::new(1.0, 1.0));
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_secs(1);
        // The burst token is spent at the *later* instant first.
        assert_eq!(limiter.check_at(ip(1), t1), RateDecision::Admit);
        // A racing caller with an earlier clock gets zero refill...
        assert!(matches!(
            limiter.check_at(ip(1), t0),
            RateDecision::Reject { .. }
        ));
        // ...and must not rewind `refreshed` to t0: if it did, this
        // repeat at t1 would credit the [t0, t1] second a second time
        // and admit the peer above its configured rate.
        assert!(matches!(
            limiter.check_at(ip(1), t1),
            RateDecision::Reject { .. }
        ));
    }

    #[test]
    fn pathological_refill_rate_clamps_retry_after_up_not_down() {
        // At 1e-300 tokens/s the true wait is ~1e300 seconds. The hint
        // must saturate at the cap — reporting 1s (the old fallback)
        // would tell the client to hammer a bucket that can never
        // refill, 429 after 429, forever.
        let limiter = RateLimiter::new(RateLimitConfig::new(1e-300, 1.0));
        let t0 = Instant::now();
        assert_eq!(limiter.check_at(ip(1), t0), RateDecision::Admit);
        let RateDecision::Reject { retry_after } = limiter.check_at(ip(1), t0) else {
            panic!("over budget");
        };
        assert_eq!(retry_after, 1_000_000_000_000_000_000);
    }

    #[test]
    fn config_clamps_degenerate_values() {
        let config = RateLimitConfig::new(0.0, 0.0);
        assert!(config.per_second > 0.0);
        assert!((config.burst - 1.0).abs() < f64::EPSILON);
        // Even the most restrictive config admits a fresh peer's first
        // connection.
        let limiter = RateLimiter::new(config);
        assert_eq!(limiter.check_at(ip(1), Instant::now()), RateDecision::Admit);
    }

    #[test]
    fn table_is_hard_bounded_and_full_buckets_are_swept() {
        let limiter = RateLimiter::new(RateLimitConfig::new(1000.0, 1.0));
        let t0 = Instant::now();
        for a in 0..=255u8 {
            for b in 0..=16u8 {
                let peer = IpAddr::V4(Ipv4Addr::new(10, 9, b, a));
                let _ = limiter.check_at(peer, t0);
            }
        }
        // 4352 distinct peers in the same instant: none are sweepable
        // (every bucket just spent its token), so the table stops
        // growing at the cap and newcomers are admitted untracked.
        assert_eq!(limiter.tracked_peers(), MAX_TRACKED_PEERS);
        // A second later everything has refilled at 1000 tokens/s: the
        // sweep clears the table and new peers are tracked again.
        let t1 = t0 + Duration::from_secs(1);
        assert_eq!(limiter.check_at(ip(1), t1), RateDecision::Admit);
        assert_eq!(limiter.tracked_peers(), 1, "swept and re-tracked");
    }

    /// A distinct-IP flood against a *slow-refill* config cannot grow
    /// the table past the cap, cannot run the O(table) sweep more than
    /// once per interval, and fails open for newcomers — while peers
    /// that are tracked stay limited.
    #[test]
    fn saturated_table_fails_open_for_new_peers_only() {
        let limiter = RateLimiter::new(RateLimitConfig::new(0.001, 1.0));
        let t0 = Instant::now();
        for a in 0..=255u8 {
            for b in 0..=16u8 {
                let peer = IpAddr::V4(Ipv4Addr::new(10, 9, b, a));
                let _ = limiter.check_at(peer, t0);
            }
        }
        assert_eq!(limiter.tracked_peers(), MAX_TRACKED_PEERS);
        // Nothing refills in a millisecond at 0.001 tokens/s; the
        // newcomer is admitted untracked (fail-open), repeatedly.
        let t1 = t0 + Duration::from_millis(1);
        let newcomer = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1));
        assert_eq!(limiter.check_at(newcomer, t1), RateDecision::Admit);
        assert_eq!(limiter.check_at(newcomer, t1), RateDecision::Admit);
        assert_eq!(limiter.tracked_peers(), MAX_TRACKED_PEERS);
        // A tracked peer's spent bucket still rejects.
        assert!(matches!(
            limiter.check_at(IpAddr::V4(Ipv4Addr::new(10, 9, 0, 0)), t1),
            RateDecision::Reject { .. }
        ));
    }

    fn flood(limiter: &RateLimiter, count: usize, at: Instant) {
        for n in 0..count {
            #[allow(clippy::cast_possible_truncation)]
            let peer = IpAddr::V4(Ipv4Addr::new(10, 8, (n >> 8) as u8, (n & 0xff) as u8));
            let _ = limiter.check_at(peer, at);
        }
    }

    /// The exact capacity boundary: peer number 4096 is the last one
    /// tracked (and therefore limited); peer 4097 is the first one the
    /// full table fails open for. One peer on each side of the bound,
    /// not just "a flood eventually saturates".
    #[test]
    fn the_4096th_peer_is_tracked_and_the_4097th_fails_open() {
        let limiter = RateLimiter::new(RateLimitConfig::new(0.001, 1.0));
        let t0 = Instant::now();
        flood(&limiter, MAX_TRACKED_PEERS - 1, t0);
        assert_eq!(limiter.tracked_peers(), MAX_TRACKED_PEERS - 1);
        // Peer 4096 fills the table to exactly the cap and is limited
        // like any tracked peer: its second connection in the same
        // instant rejects.
        let last_tracked = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 96));
        assert_eq!(limiter.check_at(last_tracked, t0), RateDecision::Admit);
        assert_eq!(limiter.tracked_peers(), MAX_TRACKED_PEERS);
        assert!(matches!(
            limiter.check_at(last_tracked, t0),
            RateDecision::Reject { .. }
        ));
        // Peer 4097 meets a full, unsweepable table (nothing refills at
        // 0.001 tokens/s): admitted untracked — fail-open — and the
        // table does not grow.
        let first_untracked = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 97));
        assert_eq!(limiter.check_at(first_untracked, t0), RateDecision::Admit);
        assert_eq!(limiter.check_at(first_untracked, t0), RateDecision::Admit);
        assert_eq!(limiter.tracked_peers(), MAX_TRACKED_PEERS);
    }

    /// The eviction sweep is throttled to once per `SWEEP_INTERVAL`:
    /// even when every bucket has refilled to sweepability, a newcomer
    /// arriving inside the interval must not trigger a second O(table)
    /// scan (it is admitted untracked instead); one arriving after the
    /// interval sweeps and is tracked.
    #[test]
    fn capacity_sweep_runs_at_most_once_per_interval() {
        let limiter = RateLimiter::new(RateLimitConfig::new(10.0, 1.0));
        let t0 = Instant::now();
        flood(&limiter, MAX_TRACKED_PEERS, t0);
        assert_eq!(limiter.tracked_peers(), MAX_TRACKED_PEERS);
        // First newcomer: the sweep runs (never swept before) but
        // nothing has refilled yet — fail-open, and the sweep clock
        // starts.
        let t1 = t0 + Duration::from_millis(10);
        assert_eq!(limiter.check_at(ip(201), t1), RateDecision::Admit);
        assert_eq!(limiter.tracked_peers(), MAX_TRACKED_PEERS);
        // 500ms later every bucket has refilled to the full burst
        // (sweepable), but the interval since the last sweep has not
        // elapsed: the table must stay full — a sweep here would be the
        // per-accept O(table) scan the throttle exists to prevent.
        let t2 = t0 + Duration::from_millis(510);
        assert_eq!(limiter.check_at(ip(202), t2), RateDecision::Admit);
        assert_eq!(limiter.tracked_peers(), MAX_TRACKED_PEERS);
        // Past the interval: the sweep clears the refilled table and
        // the newcomer is tracked again.
        let t3 = t1 + SWEEP_INTERVAL + Duration::from_millis(10);
        assert_eq!(limiter.check_at(ip(203), t3), RateDecision::Admit);
        assert_eq!(limiter.tracked_peers(), 1);
    }
}
