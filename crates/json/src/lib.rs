//! # marchgen-json
//!
//! A minimal, dependency-free JSON document model with a strict parser
//! and a writer, backing the serializable request/outcome API of the
//! `marchgen` workspace (the `serde` cargo feature of the facade).
//!
//! The crate intentionally mirrors the shape of a `serde_json::Value`
//! workflow — build a [`Json`] tree, [`Json::render`] it, [`Json::parse`]
//! it back — without pulling any external dependency, so the workspace
//! builds in fully offline environments.
//!
//! Numbers are kept in two lossless lanes: [`Json::Int`] for anything
//! that fits an `i64` (all counters, sizes and timings of the API) and
//! [`Json::Float`] for the rest. Object keys keep insertion order.
//!
//! # Example
//!
//! ```
//! use marchgen_json::Json;
//!
//! let doc = Json::object([
//!     ("name", Json::from("march")),
//!     ("ops", Json::Int(10)),
//!     ("verified", Json::Bool(true)),
//! ]);
//! let text = doc.render();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(doc, back);
//! assert_eq!(back.get("ops").and_then(Json::as_int), Some(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional or exponent part that fits an `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        i64::try_from(n)
            .map(Json::Int)
            .unwrap_or(Json::Float(n as f64))
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        i64::try_from(n)
            .map(Json::Int)
            .unwrap_or(Json::Float(n as f64))
    }
}

impl Json {
    /// Builds an object node from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array node.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integer.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_int().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the document as compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders the document with two-space indentation.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => write_float(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (k, (key, value)) in pairs.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (k, (key, value)) in pairs.iter().enumerate() {
                    if k > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses JSON text into a document.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset and reason on malformed input,
    /// including trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // Keep a fractional marker so the value re-parses into the
        // Float lane (f64 Display never uses exponent notation).
        if !s.contains('.') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; degrade to null like serde_json does.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl JsonError {
    /// A decode-level error (schema mismatch rather than syntax).
    #[must_use]
    pub fn decode(message: impl Into<String>) -> JsonError {
        JsonError {
            offset: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let len = utf8_len(b);
                    let chunk = rest
                        .get(..len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|c| std::str::from_utf8(c).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        // from_str_radix alone would accept a leading '+'.
        if !chunk.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(self.err("invalid \\u escape"));
        }
        let unit = u32::from_str_radix(chunk, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if !is_valid_json_number(text) {
            return Err(self.err(format!("invalid number {text:?}")));
        }
        if !fractional {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

/// RFC 8259 number grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
fn is_valid_json_number(text: &str) -> bool {
    let mut rest = text.strip_prefix('-').unwrap_or(text).as_bytes();
    // Integer part: "0" alone or a non-zero leading digit.
    match rest {
        [b'0', tail @ ..] => rest = tail,
        [b'1'..=b'9', ..] => {
            let digits = rest.iter().take_while(|b| b.is_ascii_digit()).count();
            rest = &rest[digits..];
        }
        _ => return false,
    }
    if let [b'.', tail @ ..] = rest {
        let digits = tail.iter().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return false;
        }
        rest = &tail[digits..];
    }
    if let [b'e' | b'E', tail @ ..] = rest {
        let tail = match tail {
            [b'+' | b'-', t @ ..] => t,
            t => t,
        };
        let digits = tail.iter().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return false;
        }
        rest = &tail[digits..];
    }
    rest.is_empty()
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Types that encode themselves into a [`Json`] tree.
pub trait ToJson {
    /// Encodes `self`.
    fn to_json(&self) -> Json;

    /// Shortcut: compact JSON text.
    fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Shortcut: pretty JSON text.
    fn to_json_pretty(&self) -> String {
        self.to_json().render_pretty()
    }
}

/// Types that decode themselves from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Decodes a value from the tree.
    ///
    /// # Errors
    ///
    /// [`JsonError`] describing the first schema mismatch.
    fn from_json(json: &Json) -> Result<Self, JsonError>;

    /// Parses text and decodes it.
    ///
    /// # Errors
    ///
    /// Syntax errors from [`Json::parse`] or schema errors from
    /// [`FromJson::from_json`].
    fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// Decode helper: fetches a required object field.
///
/// # Errors
///
/// [`JsonError`] naming the missing field.
pub fn field<'a>(json: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    json.get(key)
        .ok_or_else(|| JsonError::decode(format!("missing field {key:?}")))
}

/// Decode helper: required string field.
///
/// # Errors
///
/// [`JsonError`] when absent or not a string.
pub fn str_field<'a>(json: &'a Json, key: &str) -> Result<&'a str, JsonError> {
    field(json, key)?
        .as_str()
        .ok_or_else(|| JsonError::decode(format!("field {key:?} must be a string")))
}

/// Decode helper: required `usize` field.
///
/// # Errors
///
/// [`JsonError`] when absent or not a non-negative integer.
pub fn usize_field(json: &Json, key: &str) -> Result<usize, JsonError> {
    field(json, key)?
        .as_usize()
        .ok_or_else(|| JsonError::decode(format!("field {key:?} must be a non-negative integer")))
}

/// Decode helper: required `bool` field.
///
/// # Errors
///
/// [`JsonError`] when absent or not a boolean.
pub fn bool_field(json: &Json, key: &str) -> Result<bool, JsonError> {
    field(json, key)?
        .as_bool()
        .ok_or_else(|| JsonError::decode(format!("field {key:?} must be a boolean")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for doc in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Float(1.5),
            Json::Str("hé\"llo\n⇑".into()),
        ] {
            assert_eq!(Json::parse(&doc.render()).unwrap(), doc, "{doc:?}");
        }
    }

    #[test]
    fn nested_roundtrip_compact_and_pretty() {
        let doc = Json::object([
            (
                "list",
                Json::array([Json::Int(1), Json::Null, Json::Str("x".into())]),
            ),
            ("empty_list", Json::Array(Vec::new())),
            ("empty_obj", Json::Object(Vec::new())),
            ("nested", Json::object([("k", Json::Float(2.25))])),
        ]);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""↑ 😀""#).unwrap(), Json::Str("↑ 😀".into()));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("[1, ]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn numbers_keep_their_lane() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Float(7.0));
        // Float renders with a marker so it re-parses as Float.
        assert_eq!(
            Json::parse(&Json::Float(7.0).render()).unwrap(),
            Json::Float(7.0)
        );
    }

    #[test]
    fn strictness_rejects_nonconforming_documents() {
        for doc in [
            "\"a\nb\"",    // raw control character in a string
            "007",         // leading zero
            "-01",         // leading zero after sign
            "1.",          // empty fraction
            "1e",          // empty exponent
            "+1",          // leading plus
            r#""\u+041""#, // '+' inside a \u escape
            ".5",          // missing integer part
        ] {
            assert!(Json::parse(doc).is_err(), "{doc:?} should be rejected");
        }
        // The conforming neighbours still parse.
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("-0.5e+2").unwrap(), Json::Float(-50.0));
        assert_eq!(Json::parse("1E3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn huge_usize_degrades_like_u64() {
        // Above i64::MAX both unsigned lanes fall back to Float instead
        // of wrapping negative.
        assert_eq!(Json::from(u64::MAX), Json::Float(u64::MAX as f64));
        assert_eq!(Json::from(usize::MAX), Json::Float(usize::MAX as f64));
        assert_eq!(Json::from(7usize), Json::Int(7));
    }

    #[test]
    fn field_helpers() {
        let doc = Json::object([("n", Json::Int(3)), ("s", Json::from("x"))]);
        assert_eq!(usize_field(&doc, "n").unwrap(), 3);
        assert_eq!(str_field(&doc, "s").unwrap(), "x");
        assert!(usize_field(&doc, "missing").is_err());
        assert!(bool_field(&doc, "n").is_err());
    }
}
