//! Property tests for the two-cell machine and state algebra
//! (deterministic `marchgen-testkit` harness).

use marchgen_model::{Bit, Cell, MemOp, PairState, Transition, TwoCellMachine, ALL_OPS};
use marchgen_testkit::{run_cases, Rng};

fn random_op(rng: &mut Rng) -> MemOp {
    *rng.pick(&ALL_OPS)
}

fn random_state(rng: &mut Rng) -> PairState {
    PairState::from_index(rng.range(0, 4))
}

/// M0 is write-deterministic: the state after a sequence equals the last
/// written value per cell (or the start value if never written).
#[test]
fn m0_state_is_last_write() {
    run_cases("m0_state_is_last_write", 256, |rng| {
        let start = random_state(rng);
        let ops = rng.vec(0, 32, random_op);
        let m0 = TwoCellMachine::fault_free();
        let (end, _) = m0.run(start, &ops);
        for cell in Cell::ALL {
            let expected = ops
                .iter()
                .rev()
                .find_map(|op| match op {
                    MemOp::Write(c, d) if *c == cell => Some((*d).into()),
                    _ => None,
                })
                .unwrap_or(start.get(cell));
            assert_eq!(end.get(cell), expected);
        }
    });
}

/// M0 reads echo the current state and never change it.
#[test]
fn m0_reads_are_pure() {
    for start in PairState::all_known() {
        let m0 = TwoCellMachine::fault_free();
        for cell in Cell::ALL {
            let (next, out) = m0.step(start, MemOp::read(cell));
            assert_eq!(next, start);
            assert_eq!(out, start.get(cell).bit());
        }
    }
}

/// Overriding an entry and diffing recovers exactly that entry.
#[test]
fn override_diff_roundtrip() {
    run_cases("override_diff_roundtrip", 256, |rng| {
        let state = random_state(rng);
        let op = random_op(rng);
        let target = random_state(rng);
        let output = *rng.pick(&[None, Some(Bit::Zero), Some(Bit::One)]);
        let m0 = TwoCellMachine::fault_free();
        let tr = Transition {
            next: target,
            output,
        };
        let faulty = m0.with_override(state, op, tr);
        let diffs = m0.diff(&faulty);
        if m0.transition(state, op) == tr {
            assert!(diffs.is_empty());
        } else {
            assert_eq!(diffs.len(), 1);
            assert_eq!(diffs[0].state, state);
            assert_eq!(diffs[0].op, op);
            assert_eq!(diffs[0].faulty, tr);
            assert!(faulty.is_bfe());
        }
    });
}

/// distance_to is a metric-like gauge on fully known states: zero iff
/// satisfying, symmetric on fully specified states, ≤ 2.
#[test]
fn distance_properties() {
    for a in PairState::all_known() {
        for b in PairState::all_known() {
            let d = a.distance_to(&b);
            assert!(d <= 2);
            assert_eq!(d == 0, a.satisfies(&b));
            assert_eq!(a.distance_to(&b), b.distance_to(&a));
        }
    }
}

/// writes_to produces exactly distance_to writes and reaches the target
/// through M0.
#[test]
fn writes_realize_distance() {
    for a in PairState::all_known() {
        for b in PairState::all_known() {
            let m0 = TwoCellMachine::fault_free();
            let writes = a.writes_to(&b);
            assert_eq!(writes.len() as u32, a.distance_to(&b));
            let (end, _) = m0.run(a, &writes);
            assert!(end.satisfies(&b));
        }
    }
}

/// Mirror and complement are commuting involutions on states.
#[test]
fn state_symmetries() {
    for a in PairState::all_known() {
        assert_eq!(a.mirrored().mirrored(), a);
        assert_eq!(a.complement().complement(), a);
        assert_eq!(a.mirrored().complement(), a.complement().mirrored());
    }
}
