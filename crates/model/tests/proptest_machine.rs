//! Property tests for the two-cell machine and state algebra.

use marchgen_model::{Bit, Cell, MemOp, PairState, Transition, TwoCellMachine, ALL_OPS};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = MemOp> {
    (0usize..ALL_OPS.len()).prop_map(|k| ALL_OPS[k])
}

fn state_strategy() -> impl Strategy<Value = PairState> {
    (0usize..4).prop_map(PairState::from_index)
}

proptest! {
    /// M0 is write-deterministic: the state after a sequence equals the
    /// last written value per cell (or the start value if never written).
    #[test]
    fn m0_state_is_last_write(
        start in state_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..32),
    ) {
        let m0 = TwoCellMachine::fault_free();
        let (end, _) = m0.run(start, &ops);
        for cell in Cell::ALL {
            let expected = ops
                .iter()
                .rev()
                .find_map(|op| match op {
                    MemOp::Write(c, d) if *c == cell => Some((*d).into()),
                    _ => None,
                })
                .unwrap_or(start.get(cell));
            prop_assert_eq!(end.get(cell), expected);
        }
    }

    /// M0 reads echo the current state and never change it.
    #[test]
    fn m0_reads_are_pure(start in state_strategy()) {
        let m0 = TwoCellMachine::fault_free();
        for cell in Cell::ALL {
            let (next, out) = m0.step(start, MemOp::read(cell));
            prop_assert_eq!(next, start);
            prop_assert_eq!(out, start.get(cell).bit());
        }
    }

    /// Overriding an entry and diffing recovers exactly that entry.
    #[test]
    fn override_diff_roundtrip(
        state in state_strategy(),
        op in op_strategy(),
        target in state_strategy(),
        out_sel in 0usize..3,
    ) {
        let m0 = TwoCellMachine::fault_free();
        let output = [None, Some(Bit::Zero), Some(Bit::One)][out_sel];
        let tr = Transition { next: target, output };
        let faulty = m0.with_override(state, op, tr);
        let diffs = m0.diff(&faulty);
        if m0.transition(state, op) == tr {
            prop_assert!(diffs.is_empty());
        } else {
            prop_assert_eq!(diffs.len(), 1);
            prop_assert_eq!(diffs[0].state, state);
            prop_assert_eq!(diffs[0].op, op);
            prop_assert_eq!(diffs[0].faulty, tr);
            prop_assert!(faulty.is_bfe());
        }
    }

    /// distance_to is a metric-like gauge on fully known states: zero iff
    /// satisfying, symmetric on fully specified states, ≤ 2.
    #[test]
    fn distance_properties(a in state_strategy(), b in state_strategy()) {
        let d = a.distance_to(&b);
        prop_assert!(d <= 2);
        prop_assert_eq!(d == 0, a.satisfies(&b));
        prop_assert_eq!(a.distance_to(&b), b.distance_to(&a));
    }

    /// writes_to produces exactly distance_to writes and reaches the
    /// target through M0.
    #[test]
    fn writes_realize_distance(a in state_strategy(), b in state_strategy()) {
        let m0 = TwoCellMachine::fault_free();
        let writes = a.writes_to(&b);
        prop_assert_eq!(writes.len() as u32, a.distance_to(&b));
        let (end, _) = m0.run(a, &writes);
        prop_assert!(end.satisfies(&b));
    }

    /// Mirror and complement are commuting involutions on states.
    #[test]
    fn state_symmetries(a in state_strategy()) {
        prop_assert_eq!(a.mirrored().mirrored(), a);
        prop_assert_eq!(a.complement().complement(), a);
        prop_assert_eq!(a.mirrored().complement(), a.complement().mirrored());
    }
}
