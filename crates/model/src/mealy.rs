//! A small generic deterministic Mealy automaton, the formal object of
//! paper formula f.2.1 for arbitrary state/input/output sets.
//!
//! The concrete two-cell machine ([`crate::TwoCellMachine`]) uses dense
//! tables for speed; this generic container backs user-defined models
//! (multi-port memories, wider neighbourhoods) and the tests that relate
//! the two representations.

use std::collections::BTreeMap;
use std::fmt::Debug;

/// A deterministic Mealy automaton `(Q, X, Y, δ, λ)` with explicit
/// transition table.
///
/// `S`, `I`, `O` are the state, input and output alphabets. Missing
/// entries are rejected at [`step`](Mealy::step) time with `None`, which
/// lets partial machines (the paper's `Qᵢ ⊆ Q`, f.2.2) be represented
/// directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mealy<S, I, O> {
    table: BTreeMap<(S, I), (S, O)>,
}

impl<S, I, O> Mealy<S, I, O>
where
    S: Ord + Clone,
    I: Ord + Clone,
    O: Clone + PartialEq,
{
    /// Creates an empty machine.
    #[must_use]
    pub fn new() -> Self {
        Mealy {
            table: BTreeMap::new(),
        }
    }

    /// Inserts (or replaces) the `(δ, λ)` entry for `(state, input)`,
    /// returning the previous entry if any.
    pub fn insert(&mut self, state: S, input: I, next: S, output: O) -> Option<(S, O)> {
        self.table.insert((state, input), (next, output))
    }

    /// The `(δ, λ)` entry for `(state, input)`, if defined.
    #[must_use]
    pub fn get(&self, state: &S, input: &I) -> Option<&(S, O)> {
        self.table.get(&(state.clone(), input.clone()))
    }

    /// Applies one input. Returns `None` when the transition is undefined
    /// (outside `Qᵢ × Xᵢ`).
    #[must_use]
    pub fn step(&self, state: &S, input: &I) -> Option<(S, O)> {
        self.get(state, input).cloned()
    }

    /// Runs an input word, collecting outputs; stops at the first
    /// undefined transition and reports how many inputs were consumed.
    pub fn run<'a>(&self, start: &S, word: impl IntoIterator<Item = &'a I>) -> RunResult<S, O>
    where
        I: 'a,
    {
        let mut state = start.clone();
        let mut outputs = Vec::new();
        let mut consumed = 0;
        for input in word {
            match self.step(&state, input) {
                Some((next, out)) => {
                    state = next;
                    outputs.push(out);
                    consumed += 1;
                }
                None => {
                    return RunResult {
                        state,
                        outputs,
                        consumed,
                        complete: false,
                    }
                }
            }
        }
        RunResult {
            state,
            outputs,
            consumed,
            complete: true,
        }
    }

    /// Number of defined `(state, input)` entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no entry is defined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates over `((state, input), (next, output))` entries in
    /// deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&(S, I), &(S, O))> {
        self.table.iter()
    }

    /// The `(state, input)` points where two machines differ (including
    /// entries defined in only one of them).
    #[must_use]
    pub fn diff_keys(&self, other: &Self) -> Vec<(S, I)> {
        let mut keys: Vec<(S, I)> = Vec::new();
        for (k, v) in &self.table {
            match other.table.get(k) {
                Some(w) if w.0 == v.0 && w.1 == v.1 => {}
                _ => keys.push(k.clone()),
            }
        }
        for k in other.table.keys() {
            if !self.table.contains_key(k) {
                keys.push(k.clone());
            }
        }
        keys.sort();
        keys.dedup();
        keys
    }
}

impl<S, I, O> Default for Mealy<S, I, O>
where
    S: Ord + Clone,
    I: Ord + Clone,
    O: Clone + PartialEq,
{
    fn default() -> Self {
        Mealy::new()
    }
}

/// Result of [`Mealy::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult<S, O> {
    /// State after the last consumed input.
    pub state: S,
    /// Outputs of the consumed inputs, in order.
    pub outputs: Vec<O>,
    /// Number of inputs consumed.
    pub consumed: usize,
    /// `true` when the whole word was consumed.
    pub complete: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemOp, PairState, TwoCellMachine};

    /// Builds the generic-representation mirror of a [`TwoCellMachine`].
    fn generic_of(m: &TwoCellMachine) -> Mealy<usize, usize, Option<crate::Bit>> {
        let mut g = Mealy::new();
        for (s, op, tr) in m.entries() {
            g.insert(s.index(), op.index(), tr.next.index(), tr.output);
        }
        g
    }

    #[test]
    fn generic_mirror_agrees_with_dense_m0() {
        let m0 = TwoCellMachine::fault_free();
        let g = generic_of(&m0);
        assert_eq!(g.len(), 4 * 7);
        for (s, op, tr) in m0.entries() {
            let (n, o) = g.step(&s.index(), &op.index()).unwrap();
            assert_eq!(n, tr.next.index());
            assert_eq!(o, tr.output);
        }
    }

    #[test]
    fn run_stops_on_undefined() {
        let mut g: Mealy<u8, char, u8> = Mealy::new();
        g.insert(0, 'a', 1, 10);
        g.insert(1, 'b', 0, 20);
        let r = g.run(&0, ['a', 'b', 'z'].iter());
        assert_eq!(r.consumed, 2);
        assert!(!r.complete);
        assert_eq!(r.outputs, vec![10, 20]);
        assert_eq!(r.state, 0);
    }

    #[test]
    fn diff_keys_detects_overrides_and_domain_gaps() {
        let m0 = TwoCellMachine::fault_free();
        let g0 = generic_of(&m0);
        let faulty = m0.with_delta(
            PairState::from_index(1),
            MemOp::write(crate::Cell::I, crate::Bit::One),
            PairState::from_index(2),
        );
        let g1 = generic_of(&faulty);
        let d = g0.diff_keys(&g1);
        assert_eq!(d.len(), 1);

        let mut partial = g1.clone();
        // Emulate Qi ⊂ Q by rebuilding without state 3.
        let mut g2 = Mealy::new();
        for (k, v) in partial.iter() {
            if k.0 != 3 {
                g2.insert(k.0, k.1, v.0, v.1);
            }
        }
        partial = g2;
        assert_eq!(g1.diff_keys(&partial).len(), 7);
    }

    #[test]
    fn empty_machine() {
        let g: Mealy<u8, u8, u8> = Mealy::default();
        assert!(g.is_empty());
        assert_eq!(g.step(&0, &0), None);
    }
}
