//! Two-cell memory states, possibly partial (`-` components), and the
//! Hamming-distance weight function of paper formula f.4.1.

use crate::op::{Cell, MemOp};
use crate::value::{Bit, Tri};
use std::fmt;

/// The state of the two-cell memory: the contents of cells `i` and `j`.
///
/// Components may be [`Tri::X`]: in a *test-pattern initialization state*
/// an `X` means "don't care", in a *simulated memory* it means
/// "uninitialized". The type offers both readings; see
/// [`PairState::satisfies`] and [`PairState::distance_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PairState {
    /// Content of the lower-addressed cell `i`.
    pub i: Tri,
    /// Content of the higher-addressed cell `j`.
    pub j: Tri,
}

impl PairState {
    /// A state with both cells unknown (`--`), the power-up state.
    pub const UNKNOWN: PairState = PairState {
        i: Tri::X,
        j: Tri::X,
    };

    /// Creates a state from two three-valued contents.
    #[must_use]
    pub fn new(i: Tri, j: Tri) -> PairState {
        PairState { i, j }
    }

    /// Creates a fully known state from two bits.
    #[must_use]
    pub fn new_known(i: Bit, j: Bit) -> PairState {
        PairState {
            i: i.into(),
            j: j.into(),
        }
    }

    /// All four fully specified states `00, 01, 10, 11`, in the index order
    /// used by [`crate::TwoCellMachine`].
    #[must_use]
    pub fn all_known() -> [PairState; 4] {
        [
            PairState::new_known(Bit::Zero, Bit::Zero),
            PairState::new_known(Bit::Zero, Bit::One),
            PairState::new_known(Bit::One, Bit::Zero),
            PairState::new_known(Bit::One, Bit::One),
        ]
    }

    /// The content of `cell`.
    #[must_use]
    pub fn get(&self, cell: Cell) -> Tri {
        match cell {
            Cell::I => self.i,
            Cell::J => self.j,
        }
    }

    /// Returns a copy with `cell` set to `value`.
    #[must_use]
    pub fn with(self, cell: Cell, value: Tri) -> PairState {
        match cell {
            Cell::I => PairState { i: value, ..self },
            Cell::J => PairState { j: value, ..self },
        }
    }

    /// `true` when both components are known.
    #[must_use]
    pub fn is_fully_known(&self) -> bool {
        self.i.is_known() && self.j.is_known()
    }

    /// `true` when every *specified* component holds the same value —
    /// the "00 / 11" condition of paper formula f.4.4 (such states are
    /// reachable with a single March write element).
    ///
    /// States with no specified component are uniform.
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        match (self.i.bit(), self.j.bit()) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        }
    }

    /// Dense index `i*2 + j` of a fully known state.
    ///
    /// # Panics
    ///
    /// Panics if any component is unknown.
    #[must_use]
    pub fn index(&self) -> usize {
        let i = self
            .i
            .bit()
            .expect("state component i is unknown")
            .as_usize();
        let j = self
            .j
            .bit()
            .expect("state component j is unknown")
            .as_usize();
        i * 2 + j
    }

    /// Inverse of [`PairState::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx > 3`.
    #[must_use]
    pub fn from_index(idx: usize) -> PairState {
        assert!(idx < 4, "state index out of range: {idx}");
        PairState::new_known(Bit::from_usize(idx / 2), Bit::from_usize(idx % 2))
    }

    /// Whether this (concrete) state satisfies a (possibly partial)
    /// requirement: every specified component of `req` must match.
    #[must_use]
    pub fn satisfies(&self, req: &PairState) -> bool {
        self.i.satisfies(req.i) && self.j.satisfies(req.j)
    }

    /// The *weight* function of paper formula f.4.1: the number of write
    /// operations needed to move a memory whose state is `self` into a
    /// state satisfying `target`.
    ///
    /// This is the Hamming distance over the components `target` specifies;
    /// an unknown component of `self` always costs a write (its content
    /// cannot be relied upon).
    ///
    /// ```
    /// # use marchgen_model::{PairState, Tri};
    /// let s = PairState::new(Tri::One, Tri::Zero);
    /// let t = PairState::new(Tri::Zero, Tri::Zero);
    /// assert_eq!(s.distance_to(&t), 1);
    /// assert_eq!(PairState::UNKNOWN.distance_to(&t), 2);
    /// ```
    #[must_use]
    pub fn distance_to(&self, target: &PairState) -> u32 {
        let component = |have: Tri, want: Tri| -> u32 {
            match want {
                Tri::X => 0,
                _ if have == want => 0,
                _ => 1,
            }
        };
        component(self.i, target.i) + component(self.j, target.j)
    }

    /// The writes that move `self` into a state satisfying `target`
    /// (cell `i` first). The length equals [`PairState::distance_to`].
    #[must_use]
    pub fn writes_to(&self, target: &PairState) -> Vec<MemOp> {
        let mut ops = Vec::new();
        for cell in Cell::ALL {
            if let Some(bit) = target.get(cell).bit() {
                if self.get(cell) != Tri::from(bit) {
                    ops.push(MemOp::write(cell, bit));
                }
            }
        }
        ops
    }

    /// Merges two partial states, returning `None` on conflicting
    /// specified components. Used when one test pattern must satisfy two
    /// requirements at once.
    #[must_use]
    pub fn merge(&self, other: &PairState) -> Option<PairState> {
        let comp = |a: Tri, b: Tri| -> Option<Tri> {
            match (a, b) {
                (Tri::X, v) | (v, Tri::X) => Some(v),
                (a, b) if a == b => Some(a),
                _ => None,
            }
        };
        Some(PairState {
            i: comp(self.i, other.i)?,
            j: comp(self.j, other.j)?,
        })
    }

    /// The state with both components complemented (`X` unchanged). Data
    /// polarity is a symmetry of the fault models, so complemented states
    /// appear in complement-equivalent tests.
    #[must_use]
    pub fn complement(&self) -> PairState {
        PairState {
            i: self.i.flip(),
            j: self.j.flip(),
        }
    }

    /// The state with the two cells swapped (address-order mirror).
    #[must_use]
    pub fn mirrored(&self) -> PairState {
        PairState {
            i: self.j,
            j: self.i,
        }
    }
}

impl fmt::Display for PairState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.i, self.j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for idx in 0..4 {
            assert_eq!(PairState::from_index(idx).index(), idx);
        }
    }

    #[test]
    fn uniform_states() {
        assert!(PairState::new_known(Bit::Zero, Bit::Zero).is_uniform());
        assert!(PairState::new_known(Bit::One, Bit::One).is_uniform());
        assert!(!PairState::new_known(Bit::Zero, Bit::One).is_uniform());
        assert!(PairState::new(Tri::One, Tri::X).is_uniform());
        assert!(PairState::UNKNOWN.is_uniform());
    }

    #[test]
    fn distance_examples_from_figure4() {
        // Figure 4 edge weights: obs(TP3)=10 → init(TP2)=10 is 0,
        // obs(TP1)=11 → init(TP2)=10 is 1, obs(TP3)=10 → init(TP1)=01 is 2.
        let s10 = PairState::new_known(Bit::One, Bit::Zero);
        let s11 = PairState::new_known(Bit::One, Bit::One);
        let s01 = PairState::new_known(Bit::Zero, Bit::One);
        assert_eq!(s10.distance_to(&s10), 0);
        assert_eq!(s11.distance_to(&s10), 1);
        assert_eq!(s10.distance_to(&s01), 2);
    }

    #[test]
    fn distance_ignores_dont_care_targets() {
        let t = PairState::new(Tri::One, Tri::X);
        assert_eq!(PairState::new_known(Bit::One, Bit::Zero).distance_to(&t), 0);
        assert_eq!(PairState::new_known(Bit::Zero, Bit::One).distance_to(&t), 1);
        assert_eq!(PairState::UNKNOWN.distance_to(&t), 1);
    }

    #[test]
    fn writes_to_reaches_target() {
        for s in PairState::all_known() {
            for t in PairState::all_known() {
                let mut cur = s;
                let ops = s.writes_to(&t);
                assert_eq!(ops.len() as u32, s.distance_to(&t));
                for op in ops {
                    if let MemOp::Write(c, d) = op {
                        cur = cur.with(c, d.into());
                    }
                }
                assert!(cur.satisfies(&t));
            }
        }
    }

    #[test]
    fn merge_conflicts_detected() {
        let a = PairState::new(Tri::One, Tri::X);
        let b = PairState::new(Tri::Zero, Tri::X);
        assert_eq!(a.merge(&b), None);
        let c = PairState::new(Tri::X, Tri::Zero);
        assert_eq!(a.merge(&c), Some(PairState::new(Tri::One, Tri::Zero)));
    }

    #[test]
    fn satisfies_partial() {
        let req = PairState::new(Tri::Zero, Tri::X);
        assert!(PairState::new_known(Bit::Zero, Bit::One).satisfies(&req));
        assert!(!PairState::new_known(Bit::One, Bit::One).satisfies(&req));
        assert!(!PairState::UNKNOWN.satisfies(&req));
    }

    #[test]
    fn complement_and_mirror() {
        let s = PairState::new(Tri::Zero, Tri::X);
        assert_eq!(s.complement(), PairState::new(Tri::One, Tri::X));
        assert_eq!(s.mirrored(), PairState::new(Tri::X, Tri::Zero));
        assert_eq!(s.complement().complement(), s);
        assert_eq!(s.mirrored().mirrored(), s);
    }
}
