//! Graphviz DOT export of two-cell machines, reproducing the visual form
//! of paper Figures 1 and 2 (parallel edges merged into one label,
//! fault-modified edges emphasised in bold).

use crate::op::MemOp;
use crate::state::PairState;
use crate::two_cell::TwoCellMachine;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders `machine` as a Graphviz digraph.
///
/// Edges with the same source, destination and output are merged into one
/// arrow labelled with the comma-separated operation list, matching the
/// `(w0i, w0j, T) / -` style of paper Figure 1. Entries where `machine`
/// differs from `M0` are drawn bold (the convention of Figure 2).
///
/// ```
/// # use marchgen_model::{TwoCellMachine, dot};
/// let g = dot::render(&TwoCellMachine::fault_free(), "M0");
/// assert!(g.starts_with("digraph M0"));
/// ```
#[must_use]
pub fn render(machine: &TwoCellMachine, name: &str) -> String {
    let m0 = TwoCellMachine::fault_free();
    let diffs: Vec<(PairState, MemOp)> = m0
        .diff(machine)
        .into_iter()
        .map(|d| (d.state, d.op))
        .collect();

    // (src, dst, output, bold) -> ops
    let mut edges: BTreeMap<(usize, usize, String, bool), Vec<String>> = BTreeMap::new();
    for (state, op, tr) in machine.entries() {
        let out = tr.output.map_or("-".to_string(), |b| b.to_string());
        let bold = diffs.contains(&(state, op));
        edges
            .entry((state.index(), tr.next.index(), out, bold))
            .or_default()
            .push(op.to_string());
    }

    let mut s = String::new();
    let _ = writeln!(s, "digraph {name} {{");
    let _ = writeln!(s, "  rankdir=LR;");
    let _ = writeln!(s, "  node [shape=circle, fontname=\"Helvetica\"];");
    for state in PairState::all_known() {
        let _ = writeln!(s, "  s{} [label=\"{}\"];", state.index(), state);
    }
    for ((src, dst, out, bold), ops) in &edges {
        let label = if ops.len() == 1 {
            format!("{} / {}", ops[0], out)
        } else {
            format!("({}) / {}", ops.join(", "), out)
        };
        let style = if *bold {
            ", style=bold, color=red, penwidth=2.0"
        } else {
            ""
        };
        let _ = writeln!(s, "  s{src} -> s{dst} [label=\"{label}\"{style}];");
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bit, Cell, Tri};

    #[test]
    fn m0_dot_has_four_states_and_merged_labels() {
        let g = render(&TwoCellMachine::fault_free(), "M0");
        for st in ["\"00\"", "\"01\"", "\"10\"", "\"11\""] {
            assert!(g.contains(st), "missing state {st} in:\n{g}");
        }
        // The silent self-loop cluster of Figure 1 appears merged.
        assert!(g.contains("(w0i, w0j, T) / -"), "{g}");
        // The fault-free machine has no bold edge.
        assert!(!g.contains("style=bold"), "{g}");
    }

    #[test]
    fn faulty_machine_highlights_bfe_edge() {
        let m1 = TwoCellMachine::fault_free().with_delta(
            PairState::new(Tri::Zero, Tri::One),
            MemOp::write(Cell::I, Bit::One),
            PairState::new(Tri::One, Tri::Zero),
        );
        let g = render(&m1, "M1");
        assert!(g.contains("style=bold"), "{g}");
        assert!(g.contains("w1i"), "{g}");
    }

    #[test]
    fn dot_is_syntactically_bracketed() {
        let g = render(&TwoCellMachine::fault_free(), "M0");
        assert_eq!(g.matches('{').count(), g.matches('}').count());
    }
}
