//! The one-bit cell value algebra: [`Bit`] (known values) and [`Tri`]
//! (three-valued logic with an *unknown/uninitialized* element, the `-` of
//! the paper's state alphabet `Q = {0, 1, -}ⁿ`).

use std::fmt;
use std::ops::Not;

/// A fully specified one-bit memory value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bit {
    /// Logic `0`.
    Zero,
    /// Logic `1`.
    One,
}

impl Bit {
    /// Both bit values, in numeric order.
    pub const ALL: [Bit; 2] = [Bit::Zero, Bit::One];

    /// The complementary value (`0 ↔ 1`).
    ///
    /// ```
    /// # use marchgen_model::Bit;
    /// assert_eq!(Bit::Zero.flip(), Bit::One);
    /// ```
    #[must_use]
    pub fn flip(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }

    /// Numeric value (`0` or `1`), handy for indexing tables.
    #[must_use]
    pub fn as_usize(self) -> usize {
        match self {
            Bit::Zero => 0,
            Bit::One => 1,
        }
    }

    /// Inverse of [`Bit::as_usize`] for values `0`/`1`.
    ///
    /// # Panics
    ///
    /// Panics if `v > 1`.
    #[must_use]
    pub fn from_usize(v: usize) -> Bit {
        match v {
            0 => Bit::Zero,
            1 => Bit::One,
            _ => panic!("bit value out of range: {v}"),
        }
    }
}

impl Not for Bit {
    type Output = Bit;
    fn not(self) -> Bit {
        self.flip()
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Bit {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl From<Bit> for bool {
    fn from(b: Bit) -> bool {
        b == Bit::One
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Bit::Zero => "0",
            Bit::One => "1",
        })
    }
}

/// A three-valued cell content: `0`, `1`, or `-` (unknown/uninitialized).
///
/// `X` is the power-up value of a real memory cell; a deterministic test
/// cannot rely on it. The simulator propagates `X` so that "reads only
/// verify initialized cells" is checked, not assumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Tri {
    /// Logic `0`.
    Zero,
    /// Logic `1`.
    One,
    /// Unknown / uninitialized (the paper's `-`).
    #[default]
    X,
}

impl Tri {
    /// All three values.
    pub const ALL: [Tri; 3] = [Tri::Zero, Tri::One, Tri::X];

    /// `true` when the value is `0` or `1`.
    #[must_use]
    pub fn is_known(self) -> bool {
        !matches!(self, Tri::X)
    }

    /// The known bit, if any.
    #[must_use]
    pub fn bit(self) -> Option<Bit> {
        match self {
            Tri::Zero => Some(Bit::Zero),
            Tri::One => Some(Bit::One),
            Tri::X => None,
        }
    }

    /// Three-valued complement; `X` stays `X`.
    #[must_use]
    pub fn flip(self) -> Tri {
        match self {
            Tri::Zero => Tri::One,
            Tri::One => Tri::Zero,
            Tri::X => Tri::X,
        }
    }

    /// Whether a cell holding `self` is *compatible* with a required value
    /// `req` (an `X` requirement accepts anything; an `X` content satisfies
    /// nothing but `X`).
    ///
    /// ```
    /// # use marchgen_model::Tri;
    /// assert!(Tri::Zero.satisfies(Tri::X));
    /// assert!(!Tri::X.satisfies(Tri::Zero));
    /// ```
    #[must_use]
    pub fn satisfies(self, req: Tri) -> bool {
        match req {
            Tri::X => true,
            _ => self == req,
        }
    }
}

impl From<Bit> for Tri {
    fn from(b: Bit) -> Tri {
        match b {
            Bit::Zero => Tri::Zero,
            Bit::One => Tri::One,
        }
    }
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tri::Zero => "0",
            Tri::One => "1",
            Tri::X => "-",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_flip_is_involutive() {
        for b in Bit::ALL {
            assert_eq!(b.flip().flip(), b);
        }
    }

    #[test]
    fn bit_usize_roundtrip() {
        for b in Bit::ALL {
            assert_eq!(Bit::from_usize(b.as_usize()), b);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_from_usize_rejects_large() {
        let _ = Bit::from_usize(2);
    }

    #[test]
    fn tri_flip_keeps_x() {
        assert_eq!(Tri::X.flip(), Tri::X);
        assert_eq!(Tri::Zero.flip(), Tri::One);
    }

    #[test]
    fn tri_satisfies_dont_care() {
        for t in Tri::ALL {
            assert!(t.satisfies(Tri::X), "{t} should satisfy '-'");
        }
        assert!(!Tri::X.satisfies(Tri::Zero));
        assert!(Tri::One.satisfies(Tri::One));
        assert!(!Tri::One.satisfies(Tri::Zero));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Tri::X.to_string(), "-");
        assert_eq!(Bit::One.to_string(), "1");
        assert_eq!(Tri::Zero.to_string(), "0");
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Bit::from(true), Bit::One);
        assert!(bool::from(Bit::One));
        assert!(!bool::from(Bit::Zero));
    }
}
