//! # marchgen-model
//!
//! The memory behavioural model of Benso, Di Carlo, Di Natale and Prinetto,
//! *"An Optimal Algorithm for the Automatic Generation of March Tests"*
//! (DATE 2002), Section 3.
//!
//! An `n` one-bit-cell random access memory is modelled as a deterministic
//! Mealy automaton `M = (Q, X, Y, δ, λ)` (paper formula f.2.1) where
//!
//! * `Q = {0, 1, -}ⁿ` is the set of memory states (`-` marks an
//!   uninitialized cell),
//! * `X = {rᵢ, w0ᵢ, w1ᵢ | 0 ≤ i ≤ n−1} ∪ {T}` is the operation alphabet
//!   (reads, writes and the *wait* operation `T` used by data-retention
//!   faults),
//! * `Y = {0, 1, -}` is the output alphabet,
//! * `δ : Q × X → Q` is the state transition function, and
//! * `λ : Q × X → Y` is the output function.
//!
//! Because every classical memory fault involves at most two cells, the
//! paper works on the **two-cell** instance of this automaton: the
//! fault-free machine `M0` (paper Figure 1) and faulty machines `Mᵢ`
//! differing from `M0` in `δ` or `λ` (paper formula f.2.2, Figure 2).
//! This crate provides:
//!
//! * the three-valued cell algebra ([`Tri`], [`Bit`]),
//! * the two-cell operation alphabet ([`MemOp`], [`Cell`]),
//! * two-cell memory states with partial (don't-care) components
//!   ([`PairState`]),
//! * a small generic Mealy-automaton container ([`mealy::Mealy`]),
//! * the concrete two-cell memory machine ([`TwoCellMachine`]) with the
//!   fault-free `M0` constructor and transition/output *overrides* used to
//!   build faulty machines, and
//! * Graphviz DOT export for every machine ([`dot`]).
//!
//! # Example
//!
//! Build `M0`, apply a couple of operations and observe outputs:
//!
//! ```
//! use marchgen_model::{Bit, Cell, MemOp, PairState, TwoCellMachine};
//!
//! let m0 = TwoCellMachine::fault_free();
//! let s = PairState::new_known(Bit::Zero, Bit::Zero);
//! let (s, out) = m0.step(s, MemOp::write(Cell::I, Bit::One));
//! assert_eq!(out, None); // writes output '-'
//! let (_, out) = m0.step(s, MemOp::read(Cell::I));
//! assert_eq!(out, Some(Bit::One));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod mealy;
mod op;
mod state;
mod two_cell;
mod value;

pub use op::{Cell, MemOp, OpKind, ALL_OPS, NUM_OPS};
pub use state::PairState;
pub use two_cell::{MachineDiff, Transition, TwoCellMachine, NUM_STATES};
pub use value::{Bit, Tri};
