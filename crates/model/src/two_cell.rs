//! The concrete two-cell memory automaton: the fault-free machine `M0`
//! (paper Figure 1) and faulty variants built by overriding single
//! transitions or outputs (paper formula f.2.2, Figure 2).

use crate::op::{MemOp, ALL_OPS, NUM_OPS};
use crate::state::PairState;
use crate::value::Bit;
use std::fmt;

/// Number of fully specified states of the two-cell machine
/// (`00`, `01`, `10`, `11`).
pub const NUM_STATES: usize = 4;

/// One entry of the `(δ, λ)` tables: successor state and produced output.
///
/// The output is `None` for the paper's `-` (writes and `T` produce no
/// output on a fault-free memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transition {
    /// Successor state (index into [`PairState::all_known`] order).
    pub next: PairState,
    /// Output symbol, `None` for `-`.
    pub output: Option<Bit>,
}

/// A single point where a faulty machine differs from `M0`: the paper's
/// observable unit behind a *Basic Fault Effect*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineDiff {
    /// Source state of the differing transition.
    pub state: PairState,
    /// Input symbol of the differing transition.
    pub op: MemOp,
    /// `(δ0, λ0)` entry of the fault-free machine.
    pub good: Transition,
    /// `(δi, λi)` entry of the faulty machine.
    pub faulty: Transition,
}

/// A deterministic Mealy automaton over the two-cell state set
/// `{00, 01, 10, 11}` and the seven-symbol alphabet of f.2.1.
///
/// The fault-free instance is the paper's `M0` (Figure 1); faulty machines
/// are derived with [`TwoCellMachine::with_override`] and compared with
/// [`TwoCellMachine::diff`]. A machine whose diff against `M0` has exactly
/// one entry models a single *Basic Fault Effect* (Figure 3).
#[derive(Clone, PartialEq, Eq)]
pub struct TwoCellMachine {
    table: [[Transition; NUM_OPS]; NUM_STATES],
}

impl TwoCellMachine {
    /// Builds the fault-free machine `M0` of paper Figure 1:
    /// writes move between states, reads output the addressed cell and
    /// keep the state, `T` is a self-loop.
    #[must_use]
    pub fn fault_free() -> TwoCellMachine {
        let mut table = [[Transition {
            next: PairState::from_index(0),
            output: None,
        }; NUM_OPS]; NUM_STATES];
        for state in PairState::all_known() {
            for op in ALL_OPS {
                let tr = match op {
                    MemOp::Read(c) => Transition {
                        next: state,
                        output: state.get(c).bit(),
                    },
                    MemOp::Write(c, d) => Transition {
                        next: state.with(c, d.into()),
                        output: None,
                    },
                    MemOp::Delay => Transition {
                        next: state,
                        output: None,
                    },
                };
                table[state.index()][op.index()] = tr;
            }
        }
        TwoCellMachine { table }
    }

    /// The `(δ, λ)` entry for `(state, op)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` has unknown components (the machine is defined on
    /// fully specified states only; enumerate power-up states explicitly).
    #[must_use]
    pub fn transition(&self, state: PairState, op: MemOp) -> Transition {
        self.table[state.index()][op.index()]
    }

    /// Applies `op` in `state`, returning the successor state and output.
    ///
    /// # Panics
    ///
    /// Panics if `state` has unknown components.
    #[must_use]
    pub fn step(&self, state: PairState, op: MemOp) -> (PairState, Option<Bit>) {
        let tr = self.transition(state, op);
        (tr.next, tr.output)
    }

    /// Runs an operation sequence from `state`, collecting the outputs of
    /// each step (one entry per operation, `None` for `-`).
    #[must_use]
    pub fn run(&self, mut state: PairState, ops: &[MemOp]) -> (PairState, Vec<Option<Bit>>) {
        let mut outs = Vec::with_capacity(ops.len());
        for &op in ops {
            let (next, out) = self.step(state, op);
            state = next;
            outs.push(out);
        }
        (state, outs)
    }

    /// Returns a copy with the `(state, op)` entry replaced — the
    /// construction of the paper's faulty machines `Mᵢ` (f.2.2).
    #[must_use]
    pub fn with_override(&self, state: PairState, op: MemOp, tr: Transition) -> TwoCellMachine {
        let mut m = self.clone();
        m.table[state.index()][op.index()] = tr;
        m
    }

    /// Returns a copy where `(state, op)` leads to `next` (output kept).
    #[must_use]
    pub fn with_delta(&self, state: PairState, op: MemOp, next: PairState) -> TwoCellMachine {
        let cur = self.transition(state, op);
        self.with_override(
            state,
            op,
            Transition {
                next,
                output: cur.output,
            },
        )
    }

    /// Returns a copy where `(state, op)` outputs `output` (successor kept).
    #[must_use]
    pub fn with_lambda(&self, state: PairState, op: MemOp, output: Option<Bit>) -> TwoCellMachine {
        let cur = self.transition(state, op);
        self.with_override(
            state,
            op,
            Transition {
                next: cur.next,
                output,
            },
        )
    }

    /// All `(state, op)` points where `self` and `other` differ.
    ///
    /// Splitting a faulty machine against `M0` with this method is exactly
    /// the paper's BFE decomposition (Figure 3): each diff entry is one
    /// Basic Fault Effect.
    #[must_use]
    pub fn diff(&self, other: &TwoCellMachine) -> Vec<MachineDiff> {
        let mut diffs = Vec::new();
        for state in PairState::all_known() {
            for op in ALL_OPS {
                let a = self.transition(state, op);
                let b = other.transition(state, op);
                if a != b {
                    diffs.push(MachineDiff {
                        state,
                        op,
                        good: a,
                        faulty: b,
                    });
                }
            }
        }
        diffs
    }

    /// `true` when `self` differs from `M0` in exactly one `δ` transition
    /// or one `λ` output — the paper's definition of a Basic Fault Effect.
    #[must_use]
    pub fn is_bfe(&self) -> bool {
        TwoCellMachine::fault_free().diff(self).len() == 1
    }

    /// Iterator over every `(state, op, transition)` entry.
    pub fn entries(&self) -> impl Iterator<Item = (PairState, MemOp, Transition)> + '_ {
        PairState::all_known().into_iter().flat_map(move |s| {
            ALL_OPS
                .into_iter()
                .map(move |op| (s, op, self.transition(s, op)))
        })
    }
}

impl Default for TwoCellMachine {
    fn default() -> TwoCellMachine {
        TwoCellMachine::fault_free()
    }
}

impl fmt::Debug for TwoCellMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let diffs = TwoCellMachine::fault_free().diff(self);
        if diffs.is_empty() {
            f.write_str("TwoCellMachine(M0)")
        } else {
            write!(f, "TwoCellMachine(M0 + {} overrides: ", diffs.len())?;
            for (k, d) in diffs.iter().enumerate() {
                if k > 0 {
                    f.write_str(", ")?;
                }
                write!(
                    f,
                    "{} --{}--> {}/{}",
                    d.state,
                    d.op,
                    d.faulty.next,
                    d.faulty.output.map_or("-".to_string(), |b| b.to_string())
                )?;
            }
            f.write_str(")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Cell;
    use crate::value::Tri;

    /// Paper Figure 1: structural properties of `M0`.
    #[test]
    fn figure1_m0_structure() {
        let m0 = TwoCellMachine::fault_free();
        // Reads are self-loops outputting the addressed cell.
        for s in PairState::all_known() {
            for c in Cell::ALL {
                let tr = m0.transition(s, MemOp::read(c));
                assert_eq!(tr.next, s);
                assert_eq!(tr.output, s.get(c).bit());
            }
            // T is a silent self-loop.
            let t = m0.transition(s, MemOp::Delay);
            assert_eq!(t.next, s);
            assert_eq!(t.output, None);
            // Writes are silent and set the addressed cell.
            for c in Cell::ALL {
                for d in Bit::ALL {
                    let tr = m0.transition(s, MemOp::write(c, d));
                    assert_eq!(tr.next, s.with(c, d.into()));
                    assert_eq!(tr.output, None);
                }
            }
        }
    }

    /// Paper Figure 1 has, for each state, a silent self-loop cluster
    /// `(w0i, w0j, T)`-style: writes of the value already held plus `T`.
    #[test]
    fn figure1_self_loop_clusters() {
        let m0 = TwoCellMachine::fault_free();
        for s in PairState::all_known() {
            let silent_self_loops = ALL_OPS
                .into_iter()
                .filter(|&op| {
                    let tr = m0.transition(s, op);
                    tr.next == s && tr.output.is_none()
                })
                .count();
            // w_{i-value} i, w_{j-value} j and T.
            assert_eq!(silent_self_loops, 3, "state {s}");
        }
    }

    /// Paper Figure 2: the CFid ⟨↑,0⟩ machine (aggressor `i`) differs from
    /// `M0` by exactly one transition: `01 --w1i--> 10` instead of `11`.
    #[test]
    fn figure2_single_delta_override_is_bfe() {
        let m0 = TwoCellMachine::fault_free();
        let s01 = PairState::new(Tri::Zero, Tri::One);
        let m1 = m0.with_delta(
            s01,
            MemOp::write(Cell::I, Bit::One),
            PairState::new(Tri::One, Tri::Zero),
        );
        assert!(m1.is_bfe());
        let d = m0.diff(&m1);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].state, s01);
        assert_eq!(d[0].op, MemOp::write(Cell::I, Bit::One));
        assert_eq!(d[0].good.next, PairState::new(Tri::One, Tri::One));
        assert_eq!(d[0].faulty.next, PairState::new(Tri::One, Tri::Zero));
    }

    #[test]
    fn lambda_override_is_bfe() {
        let m0 = TwoCellMachine::fault_free();
        let s01 = PairState::new(Tri::Zero, Tri::One);
        let m = m0.with_lambda(s01, MemOp::read(Cell::J), Some(Bit::Zero));
        assert!(m.is_bfe());
        let d = m0.diff(&m)[0];
        assert_eq!(d.good.output, Some(Bit::One));
        assert_eq!(d.faulty.output, Some(Bit::Zero));
        assert_eq!(d.good.next, d.faulty.next);
    }

    #[test]
    fn run_collects_outputs() {
        let m0 = TwoCellMachine::fault_free();
        let ops = [
            MemOp::write(Cell::I, Bit::Zero),
            MemOp::write(Cell::J, Bit::One),
            MemOp::read(Cell::I),
            MemOp::read(Cell::J),
        ];
        let (end, outs) = m0.run(PairState::new_known(Bit::One, Bit::Zero), &ops);
        assert_eq!(end, PairState::new_known(Bit::Zero, Bit::One));
        assert_eq!(outs, vec![None, None, Some(Bit::Zero), Some(Bit::One)]);
    }

    #[test]
    fn diff_of_identical_machines_is_empty() {
        let m0 = TwoCellMachine::fault_free();
        assert!(m0.diff(&m0.clone()).is_empty());
        assert!(!m0
            .with_delta(
                PairState::from_index(0),
                MemOp::write(Cell::I, Bit::One),
                PairState::from_index(0)
            )
            .diff(&m0)
            .is_empty());
    }

    #[test]
    fn debug_never_empty() {
        let m0 = TwoCellMachine::fault_free();
        assert!(!format!("{m0:?}").is_empty());
        let m = m0.with_delta(
            PairState::from_index(1),
            MemOp::write(Cell::I, Bit::One),
            PairState::from_index(2),
        );
        let dbg = format!("{m:?}");
        assert!(dbg.contains("w1i"), "{dbg}");
    }
}
