//! The two-cell operation alphabet `X` of paper formula f.2.1:
//! `X = {rᵢ, w0ᵢ, w1ᵢ | i ∈ {i, j}} ∪ {T}`.

use crate::value::Bit;
use std::fmt;

/// One of the two cells of the pair automaton.
///
/// By the paper's convention (Section 3) the address of cell `i` is
/// strictly lower than the address of cell `j`; an ascending (⇑) March
/// element therefore visits `I` before `J`, a descending (⇓) one visits
/// `J` first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cell {
    /// The lower-addressed cell (`i` in the paper).
    I,
    /// The higher-addressed cell (`j` in the paper).
    J,
}

impl Cell {
    /// Both cells, lower address first.
    pub const ALL: [Cell; 2] = [Cell::I, Cell::J];

    /// The other cell of the pair.
    #[must_use]
    pub fn other(self) -> Cell {
        match self {
            Cell::I => Cell::J,
            Cell::J => Cell::I,
        }
    }

    /// Index (`I → 0`, `J → 1`) for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Cell::I => 0,
            Cell::J => 1,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cell::I => "i",
            Cell::J => "j",
        })
    }
}

/// A memory operation of the two-cell automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemOp {
    /// `rᵢ` / `rⱼ` — read the addressed cell; the machine outputs its value.
    Read(Cell),
    /// `wdᵢ` / `wdⱼ` — write value `d` into the addressed cell.
    Write(Cell, Bit),
    /// `T` — wait for a defined period of time (used to excite
    /// data-retention faults; affects no cell of a fault-free memory).
    Delay,
}

/// The broad kind of a [`MemOp`], without its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// A read.
    Read,
    /// A write.
    Write,
    /// The wait operation `T`.
    Delay,
}

/// Number of symbols in the two-cell alphabet
/// (`r` ×2 cells + `w0`/`w1` ×2 cells + `T`).
pub const NUM_OPS: usize = 7;

/// Every symbol of the two-cell alphabet, in index order
/// (see [`MemOp::index`]).
pub const ALL_OPS: [MemOp; NUM_OPS] = [
    MemOp::Read(Cell::I),
    MemOp::Read(Cell::J),
    MemOp::Write(Cell::I, Bit::Zero),
    MemOp::Write(Cell::I, Bit::One),
    MemOp::Write(Cell::J, Bit::Zero),
    MemOp::Write(Cell::J, Bit::One),
    MemOp::Delay,
];

impl MemOp {
    /// Convenience constructor for a read of `cell`.
    #[must_use]
    pub fn read(cell: Cell) -> MemOp {
        MemOp::Read(cell)
    }

    /// Convenience constructor for a write of `value` into `cell`.
    #[must_use]
    pub fn write(cell: Cell, value: Bit) -> MemOp {
        MemOp::Write(cell, value)
    }

    /// The cell the operation addresses (`None` for [`MemOp::Delay`]).
    #[must_use]
    pub fn cell(self) -> Option<Cell> {
        match self {
            MemOp::Read(c) | MemOp::Write(c, _) => Some(c),
            MemOp::Delay => None,
        }
    }

    /// The written value, if the operation is a write.
    #[must_use]
    pub fn written(self) -> Option<Bit> {
        match self {
            MemOp::Write(_, d) => Some(d),
            _ => None,
        }
    }

    /// The operation kind.
    #[must_use]
    pub fn kind(self) -> OpKind {
        match self {
            MemOp::Read(_) => OpKind::Read,
            MemOp::Write(..) => OpKind::Write,
            MemOp::Delay => OpKind::Delay,
        }
    }

    /// `true` for reads.
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, MemOp::Read(_))
    }

    /// `true` for writes.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, MemOp::Write(..))
    }

    /// Dense index of the symbol within [`ALL_OPS`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            MemOp::Read(c) => c.index(),
            MemOp::Write(c, d) => 2 + c.index() * 2 + d.as_usize(),
            MemOp::Delay => 6,
        }
    }

    /// The same operation re-targeted at the other cell
    /// ([`MemOp::Delay`] is unchanged).
    #[must_use]
    pub fn mirrored(self) -> MemOp {
        match self {
            MemOp::Read(c) => MemOp::Read(c.other()),
            MemOp::Write(c, d) => MemOp::Write(c.other(), d),
            MemOp::Delay => MemOp::Delay,
        }
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemOp::Read(c) => write!(f, "r{c}"),
            MemOp::Write(c, d) => write!(f, "w{d}{c}"),
            MemOp::Delay => f.write_str("T"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_has_seven_symbols_as_in_f21() {
        // f.2.1 for n = 2: |X| = 3n + 1 = 7.
        assert_eq!(ALL_OPS.len(), 7);
    }

    #[test]
    fn index_is_dense_and_consistent() {
        for (k, op) in ALL_OPS.iter().enumerate() {
            assert_eq!(op.index(), k, "op {op} has wrong index");
        }
    }

    #[test]
    fn mirrored_swaps_cells() {
        assert_eq!(
            MemOp::write(Cell::I, Bit::One).mirrored(),
            MemOp::write(Cell::J, Bit::One)
        );
        assert_eq!(MemOp::read(Cell::J).mirrored(), MemOp::read(Cell::I));
        assert_eq!(MemOp::Delay.mirrored(), MemOp::Delay);
    }

    #[test]
    fn mirror_is_involutive() {
        for op in ALL_OPS {
            assert_eq!(op.mirrored().mirrored(), op);
        }
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(MemOp::write(Cell::I, Bit::Zero).to_string(), "w0i");
        assert_eq!(MemOp::read(Cell::J).to_string(), "rj");
        assert_eq!(MemOp::Delay.to_string(), "T");
    }

    #[test]
    fn accessors() {
        let w = MemOp::write(Cell::J, Bit::One);
        assert_eq!(w.cell(), Some(Cell::J));
        assert_eq!(w.written(), Some(Bit::One));
        assert!(w.is_write() && !w.is_read());
        assert_eq!(MemOp::Delay.cell(), None);
        assert_eq!(MemOp::read(Cell::I).written(), None);
    }
}
