//! # marchgen-testkit
//!
//! A tiny deterministic property-testing harness used across the
//! workspace test suites: a seedable PRNG plus a case runner. It stands
//! in for `proptest` (not available in the offline build environment)
//! where the tests only need random-input fuzzing, not shrinking.
//!
//! Failures print the case index and the per-case seed so a failing
//! input can be reproduced with [`Rng::new`] in isolation.
//!
//! ```
//! use marchgen_testkit::{run_cases, Rng};
//!
//! run_cases("addition commutes", 64, |rng| {
//!     let a = rng.range(0, 1000) as u64;
//!     let b = rng.range(0, 1000) as u64;
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seedable xorshift64* PRNG — fast, dependency-free, deterministic.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator with the given seed (zero is remapped internally).
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `lo..hi` (`hi` exclusive; requires `lo < hi`).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// A uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen slice element.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len())]
    }

    /// A random-length vector built by repeatedly calling `f`.
    pub fn vec<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut f: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let len = self.range(len_lo, len_hi);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Runs `cases` independent random cases of the property `f`, seeding
/// each case deterministically. Panics (test failure) are annotated with
/// the reproducing seed via a scoped message.
pub fn run_cases(name: &str, cases: u64, mut f: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        // Distinct, deterministic per-case seeds.
        let seed = 0xA076_1D64_78BD_642F ^ (case.wrapping_mul(0x9E37_79B9));
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property {name:?} failed at case {case} (Rng seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = Rng::new(42);
        for _ in 0..1000 {
            let v = rng.range(3, 10);
            assert!((3..10).contains(&v));
        }
    }

    #[test]
    fn zero_seed_not_degenerate() {
        let mut rng = Rng::new(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, second);
    }

    #[test]
    fn runner_executes_all_cases() {
        let mut count = 0;
        run_cases("counter", 16, |_| count += 1);
        assert_eq!(count, 16);
    }
}
