//! Token-level SystemVerilog sanity checks.
//!
//! CI has no simulator or synthesis tool, so the golden-file harness
//! runs this lightweight lint over every emitted file instead. It is not
//! a parser — it tokenizes the source (comments, strings and compiler
//! directives stripped) and checks three structural invariants that
//! catch virtually every template bug a code emitter can introduce:
//!
//! 1. `module`/`endmodule` pairing — every module is named, none nest,
//!    and the file ends outside a module;
//! 2. balanced blocks per module — `begin`/`end`, `case`/`endcase`,
//!    `task`/`endtask`, `function`/`endfunction`;
//! 3. identifiers declared before use — every referenced name must be a
//!    prior port, parameter, net/variable, task, instance or module.

use std::collections::HashSet;
use std::fmt;

/// One problem found by [`lint_sv`], anchored to a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintIssue {
    /// 1-based line in the linted source.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Kind {
    /// Identifier or keyword.
    Word(String),
    /// Numeric literal (including based literals like `4'd10`).
    Number,
    /// `.name` — a named port/parameter connection (never a usage).
    Dotted,
    /// `$name` — a system task/function.
    Sys,
    /// Any other single character.
    Punct(char),
}

#[derive(Debug, Clone)]
struct Token {
    line: usize,
    kind: Kind,
}

/// Language words that are never signal references.
const KEYWORDS: &[&str] = &[
    "always",
    "always_comb",
    "always_ff",
    "always_latch",
    "assign",
    "automatic",
    "begin",
    "bit",
    "break",
    "byte",
    "case",
    "casex",
    "casez",
    "const",
    "continue",
    "default",
    "disable",
    "do",
    "else",
    "end",
    "endcase",
    "endfunction",
    "endgenerate",
    "endinterface",
    "endmodule",
    "endpackage",
    "endtask",
    "enum",
    "final",
    "for",
    "forever",
    "fork",
    "function",
    "generate",
    "genvar",
    "if",
    "iff",
    "import",
    "initial",
    "inout",
    "input",
    "inside",
    "int",
    "integer",
    "interface",
    "join",
    "join_any",
    "join_none",
    "localparam",
    "logic",
    "longint",
    "modport",
    "module",
    "negedge",
    "or",
    "output",
    "package",
    "packed",
    "parameter",
    "posedge",
    "priority",
    "real",
    "ref",
    "reg",
    "repeat",
    "return",
    "shortint",
    "signed",
    "static",
    "string",
    "struct",
    "supply0",
    "supply1",
    "task",
    "time",
    "timeprecision",
    "timeunit",
    "tri",
    "typedef",
    "union",
    "unique",
    "unsigned",
    "void",
    "wait",
    "while",
    "wire",
];

/// Keywords that open a declaration (and so introduce names).
const DECL_KEYWORDS: &[&str] = &[
    "bit",
    "byte",
    "genvar",
    "inout",
    "input",
    "int",
    "integer",
    "localparam",
    "logic",
    "longint",
    "output",
    "parameter",
    "real",
    "reg",
    "shortint",
    "time",
    "wire",
];

/// Type/qualifier words that may appear between a declaration keyword
/// and the declared name.
const MODIFIER_KEYWORDS: &[&str] = &[
    "automatic",
    "bit",
    "byte",
    "int",
    "integer",
    "logic",
    "longint",
    "real",
    "reg",
    "shortint",
    "signed",
    "time",
    "unsigned",
    "wire",
];

fn is_keyword(word: &str) -> bool {
    KEYWORDS.binary_search(&word).is_ok()
}

fn tokenize(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut line = 1;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i < bytes.len() && !(bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/')) {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            b'"' => {
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1;
            }
            // Compiler directive (`timescale, `include, ...): skip the line.
            b'`' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'$' | b'.' => {
                let start = i;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == start + 1 {
                    tokens.push(Token {
                        line,
                        kind: Kind::Punct(c as char),
                    });
                } else {
                    let kind = if c == b'$' { Kind::Sys } else { Kind::Dotted };
                    tokens.push(Token { line, kind });
                }
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
                if bytes.get(i) == Some(&b'\'') {
                    i += 1;
                    if matches!(bytes.get(i), Some(b's' | b'S')) {
                        i += 1;
                    }
                    if matches!(
                        bytes.get(i),
                        Some(b'd' | b'D' | b'b' | b'B' | b'h' | b'H' | b'o' | b'O')
                    ) {
                        i += 1;
                        while i < bytes.len()
                            && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                        {
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    line,
                    kind: Kind::Number,
                });
            }
            // Unbased unsized literal: '0 '1 'x 'z
            b'\''
                if matches!(
                    bytes.get(i + 1),
                    Some(b'0' | b'1' | b'x' | b'X' | b'z' | b'Z')
                ) =>
            {
                i += 2;
                tokens.push(Token {
                    line,
                    kind: Kind::Number,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                let word = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                tokens.push(Token {
                    line,
                    kind: Kind::Word(word),
                });
            }
            _ => {
                tokens.push(Token {
                    line,
                    kind: Kind::Punct(c as char),
                });
                i += 1;
            }
        }
    }
    tokens
}

/// Per-module lint state.
struct ModuleScope {
    name: String,
    line: usize,
    begin_depth: i64,
    case_depth: i64,
    task_depth: i64,
    function_depth: i64,
    declared: HashSet<String>,
}

struct Linter<'a> {
    tokens: &'a [Token],
    module_names: HashSet<String>,
    issues: Vec<LintIssue>,
}

impl Linter<'_> {
    fn issue(&mut self, line: usize, message: impl Into<String>) {
        self.issues.push(LintIssue {
            line,
            message: message.into(),
        });
    }

    fn word_at(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i).map(|t| &t.kind) {
            Some(Kind::Word(w)) => Some(w.as_str()),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize) -> Option<char> {
        match self.tokens.get(i).map(|t| &t.kind) {
            Some(Kind::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    /// Reports `word` if it is a plain identifier unknown to the scope.
    fn check_usage(&mut self, scope: &ModuleScope, i: usize) {
        if let Some(Kind::Word(w)) = self.tokens.get(i).map(|t| &t.kind) {
            if !is_keyword(w) && !scope.declared.contains(w) && !self.module_names.contains(w) {
                let line = self.tokens[i].line;
                let w = w.clone();
                self.issue(line, format!("identifier `{w}` used before declaration"));
            }
        }
    }

    /// Consumes a balanced bracket group starting at `i` (which must be
    /// the opening bracket), usage-checking identifiers inside. Returns
    /// the index just past the closing bracket.
    fn skip_group(&mut self, scope: &ModuleScope, i: usize) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < self.tokens.len() {
            match self.tokens[j].kind {
                Kind::Punct('(' | '[' | '{') => depth += 1,
                Kind::Punct(')' | ']' | '}') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                Kind::Word(_) => self.check_usage(scope, j),
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Parses one declaration starting at the decl keyword at `i`;
    /// inserts declared names into the scope. Returns the index of the
    /// first unconsumed token.
    fn parse_decl(&mut self, scope: &mut ModuleScope, i: usize) -> usize {
        let mut j = i + 1;
        loop {
            // Qualifiers and packed dimensions before the name.
            loop {
                if self
                    .word_at(j)
                    .is_some_and(|w| MODIFIER_KEYWORDS.contains(&w))
                {
                    j += 1;
                } else if self.punct_at(j) == Some('[') {
                    j = self.skip_group(scope, j);
                } else {
                    break;
                }
            }
            match self.word_at(j) {
                Some(w) if !is_keyword(w) => {
                    scope.declared.insert(w.to_owned());
                    j += 1;
                }
                _ => return j,
            }
            // Unpacked dimensions after the name.
            while self.punct_at(j) == Some('[') {
                j = self.skip_group(scope, j);
            }
            // Initializer: consume up to a top-level `,`, `;` or `)`.
            if self.punct_at(j) == Some('=') {
                j += 1;
                let mut depth = 0i64;
                while j < self.tokens.len() {
                    match self.tokens[j].kind {
                        Kind::Punct('(' | '[' | '{') => depth += 1,
                        Kind::Punct(')' | ']' | '}') => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        Kind::Punct(',' | ';') if depth == 0 => break,
                        Kind::Word(_) => self.check_usage(scope, j),
                        _ => {}
                    }
                    j += 1;
                }
            }
            // `, name` continues the declaration only if what follows is
            // a plain identifier (a keyword starts a fresh declaration).
            if self.punct_at(j) == Some(',') && self.word_at(j + 1).is_some_and(|w| !is_keyword(w))
            {
                j += 1;
                continue;
            }
            return j;
        }
    }

    /// Parses a module instantiation whose module name sits at `i`:
    /// `name #( params ) instance ( ports );` — declares the instance
    /// name and usage-checks the connection expressions.
    fn parse_instance(&mut self, scope: &mut ModuleScope, i: usize) -> usize {
        let mut j = i + 1;
        if self.punct_at(j) == Some('#') {
            j += 1;
            if self.punct_at(j) == Some('(') {
                j = self.skip_group(scope, j);
            }
        }
        match self.word_at(j) {
            Some(w) if !is_keyword(w) => {
                scope.declared.insert(w.to_owned());
                j += 1;
            }
            _ => {
                let line = self.tokens[i].line;
                let name = self.word_at(i).unwrap_or("?").to_owned();
                self.issue(line, format!("malformed instantiation of `{name}`"));
                return j;
            }
        }
        if self.punct_at(j) == Some('(') {
            j = self.skip_group(scope, j);
        }
        if self.punct_at(j) == Some(';') {
            j += 1;
        }
        j
    }

    fn close_module(&mut self, scope: &ModuleScope, line: usize) {
        let name = &scope.name;
        if scope.begin_depth != 0 {
            self.issue(line, format!("module `{name}`: unbalanced begin/end"));
        }
        if scope.case_depth != 0 {
            self.issue(line, format!("module `{name}`: unbalanced case/endcase"));
        }
        if scope.task_depth != 0 {
            self.issue(line, format!("module `{name}`: unbalanced task/endtask"));
        }
        if scope.function_depth != 0 {
            self.issue(
                line,
                format!("module `{name}`: unbalanced function/endfunction"),
            );
        }
    }

    fn run(&mut self) {
        let mut scope: Option<ModuleScope> = None;
        let mut i = 0;
        while i < self.tokens.len() {
            let line = self.tokens[i].line;
            let word = self.word_at(i).map(str::to_owned);
            match word.as_deref() {
                Some("module") => {
                    if let Some(open) = &scope {
                        let prev = open.name.clone();
                        self.issue(line, format!("`module` while `{prev}` is still open"));
                    }
                    let name = match self.word_at(i + 1) {
                        Some(w) if !is_keyword(w) => w.to_owned(),
                        _ => {
                            self.issue(line, "`module` without a name");
                            i += 1;
                            continue;
                        }
                    };
                    scope = Some(ModuleScope {
                        name,
                        line,
                        begin_depth: 0,
                        case_depth: 0,
                        task_depth: 0,
                        function_depth: 0,
                        declared: HashSet::new(),
                    });
                    i += 2;
                }
                Some("endmodule") => {
                    match scope.take() {
                        Some(s) => self.close_module(&s, line),
                        None => self.issue(line, "`endmodule` without an open module"),
                    }
                    i += 1;
                }
                Some(w) => {
                    if scope.is_none() {
                        if !is_keyword(w) {
                            self.issue(line, format!("token `{w}` outside any module"));
                        }
                        i += 1;
                        continue;
                    }
                    let s = scope.as_mut().expect("checked above");
                    match w {
                        "begin" => {
                            s.begin_depth += 1;
                            i += 1;
                        }
                        "end" => {
                            s.begin_depth -= 1;
                            if s.begin_depth < 0 {
                                s.begin_depth = 0;
                                self.issue(line, "`end` without matching `begin`");
                            }
                            i += 1;
                        }
                        "case" | "casez" | "casex" => {
                            s.case_depth += 1;
                            i += 1;
                        }
                        "endcase" => {
                            s.case_depth -= 1;
                            if s.case_depth < 0 {
                                s.case_depth = 0;
                                self.issue(line, "`endcase` without matching `case`");
                            }
                            i += 1;
                        }
                        "task" | "function" => {
                            if w == "task" {
                                s.task_depth += 1;
                            } else {
                                s.function_depth += 1;
                            }
                            let mut j = i + 1;
                            while self
                                .word_at(j)
                                .is_some_and(|m| MODIFIER_KEYWORDS.contains(&m) || m == "void")
                            {
                                j += 1;
                            }
                            if let Some(name) = self.word_at(j) {
                                if !is_keyword(name) {
                                    s.declared.insert(name.to_owned());
                                    j += 1;
                                }
                            }
                            i = j;
                        }
                        "endtask" => {
                            s.task_depth -= 1;
                            if s.task_depth < 0 {
                                s.task_depth = 0;
                                self.issue(line, "`endtask` without matching `task`");
                            }
                            i += 1;
                        }
                        "endfunction" => {
                            s.function_depth -= 1;
                            if s.function_depth < 0 {
                                s.function_depth = 0;
                                self.issue(line, "`endfunction` without matching `function`");
                            }
                            i += 1;
                        }
                        _ if DECL_KEYWORDS.contains(&w) => {
                            i = self.parse_decl(s, i);
                        }
                        _ if is_keyword(w) => i += 1,
                        _ if self.module_names.contains(w) && s.name != *w => {
                            i = self.parse_instance(s, i);
                        }
                        _ => {
                            if !s.declared.contains(w) && !self.module_names.contains(w) {
                                let w = w.to_owned();
                                self.issue(
                                    line,
                                    format!("identifier `{w}` used before declaration"),
                                );
                            }
                            i += 1;
                        }
                    }
                }
                None => i += 1,
            }
        }
        if let Some(s) = scope {
            let name = s.name.clone();
            self.issue(s.line, format!("module `{name}` is never closed"));
        }
    }
}

/// Lints SystemVerilog source; returns all structural problems found
/// (empty means the checks pass). See the module docs for what is and
/// is not covered — this is an emitter-sanity net, not a compiler.
#[must_use]
pub fn lint_sv(source: &str) -> Vec<LintIssue> {
    let tokens = tokenize(source);
    let mut module_names = HashSet::new();
    for pair in tokens.windows(2) {
        if let (Kind::Word(a), Kind::Word(b)) = (&pair[0].kind, &pair[1].kind) {
            if a == "module" && !is_keyword(b) {
                module_names.insert(b.clone());
            }
        }
    }
    let mut linter = Linter {
        tokens: &tokens,
        module_names,
        issues: Vec::new(),
    };
    linter.run();
    linter.issues
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = r#"
`timescale 1ns / 1ps
// a comment with module endmodule begin inside
module good #(
    parameter int unsigned W = 4
) (
    input  logic clk,
    input  logic [W-1:0] a,
    output logic [W-1:0] y
);
  localparam logic [W-1:0] ZED = {W{1'b0}};
  logic [W-1:0] held;
  always_ff @(posedge clk) begin
    if (a == ZED) begin
      held <= a + 1'b1;
    end else begin
      held <= ZED;
    end
  end
  assign y = held;
endmodule // good

module top;
  logic clk;
  logic [3:0] a;
  logic [3:0] y;
  good #(
      .W(4)
  ) dut (
      .clk(clk),
      .a(a),
      .y(y)
  );
  initial begin
    a = 4'd3;
    $display("y=%0d", y);
    $finish;
  end
endmodule // top
"#;

    #[test]
    fn keyword_table_is_sorted_for_binary_search() {
        let mut sorted = KEYWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, KEYWORDS);
    }

    #[test]
    fn clean_source_passes() {
        let issues = lint_sv(CLEAN);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn undeclared_identifier_is_flagged() {
        let src = "module m;\n  assign mystery = 1'b0;\nendmodule\n";
        let issues = lint_sv(src);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].message.contains("`mystery`"), "{issues:?}");
        assert_eq!(issues[0].line, 2);
    }

    #[test]
    fn use_before_declaration_is_flagged() {
        let src = "module m;\n  assign y = x;\n  logic x;\n  logic y;\nendmodule\n";
        let issues = lint_sv(src);
        assert!(
            issues
                .iter()
                .any(|i| i.message.contains("`x`") && i.line == 2),
            "{issues:?}"
        );
    }

    #[test]
    fn unbalanced_begin_end_is_flagged() {
        let src =
            "module m;\n  logic c;\n  always_ff @(posedge c) begin\n    c <= ~c;\nendmodule\n";
        let issues = lint_sv(src);
        assert!(
            issues.iter().any(|i| i.message.contains("begin/end")),
            "{issues:?}"
        );
    }

    #[test]
    fn nested_and_unterminated_modules_are_flagged() {
        assert!(lint_sv("module a;\nmodule b;\nendmodule\nendmodule\n")
            .iter()
            .any(|i| i.message.contains("still open")));
        assert!(lint_sv("module a;\n")
            .iter()
            .any(|i| i.message.contains("never closed")));
        assert!(lint_sv("endmodule\n")
            .iter()
            .any(|i| i.message.contains("without an open module")));
    }

    #[test]
    fn instance_of_unknown_module_is_flagged() {
        let src = "module m;\n  logic clk;\n  ghost u0 (.clk(clk));\nendmodule\n";
        let issues = lint_sv(src);
        // `ghost` is not a module in this file and not declared.
        assert!(
            issues.iter().any(|i| i.message.contains("`ghost`")),
            "{issues:?}"
        );
    }

    #[test]
    fn strings_and_directives_are_opaque() {
        let src =
            "module m;\n  initial $display(\"undeclared_thing endmodule begin\");\nendmodule\n";
        assert!(lint_sv(src).is_empty());
    }
}
