//! The emitted self-checking testbench: instantiates the BIST wrapper
//! against a behavioral synchronous-read memory model, runs the March
//! sequence once fault-free (must pass) and once with a stuck-at fault
//! injected at address 0 (must fail). Exits via `$fatal` on any
//! mismatch, so a simulator run doubles as a regression check.

use crate::emit::ADDR_ZERO;
use crate::options::RtlOptions;
use marchgen_march::{MarchOp, MarchTest};
use std::fmt::Write as _;

/// The stuck-at polarity this test can catch at address 0, if any: a
/// `r1` somewhere in the per-cell sequence exposes a stuck-at-0 cell, a
/// `r0` exposes a stuck-at-1 cell. (Consistency guarantees the read's
/// expected value was established by an earlier write, so the stuck cell
/// must mismatch.)
fn injectable_fault(test: &MarchTest) -> Option<(&'static str, &'static str)> {
    let seq = test.per_cell_sequence();
    if seq.contains(&MarchOp::R1) {
        Some(("stuck-at-0", "{DATA_WIDTH{1'b0}}"))
    } else if seq.contains(&MarchOp::R0) {
        Some(("stuck-at-1", "{DATA_WIDTH{1'b1}}"))
    } else {
        None
    }
}

/// Emits the `<name>_tb` module. Callers validate the test first.
pub(crate) fn testbench_module(test: &MarchTest, o: &RtlOptions) -> String {
    let name = &o.name;
    let inject = injectable_fault(test);
    let mut s = String::new();
    let _ = writeln!(s, "`timescale 1ns / 1ps");
    let _ = writeln!(
        s,
        "// {name}_tb -- self-checking testbench for {name}_bist."
    );
    let _ = writeln!(
        s,
        "// Run 1: fault-free behavioral memory, the BIST must pass."
    );
    match inject {
        Some((label, _)) => {
            let _ = writeln!(
                s,
                "// Run 2: a {label} cell injected at address 0, the BIST must"
            );
            let _ = writeln!(s, "// fail and report the faulty address.");
        }
        None => {
            let _ = writeln!(
                s,
                "// (No read ops in the March sequence, so no stuck-at fault is"
            );
            let _ = writeln!(s, "// observable; only the fault-free run is exercised.)");
        }
    }
    let _ = writeln!(s, "module {name}_tb;");
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "  localparam int unsigned ADDR_WIDTH = {};",
        o.addr_width
    );
    let _ = writeln!(
        s,
        "  localparam int unsigned DATA_WIDTH = {};",
        o.data_width
    );
    let _ = writeln!(
        s,
        "  localparam logic [ADDR_WIDTH-1:0] MAX_ADDR = {{ADDR_WIDTH{{1'b1}}}};"
    );
    let _ = writeln!(
        s,
        "  localparam int unsigned DELAY_CYCLES = {};",
        o.delay_cycles
    );
    let _ = writeln!(s, "  localparam int unsigned DEPTH = 32'd1 << ADDR_WIDTH;");
    let _ = writeln!(s);
    let _ = writeln!(s, "  logic clk;");
    let _ = writeln!(s, "  logic rst;");
    let _ = writeln!(s, "  logic en;");
    let _ = writeln!(s, "  logic [ADDR_WIDTH-1:0] addr;");
    let _ = writeln!(s, "  logic [DATA_WIDTH-1:0] data;");
    let _ = writeln!(s, "  logic we;");
    let _ = writeln!(s, "  logic re;");
    let _ = writeln!(s, "  logic [DATA_WIDTH-1:0] dout;");
    let _ = writeln!(s, "  logic done;");
    let _ = writeln!(s, "  logic fail;");
    let _ = writeln!(s, "  logic [ADDR_WIDTH-1:0] fail_addr;");
    let _ = writeln!(s, "  logic [DATA_WIDTH-1:0] fail_expected;");
    let _ = writeln!(s, "  logic [DATA_WIDTH-1:0] fail_actual;");
    if inject.is_some() {
        let _ = writeln!(s, "  logic saf_enable;");
    }
    let _ = writeln!(s, "  logic failed;");
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "  // Behavioral memory, synchronous read (1-cycle latency)."
    );
    let _ = writeln!(s, "  logic [DATA_WIDTH-1:0] mem [0:DEPTH-1];");
    let _ = writeln!(s);
    let _ = writeln!(s, "  always_ff @(posedge clk) begin");
    let _ = writeln!(s, "    if (we) begin");
    if let Some((_, stuck)) = inject {
        let _ = writeln!(s, "      if (saf_enable && (addr == {ADDR_ZERO})) begin");
        let _ = writeln!(
            s,
            "        mem[addr] <= {stuck};  // the injected stuck-at cell"
        );
        let _ = writeln!(s, "      end else begin");
        let _ = writeln!(s, "        mem[addr] <= data;");
        let _ = writeln!(s, "      end");
    } else {
        let _ = writeln!(s, "      mem[addr] <= data;");
    }
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "    if (re) begin");
    let _ = writeln!(s, "      dout <= mem[addr];");
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "  end");
    let _ = writeln!(s);
    let _ = writeln!(s, "  {name}_bist #(");
    let _ = writeln!(s, "      .ADDR_WIDTH(ADDR_WIDTH),");
    let _ = writeln!(s, "      .DATA_WIDTH(DATA_WIDTH),");
    let _ = writeln!(s, "      .MAX_ADDR(MAX_ADDR),");
    let _ = writeln!(s, "      .DELAY_CYCLES(DELAY_CYCLES)");
    let _ = writeln!(s, "  ) dut (");
    let _ = writeln!(s, "      .clk(clk),");
    let _ = writeln!(s, "      .rst(rst),");
    let _ = writeln!(s, "      .en(en),");
    let _ = writeln!(s, "      .addr(addr),");
    let _ = writeln!(s, "      .data(data),");
    let _ = writeln!(s, "      .we(we),");
    let _ = writeln!(s, "      .re(re),");
    let _ = writeln!(s, "      .dout(dout),");
    let _ = writeln!(s, "      .done(done),");
    let _ = writeln!(s, "      .fail(fail),");
    let _ = writeln!(s, "      .fail_addr(fail_addr),");
    let _ = writeln!(s, "      .fail_expected(fail_expected),");
    let _ = writeln!(s, "      .fail_actual(fail_actual)");
    let _ = writeln!(s, "  );");
    let _ = writeln!(s);
    let _ = writeln!(s, "  initial clk = 1'b0;");
    let _ = writeln!(s, "  always #5 clk = ~clk;");
    let _ = writeln!(s);
    let _ = writeln!(s, "  task automatic run_bist;");
    let _ = writeln!(s, "    begin");
    let _ = writeln!(s, "      rst = 1'b1;");
    let _ = writeln!(s, "      en = 1'b0;");
    let _ = writeln!(s, "      repeat (2) @(posedge clk);");
    let _ = writeln!(s, "      rst = 1'b0;");
    let _ = writeln!(s, "      en = 1'b1;");
    let _ = writeln!(s, "      @(posedge clk);");
    let _ = writeln!(s, "      wait (done);");
    let _ = writeln!(s, "      @(posedge clk);");
    let _ = writeln!(s, "      failed = fail;");
    let _ = writeln!(s, "      en = 1'b0;");
    let _ = writeln!(s, "      @(posedge clk);");
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "  endtask");
    let _ = writeln!(s);
    let _ = writeln!(s, "  initial begin");
    if inject.is_some() {
        let _ = writeln!(s, "    saf_enable = 1'b0;");
    }
    let _ = writeln!(s, "    run_bist;");
    let _ = writeln!(s, "    if (failed) begin");
    let _ = writeln!(
        s,
        "      $display(\"FAIL: fault-free memory flagged at %0h (expected %0h, got %0h)\","
    );
    let _ = writeln!(s, "               fail_addr, fail_expected, fail_actual);");
    let _ = writeln!(s, "      $fatal(1);");
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "    $display(\"PASS: fault-free run clean\");");
    if let Some((label, _)) = inject {
        let _ = writeln!(s, "    saf_enable = 1'b1;");
        let _ = writeln!(s, "    run_bist;");
        let _ = writeln!(s, "    if (!failed) begin");
        let _ = writeln!(
            s,
            "      $display(\"FAIL: injected {label} at address 0 escaped\");"
        );
        let _ = writeln!(s, "      $fatal(1);");
        let _ = writeln!(s, "    end");
        let _ = writeln!(
            s,
            "    $display(\"PASS: injected {label} detected at %0h (expected %0h, got %0h)\","
        );
        let _ = writeln!(s, "             fail_addr, fail_expected, fail_actual);");
    }
    let _ = writeln!(s, "    $finish;");
    let _ = writeln!(s, "  end");
    let _ = writeln!(s);
    let _ = writeln!(s, "endmodule // {name}_tb");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_march::{known, MarchElement, MarchTest};

    #[test]
    fn testbench_injects_stuck_at_zero_when_r1_present() {
        let sv = testbench_module(&known::mats_plus(), &RtlOptions::default().normalize());
        assert!(sv.contains("module march_test_tb;"), "{sv}");
        assert!(sv.contains("saf_enable"), "{sv}");
        assert!(sv.contains("stuck-at-0"), "{sv}");
        assert!(sv.contains("$fatal(1);"), "{sv}");
    }

    #[test]
    fn write_only_test_skips_injection() {
        let t = MarchTest::new(vec![MarchElement::up(vec![MarchOp::W0, MarchOp::W1])]);
        let sv = testbench_module(&t, &RtlOptions::default().normalize());
        assert!(!sv.contains("saf_enable"), "{sv}");
        assert!(sv.contains("no stuck-at fault"), "{sv}");
    }

    #[test]
    fn r0_only_test_injects_stuck_at_one() {
        let t = MarchTest::new(vec![MarchElement::up(vec![MarchOp::W0, MarchOp::R0])]);
        let sv = testbench_module(&t, &RtlOptions::default().normalize());
        assert!(sv.contains("stuck-at-1"), "{sv}");
    }
}
