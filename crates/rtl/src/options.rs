//! Structured knobs for the SystemVerilog backend.

use marchgen_march::codegen::sanitize_ident;

/// Knobs of the SystemVerilog emitters, shared by the library API, the
/// `marchgen codegen --lang sv` CLI and the `POST /v1/rtl` daemon
/// endpoint. Every consumer folds the *normalized* options into its
/// cache key via [`RtlOptions::canonical_fragment`], so two requests
/// that clamp to the same hardware share one cache entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlOptions {
    /// Base name for the emitted modules (`<name>_patgen`,
    /// `<name>_bist`, `<name>_tb`). Routed through
    /// [`sanitize_ident`], so any string is safe.
    pub name: String,
    /// Address bus width; the generated test sweeps `[0, 2^addr_width)`.
    /// Clamped to `1..=30` (the testbench declares a `2^addr_width`-deep
    /// behavioral memory, so the depth must fit a 32-bit int).
    pub addr_width: u32,
    /// Data bus width. The paper's 1-bit cell values expand to word-wide
    /// backgrounds: `0` → all-zeros, `1` → all-ones. Clamped to
    /// `1..=1024`.
    pub data_width: u32,
    /// Cycles spent in each `Del` (data-retention pause) operation.
    /// Clamped to `1..=2^24`.
    pub delay_cycles: u32,
    /// Whether [`crate::emit_sv`] appends the self-checking testbench
    /// module to the bundle. Defaults to `true`.
    pub testbench: bool,
}

impl Default for RtlOptions {
    fn default() -> RtlOptions {
        RtlOptions {
            name: "march_test".to_owned(),
            addr_width: 10,
            data_width: 8,
            delay_cycles: 16,
            testbench: true,
        }
    }
}

impl RtlOptions {
    /// Lower/upper bound for [`RtlOptions::addr_width`].
    pub const ADDR_WIDTH_RANGE: (u32, u32) = (1, 30);
    /// Lower/upper bound for [`RtlOptions::data_width`].
    pub const DATA_WIDTH_RANGE: (u32, u32) = (1, 1024);
    /// Lower/upper bound for [`RtlOptions::delay_cycles`].
    pub const DELAY_CYCLES_RANGE: (u32, u32) = (1, 1 << 24);

    /// Sets the module base name (sanitized at emission time).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> RtlOptions {
        self.name = name.into();
        self
    }

    /// Sets the address bus width (clamped at emission time).
    #[must_use]
    pub fn with_addr_width(mut self, width: u32) -> RtlOptions {
        self.addr_width = width;
        self
    }

    /// Sets the data bus width (clamped at emission time).
    #[must_use]
    pub fn with_data_width(mut self, width: u32) -> RtlOptions {
        self.data_width = width;
        self
    }

    /// Sets the `Del` pause length in cycles (clamped at emission time).
    #[must_use]
    pub fn with_delay_cycles(mut self, cycles: u32) -> RtlOptions {
        self.delay_cycles = cycles;
        self
    }

    /// Enables or disables the emitted testbench module.
    #[must_use]
    pub fn with_testbench(mut self, testbench: bool) -> RtlOptions {
        self.testbench = testbench;
        self
    }

    /// The options as the emitters actually apply them: name sanitized,
    /// numeric knobs clamped into their documented ranges. Emission and
    /// cache keys both operate on the normalized form.
    #[must_use]
    pub fn normalize(&self) -> RtlOptions {
        let clamp = |v: u32, (lo, hi): (u32, u32)| v.clamp(lo, hi);
        RtlOptions {
            name: sanitize_ident(&self.name),
            addr_width: clamp(self.addr_width, Self::ADDR_WIDTH_RANGE),
            data_width: clamp(self.data_width, Self::DATA_WIDTH_RANGE),
            delay_cycles: clamp(self.delay_cycles, Self::DELAY_CYCLES_RANGE),
            testbench: self.testbench,
        }
    }

    /// Deterministic key text for the RTL-specific knobs, suitable for
    /// appending to a canonical request key (the daemon folds this into
    /// its `/v1/rtl` cache key). Computed over the normalized options.
    #[must_use]
    pub fn canonical_fragment(&self) -> String {
        let n = self.normalize();
        format!(
            "rtl=v1;name={};aw={};dw={};delay={};tb={}",
            n.name,
            n.addr_width,
            n.data_width,
            n.delay_cycles,
            usize::from(n.testbench),
        )
    }
}

#[cfg(feature = "serde")]
mod codec {
    use super::RtlOptions;
    use marchgen_json::{bool_field, str_field, FromJson, Json, JsonError, ToJson};

    impl ToJson for RtlOptions {
        fn to_json(&self) -> Json {
            Json::object([
                ("name", Json::Str(self.name.clone())),
                ("addr_width", Json::Int(i64::from(self.addr_width))),
                ("data_width", Json::Int(i64::from(self.data_width))),
                ("delay_cycles", Json::Int(i64::from(self.delay_cycles))),
                ("testbench", Json::Bool(self.testbench)),
            ])
        }
    }

    fn u32_field(json: &Json, key: &str, default: u32) -> Result<u32, JsonError> {
        match json.get(key) {
            None => Ok(default),
            Some(value) => {
                let n = value
                    .as_int()
                    .ok_or_else(|| JsonError::decode(format!("\"{key}\" must be an integer")))?;
                u32::try_from(n)
                    .map_err(|_| JsonError::decode(format!("\"{key}\" out of range: {n}")))
            }
        }
    }

    impl FromJson for RtlOptions {
        /// Decodes an options object; every key is optional and defaults
        /// per [`RtlOptions::default`]. Unknown keys are ignored (the
        /// same forward-compatibility contract as `GenerateRequest`).
        fn from_json(json: &Json) -> Result<RtlOptions, JsonError> {
            if !matches!(json, Json::Object(_)) {
                return Err(JsonError::decode("rtl options must be an object"));
            }
            let defaults = RtlOptions::default();
            Ok(RtlOptions {
                name: match json.get("name") {
                    None => defaults.name,
                    Some(_) => str_field(json, "name")?.to_owned(),
                },
                addr_width: u32_field(json, "addr_width", defaults.addr_width)?,
                data_width: u32_field(json, "data_width", defaults.data_width)?,
                delay_cycles: u32_field(json, "delay_cycles", defaults.delay_cycles)?,
                testbench: match json.get("testbench") {
                    None => defaults.testbench,
                    Some(_) => bool_field(json, "testbench")?,
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_clamps_and_sanitizes() {
        let o = RtlOptions {
            name: "march c-".to_owned(),
            addr_width: 0,
            data_width: 9999,
            delay_cycles: 0,
            testbench: false,
        }
        .normalize();
        assert_eq!(o.name, "march_c_");
        assert_eq!(o.addr_width, 1);
        assert_eq!(o.data_width, 1024);
        assert_eq!(o.delay_cycles, 1);
    }

    #[test]
    fn canonical_fragment_is_stable_and_normalized() {
        let a = RtlOptions::default().canonical_fragment();
        assert_eq!(a, "rtl=v1;name=march_test;aw=10;dw=8;delay=16;tb=1");
        // Two requests that clamp to the same hardware share a key.
        let b = RtlOptions::default()
            .with_addr_width(0)
            .canonical_fragment();
        let c = RtlOptions::default()
            .with_addr_width(1)
            .canonical_fragment();
        assert_eq!(b, c);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn json_round_trip_and_defaults() {
        use marchgen_json::{FromJson, Json, ToJson};
        let opts = RtlOptions::default()
            .with_name("demo")
            .with_addr_width(4)
            .with_testbench(false);
        let back = RtlOptions::from_json(&opts.to_json()).unwrap();
        assert_eq!(back, opts);
        // Empty object → all defaults.
        let empty = RtlOptions::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(empty, RtlOptions::default());
        // Wrong types are decode errors.
        assert!(RtlOptions::from_json(&Json::parse("{\"addr_width\": \"ten\"}").unwrap()).is_err());
        assert!(RtlOptions::from_json(&Json::parse("[1]").unwrap()).is_err());
    }
}
