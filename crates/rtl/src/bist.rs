//! The `bist_if`-style top-level wrapper: drives the pattern generator
//! into a synchronous-read memory port and compares read data against
//! the expected value one cycle after each read (the memory registers
//! `dout` at the clock edge, so the check value, read strobe and address
//! are pipelined one stage to line up with it).

use crate::emit::{element_ascii, ADDR_ZERO, DATA_ZERO};
use crate::options::RtlOptions;
use marchgen_march::MarchTest;
use std::fmt::Write as _;

/// Emits the `<name>_bist` module. Callers validate the test first.
pub(crate) fn bist_module(test: &MarchTest, o: &RtlOptions) -> String {
    let name = &o.name;
    let mut s = String::new();
    let _ = writeln!(s, "// {name}_bist -- BIST wrapper around {name}_patgen.");
    let _ = writeln!(
        s,
        "// Hold en high after releasing rst; done rises when the March"
    );
    let _ = writeln!(
        s,
        "// sequence completes or the first mismatch is caught, fail latches"
    );
    let _ = writeln!(
        s,
        "// the verdict and fail_addr/fail_expected/fail_actual freeze the"
    );
    let _ = writeln!(
        s,
        "// first failing access. Expects a memory with 1-cycle read latency."
    );
    let _ = writeln!(s, "// March elements:");
    for (k, element) in test.elements().iter().enumerate() {
        let _ = writeln!(s, "//   {}: {}", k + 1, element_ascii(element));
    }
    let _ = writeln!(s, "module {name}_bist #(");
    let _ = writeln!(
        s,
        "    parameter int unsigned ADDR_WIDTH = {},",
        o.addr_width
    );
    let _ = writeln!(
        s,
        "    parameter int unsigned DATA_WIDTH = {},",
        o.data_width
    );
    let _ = writeln!(
        s,
        "    parameter logic [ADDR_WIDTH-1:0] MAX_ADDR = {{ADDR_WIDTH{{1'b1}}}},"
    );
    let _ = writeln!(
        s,
        "    parameter int unsigned DELAY_CYCLES = {}",
        o.delay_cycles
    );
    let _ = writeln!(s, ") (");
    let _ = writeln!(s, "    input  logic clk,");
    let _ = writeln!(s, "    input  logic rst,");
    let _ = writeln!(s, "    input  logic en,");
    let _ = writeln!(s, "    // Memory port (synchronous read, 1-cycle latency).");
    let _ = writeln!(s, "    output logic [ADDR_WIDTH-1:0] addr,");
    let _ = writeln!(s, "    output logic [DATA_WIDTH-1:0] data,");
    let _ = writeln!(s, "    output logic we,");
    let _ = writeln!(s, "    output logic re,");
    let _ = writeln!(s, "    input  logic [DATA_WIDTH-1:0] dout,");
    let _ = writeln!(s, "    // Verdict.");
    let _ = writeln!(s, "    output logic done,");
    let _ = writeln!(s, "    output logic fail,");
    let _ = writeln!(s, "    output logic [ADDR_WIDTH-1:0] fail_addr,");
    let _ = writeln!(s, "    output logic [DATA_WIDTH-1:0] fail_expected,");
    let _ = writeln!(s, "    output logic [DATA_WIDTH-1:0] fail_actual");
    let _ = writeln!(s, ");");
    let _ = writeln!(s);
    let _ = writeln!(s, "  localparam logic [1:0] ST_TEST = 2'd0;");
    let _ = writeln!(s, "  localparam logic [1:0] ST_SUCCESS = 2'd1;");
    let _ = writeln!(s, "  localparam logic [1:0] ST_FAILED = 2'd2;");
    let _ = writeln!(s);
    let _ = writeln!(s, "  logic [1:0] bist_state;");
    let _ = writeln!(s, "  logic run;");
    let _ = writeln!(s, "  logic patgen_done;");
    let _ = writeln!(s, "  logic [DATA_WIDTH-1:0] check;");
    let _ = writeln!(
        s,
        "  // Read pipeline: the memory registers dout at the edge, so the"
    );
    let _ = writeln!(
        s,
        "  // compare happens one cycle after the read was issued."
    );
    let _ = writeln!(s, "  logic prev_re;");
    let _ = writeln!(s, "  logic [DATA_WIDTH-1:0] prev_check;");
    let _ = writeln!(s, "  logic [ADDR_WIDTH-1:0] prev_addr;");
    let _ = writeln!(s);
    let _ = writeln!(s, "  assign run = en && (bist_state == ST_TEST);");
    let _ = writeln!(s);
    let _ = writeln!(s, "  {name}_patgen #(");
    let _ = writeln!(s, "      .ADDR_WIDTH(ADDR_WIDTH),");
    let _ = writeln!(s, "      .DATA_WIDTH(DATA_WIDTH),");
    let _ = writeln!(s, "      .MAX_ADDR(MAX_ADDR),");
    let _ = writeln!(s, "      .DELAY_CYCLES(DELAY_CYCLES)");
    let _ = writeln!(s, "  ) patgen (");
    let _ = writeln!(s, "      .clk(clk),");
    let _ = writeln!(s, "      .rst(rst),");
    let _ = writeln!(s, "      .en(run),");
    let _ = writeln!(s, "      .addr(addr),");
    let _ = writeln!(s, "      .data(data),");
    let _ = writeln!(s, "      .we(we),");
    let _ = writeln!(s, "      .re(re),");
    let _ = writeln!(s, "      .check(check),");
    let _ = writeln!(s, "      .done(patgen_done)");
    let _ = writeln!(s, "  );");
    let _ = writeln!(s);
    let _ = writeln!(s, "  always_ff @(posedge clk) begin");
    let _ = writeln!(s, "    if (rst) begin");
    let _ = writeln!(s, "      bist_state <= ST_TEST;");
    let _ = writeln!(s, "      prev_re <= 1'b0;");
    let _ = writeln!(s, "      prev_check <= {DATA_ZERO};");
    let _ = writeln!(s, "      prev_addr <= {ADDR_ZERO};");
    let _ = writeln!(s, "      fail_addr <= {ADDR_ZERO};");
    let _ = writeln!(s, "      fail_expected <= {DATA_ZERO};");
    let _ = writeln!(s, "      fail_actual <= {DATA_ZERO};");
    let _ = writeln!(s, "    end else begin");
    let _ = writeln!(s, "      prev_re <= re && run;");
    let _ = writeln!(s, "      prev_check <= check;");
    let _ = writeln!(s, "      prev_addr <= addr;");
    let _ = writeln!(s, "      if ((bist_state == ST_TEST) && en) begin");
    let _ = writeln!(s, "        if (prev_re && (dout != prev_check)) begin");
    let _ = writeln!(s, "          bist_state <= ST_FAILED;");
    let _ = writeln!(s, "          fail_addr <= prev_addr;");
    let _ = writeln!(s, "          fail_expected <= prev_check;");
    let _ = writeln!(s, "          fail_actual <= dout;");
    let _ = writeln!(s, "        end else if (patgen_done) begin");
    let _ = writeln!(s, "          bist_state <= ST_SUCCESS;");
    let _ = writeln!(s, "        end");
    let _ = writeln!(s, "      end");
    let _ = writeln!(s, "    end");
    let _ = writeln!(s, "  end");
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "  assign done = (bist_state == ST_SUCCESS) || (bist_state == ST_FAILED);"
    );
    let _ = writeln!(s, "  assign fail = (bist_state == ST_FAILED);");
    let _ = writeln!(s);
    let _ = writeln!(s, "endmodule // {name}_bist");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_march::known;

    #[test]
    fn wrapper_instantiates_patgen_and_latches_failures() {
        let sv = bist_module(&known::march_c_minus(), &RtlOptions::default().normalize());
        assert!(sv.contains("module march_test_bist #("), "{sv}");
        assert!(sv.contains("march_test_patgen #("), "{sv}");
        assert!(
            sv.contains("if (prev_re && (dout != prev_check)) begin"),
            "{sv}"
        );
        assert!(sv.contains("fail_actual <= dout;"), "{sv}");
        assert!(
            sv.contains("assign fail = (bist_state == ST_FAILED);"),
            "{sv}"
        );
    }
}
