//! # marchgen-rtl
//!
//! SystemVerilog BIST backend: compiles a verified
//! [`MarchTest`] into synthesizable RTL.
//!
//! Three modules come out of one call to [`emit_sv`], all sharing a base
//! name (`<name>_patgen`, `<name>_bist`, `<name>_tb`):
//!
//! 1. **Pattern generator** ([`emit_patgen`]) — a parameterized module
//!    (`ADDR_WIDTH`/`DATA_WIDTH` generics) with **one FSM state per March
//!    element**: an address counter that sweeps up or down per the
//!    element's `⇑`/`⇓`/`⇕` direction and an op sub-sequencer that steps
//!    the `rN`/`wN` operations inside the element. The paper's 1-bit cell
//!    values expand to word-wide data backgrounds (`0` → all-zeros,
//!    `1` → all-ones).
//! 2. **BIST wrapper** ([`emit_bist`]) — a `bist_if`-style top level
//!    (`clk`/`rst`/`en` in, `done`/`fail` plus failure diagnostics out)
//!    that drives a synchronous-read memory port and compares read data
//!    against the expected value one cycle after each read.
//! 3. **Self-checking testbench** ([`emit_testbench`]) — instantiates the
//!    wrapper against a behavioral memory model, runs once fault-free
//!    (must pass) and once with an injected stuck-at cell (must fail).
//!
//! No simulator ships with this repository, so the [`lint`] module
//! provides a token-level sanity checker (module/endmodule pairing,
//! balanced `begin`/`end`, identifiers declared before use) that the
//! offline golden-file harness runs over every emitted file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bist;
mod emit;
pub mod lint;
mod options;
mod testbench;

pub use lint::{lint_sv, LintIssue};
pub use options::RtlOptions;

use marchgen_march::{ConsistencyError, MarchTest};
use std::fmt;

/// Why a March test cannot be emitted as RTL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// The test has no elements — there is nothing to generate.
    EmptyTest,
    /// The test fails the read-consistency check (a read expects a value
    /// no preceding write guarantees); hardware generated from it would
    /// flag healthy memories as faulty.
    Inconsistent(ConsistencyError),
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::EmptyTest => f.write_str("march test has no elements"),
            RtlError::Inconsistent(e) => write!(f, "march test is inconsistent: {e}"),
        }
    }
}

impl std::error::Error for RtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtlError::EmptyTest => None,
            RtlError::Inconsistent(e) => Some(e),
        }
    }
}

/// Rejects tests that must not reach hardware: empty or inconsistent.
fn validate(test: &MarchTest) -> Result<(), RtlError> {
    if test.element_count() == 0 {
        return Err(RtlError::EmptyTest);
    }
    test.check_consistency().map_err(RtlError::Inconsistent)?;
    Ok(())
}

/// Emits the pattern-generator module only (`<name>_patgen`).
///
/// # Errors
/// [`RtlError`] if the test is empty or inconsistent.
pub fn emit_patgen(test: &MarchTest, options: &RtlOptions) -> Result<String, RtlError> {
    validate(test)?;
    Ok(emit::patgen_module(test, &options.normalize()))
}

/// Emits the BIST wrapper module only (`<name>_bist`); it instantiates
/// `<name>_patgen`, so pair it with [`emit_patgen`] output.
///
/// # Errors
/// [`RtlError`] if the test is empty or inconsistent.
pub fn emit_bist(test: &MarchTest, options: &RtlOptions) -> Result<String, RtlError> {
    validate(test)?;
    Ok(bist::bist_module(test, &options.normalize()))
}

/// Emits the self-checking testbench module only (`<name>_tb`).
///
/// # Errors
/// [`RtlError`] if the test is empty or inconsistent.
pub fn emit_testbench(test: &MarchTest, options: &RtlOptions) -> Result<String, RtlError> {
    validate(test)?;
    Ok(testbench::testbench_module(test, &options.normalize()))
}

/// Emits the complete single-file RTL bundle: pattern generator + BIST
/// wrapper, plus the testbench unless [`RtlOptions::testbench`] is off.
/// The result is a self-contained `.sv` file.
///
/// ```
/// use marchgen_march::known;
/// use marchgen_rtl::{emit_sv, lint_sv, RtlOptions};
///
/// let sv = emit_sv(
///     &known::march_c_minus(),
///     &RtlOptions::default().with_name("march_c_minus"),
/// )?;
/// assert!(sv.contains("module march_c_minus_patgen"));
/// assert!(sv.contains("module march_c_minus_bist"));
/// assert!(lint_sv(&sv).is_empty());
/// # Ok::<(), marchgen_rtl::RtlError>(())
/// ```
///
/// # Errors
/// [`RtlError`] if the test is empty or inconsistent.
pub fn emit_sv(test: &MarchTest, options: &RtlOptions) -> Result<String, RtlError> {
    validate(test)?;
    let o = options.normalize();
    let mut s = String::new();
    s.push_str(&emit::file_banner(test, &o));
    s.push('\n');
    s.push_str(&emit::patgen_module(test, &o));
    s.push('\n');
    s.push_str(&bist::bist_module(test, &o));
    if o.testbench {
        s.push('\n');
        s.push_str(&testbench::testbench_module(test, &o));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_march::{known, MarchElement, MarchOp, MarchTest};

    #[test]
    fn empty_test_is_rejected() {
        let empty = MarchTest::new(vec![]);
        let err = emit_sv(&empty, &RtlOptions::default()).unwrap_err();
        assert_eq!(err, RtlError::EmptyTest);
    }

    #[test]
    fn inconsistent_test_is_rejected() {
        // r1 with no initializing write.
        let bad = MarchTest::new(vec![MarchElement::up(vec![MarchOp::R1])]);
        let err = emit_sv(&bad, &RtlOptions::default()).unwrap_err();
        assert!(matches!(err, RtlError::Inconsistent(_)), "{err}");
    }

    #[test]
    fn bundle_contains_all_three_modules() {
        let sv = emit_sv(
            &known::mats_plus(),
            &RtlOptions::default().with_name("mats_plus"),
        )
        .expect("catalog test emits");
        for module in ["mats_plus_patgen", "mats_plus_bist", "mats_plus_tb"] {
            assert!(sv.contains(&format!("module {module}")), "missing {module}");
            assert!(
                sv.contains(&format!("endmodule // {module}")),
                "unclosed {module}"
            );
        }
    }

    #[test]
    fn testbench_can_be_suppressed() {
        let opts = RtlOptions::default().with_testbench(false);
        let sv = emit_sv(&known::mats_plus(), &opts).unwrap();
        assert!(!sv.contains("_tb"), "{sv}");
    }

    #[test]
    fn whole_catalog_emits_and_lints_clean() {
        for (name, test) in known::all() {
            let sv = emit_sv(&test, &RtlOptions::default()).expect(name);
            let issues = lint_sv(&sv);
            assert!(issues.is_empty(), "{name}: {issues:?}\n{sv}");
        }
    }

    #[test]
    fn one_fsm_state_per_element() {
        for (name, test) in known::all() {
            let sv = emit_patgen(&test, &RtlOptions::default()).expect(name);
            for k in 0..test.element_count() {
                assert!(sv.contains(&format!("S_E{k}")), "{name}: missing state {k}");
            }
            assert!(
                !sv.contains(&format!("S_E{}", test.element_count())),
                "{name}"
            );
        }
    }

    #[test]
    fn hostile_name_is_sanitized_in_module_headers() {
        let opts = RtlOptions::default().with_name("march c-");
        let sv = emit_sv(&known::mats_plus(), &opts).unwrap();
        assert!(sv.contains("module march_c__patgen"), "{sv}");
    }
}
