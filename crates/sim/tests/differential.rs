//! Differential tests: the bit-parallel sweep ([`marchgen_sim::bitsim`]
//! / [`BitSimVerifier`]) must agree **exactly** with the scalar
//! behavioural simulator ([`coverage`] / [`SimVerifier`]) — same
//! [`CoverageReport`]s (including escape lists, in order), same
//! compactions, same non-redundancy verdicts — across the full
//! classical fault catalog, the known-test library, and deterministic
//! random March tests.

use marchgen_faults::{parse_fault_list, FaultModel};
use marchgen_march::{known, Direction, MarchElement, MarchOp, MarchTest};
use marchgen_model::{Bit, Tri};
use marchgen_sim::verify::{BitSimVerifier, SimVerifier, Verifier};
use marchgen_sim::{bitsim, coverage};
use marchgen_testkit::{run_cases, Rng};

/// A random *consistent* March test: reads always expect the value the
/// per-cell sequence currently holds, so `check_consistency` passes by
/// construction.
fn random_march(rng: &mut Rng) -> MarchTest {
    let directions = [Direction::Up, Direction::Down, Direction::Any];
    let elements = rng.range(1, 5);
    let mut cur = Tri::X;
    let mut out: Vec<MarchElement> = Vec::new();
    for _ in 0..elements {
        let dir = *rng.pick(&directions);
        let mut ops: Vec<MarchOp> = Vec::new();
        for _ in 0..rng.range(1, 4) {
            match rng.range(0, 4) {
                0 | 1 => {
                    let v = if rng.flip() { Bit::One } else { Bit::Zero };
                    ops.push(MarchOp::Write(v));
                    cur = Tri::from(v);
                }
                2 => {
                    if let Some(expect) = cur.bit() {
                        ops.push(MarchOp::Read(expect));
                    } else {
                        ops.push(MarchOp::Write(Bit::Zero));
                        cur = Tri::from(Bit::Zero);
                    }
                }
                _ => ops.push(MarchOp::Delay),
            }
        }
        out.push(MarchElement::new(dir, ops));
    }
    let test = MarchTest::new(out);
    assert_eq!(test.check_consistency(), Ok(()));
    test
}

/// Every model of the extended taxonomy (classical + dynamic + linked)
/// × every known test: identical reports, including per-site escape
/// lists.
#[test]
fn full_catalog_matches_on_known_tests() {
    let n = 4;
    let catalog = FaultModel::all_extended();
    for (name, test) in known::all() {
        for &model in &catalog {
            let scalar = coverage::model_coverage(&test, model, n);
            let packed = bitsim::model_coverage(&test, model, n);
            assert_eq!(packed, scalar, "{name} × {model}");
        }
    }
}

/// Same sweep on a larger memory for a subset of tests, so multi-batch
/// packing (pair faults at n = 6 → 120+ lanes) is exercised.
#[test]
fn full_catalog_matches_on_larger_memory() {
    let n = 6;
    for (name, test) in [
        ("MATS", known::mats()),
        ("March C-", known::march_c_minus()),
        ("March G", known::march_g()),
    ] {
        for model in FaultModel::all_extended() {
            let scalar = coverage::model_coverage(&test, model, n);
            let packed = bitsim::model_coverage(&test, model, n);
            assert_eq!(packed, scalar, "{name} × {model} at n={n}");
        }
    }
}

/// Deterministic random March tests, random fault subsets, random
/// memory sizes: reports and `covers_all` agree.
#[test]
fn random_tests_match_scalar_reports() {
    let catalog = FaultModel::all_extended();
    run_cases("bitsim ≡ scalar on random tests", 48, |rng| {
        let test = random_march(rng);
        let n = rng.range(2, 6);
        let models: Vec<FaultModel> = (0..rng.range(1, 4)).map(|_| *rng.pick(&catalog)).collect();
        let scalar = coverage::coverage_report(&test, &models, n);
        let packed = bitsim::coverage_report(&test, &models, n);
        assert_eq!(packed, scalar, "{test} over {models:?} at n={n}");
        assert_eq!(
            bitsim::covers_all(&test, &models, n),
            coverage::covers_all(&test, &models, n),
            "{test} over {models:?} at n={n}"
        );
    });
}

/// The two verifier backends agree on compaction and non-redundancy for
/// the workloads the pipeline actually runs (Table 3 fault lists).
#[test]
fn verifier_backends_agree_on_compaction() {
    let n = 4;
    for list in [
        "SAF",
        "SAF, TF",
        "SAF, TF, ADF",
        "SAF, TF, ADF, CFin",
        "CFid<u,1>, CFid<d,1>",
        "CFin, CFid, CFst",
        "dRDF, dDRDF, dIRF",
        "SAF, dRDF<0>, LCF<1>",
        "LCF",
    ] {
        let models = parse_fault_list(list).unwrap();
        let scalar = SimVerifier::new(n);
        let packed = BitSimVerifier::new(n);
        for (name, test) in known::all() {
            assert_eq!(
                packed.verify(&test, &models),
                scalar.verify(&test, &models),
                "{name} × {list}"
            );
            assert_eq!(
                *packed.compact(&test, &models),
                *scalar.compact(&test, &models),
                "{name} × {list}"
            );
            assert_eq!(
                packed.is_non_redundant(&test, &models),
                scalar.is_non_redundant(&test, &models),
                "{name} × {list}"
            );
        }
    }
}

/// Random tests through both verifiers end to end (verify + compact).
#[test]
fn random_tests_match_through_verifier_trait() {
    let catalog = FaultModel::all_extended();
    run_cases("verifier backends ≡ on random tests", 24, |rng| {
        let test = random_march(rng);
        let n = rng.range(2, 5);
        let models: Vec<FaultModel> = (0..rng.range(1, 3)).map(|_| *rng.pick(&catalog)).collect();
        let scalar = SimVerifier::new(n);
        let packed = BitSimVerifier::new(n);
        assert_eq!(
            packed.verify(&test, &models),
            scalar.verify(&test, &models),
            "{test} over {models:?} at n={n}"
        );
        assert_eq!(
            *packed.compact(&test, &models),
            *scalar.compact(&test, &models),
            "{test} over {models:?} at n={n}"
        );
    });
}
