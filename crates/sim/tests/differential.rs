//! Differential tests: every packed sweep — the 64-lane
//! [`marchgen_sim::bitsim`] and the wide-lane [`marchgen_sim::widesim`]
//! at **every** supported width W ∈ {2, 4, 8} — must agree **exactly**
//! with the scalar behavioural simulator ([`coverage`] /
//! [`SimVerifier`]): same [`CoverageReport`]s (including escape lists,
//! in order), same compactions, same non-redundancy verdicts, and —
//! finest of all — the same per-scenario-lane mismatch verdicts, so a
//! disagreement on a *single* lane fails the build even when the
//! aggregated site verdicts happen to coincide. Coverage spans the full
//! extended fault catalog (`all_extended()`: classical + dynamic +
//! linked), the known-test library, and deterministic random March
//! tests from `marchgen-testkit`.

use marchgen_faults::{parse_fault_list, FaultModel};
use marchgen_march::{known, Direction, MarchElement, MarchOp, MarchTest};
use marchgen_model::{Bit, Tri};
use marchgen_sim::verify::{BitSimVerifier, SimVerifier, Verifier, WideSimVerifier};
use marchgen_sim::{bitsim, coverage, engine, widesim};
use marchgen_testkit::{run_cases, Rng};

/// A random *consistent* March test: reads always expect the value the
/// per-cell sequence currently holds, so `check_consistency` passes by
/// construction.
fn random_march(rng: &mut Rng) -> MarchTest {
    let directions = [Direction::Up, Direction::Down, Direction::Any];
    let elements = rng.range(1, 5);
    let mut cur = Tri::X;
    let mut out: Vec<MarchElement> = Vec::new();
    for _ in 0..elements {
        let dir = *rng.pick(&directions);
        let mut ops: Vec<MarchOp> = Vec::new();
        for _ in 0..rng.range(1, 4) {
            match rng.range(0, 4) {
                0 | 1 => {
                    let v = if rng.flip() { Bit::One } else { Bit::Zero };
                    ops.push(MarchOp::Write(v));
                    cur = Tri::from(v);
                }
                2 => {
                    if let Some(expect) = cur.bit() {
                        ops.push(MarchOp::Read(expect));
                    } else {
                        ops.push(MarchOp::Write(Bit::Zero));
                        cur = Tri::from(Bit::Zero);
                    }
                }
                _ => ops.push(MarchOp::Delay),
            }
        }
        out.push(MarchElement::new(dir, ops));
    }
    let test = MarchTest::new(out);
    assert_eq!(test.check_consistency(), Ok(()));
    test
}

/// Asserts all three backends (scalar, bitsim, widesim at W = 2/4/8 and
/// auto width) produce the same per-model coverage.
fn assert_three_way(test: &MarchTest, model: FaultModel, n: usize, ctx: &str) {
    let scalar = coverage::model_coverage(test, model, n);
    assert_eq!(
        bitsim::model_coverage(test, model, n),
        scalar,
        "bitsim {ctx}"
    );
    assert_eq!(
        widesim::model_coverage_w::<2>(test, model, n),
        scalar,
        "widesim W=2 {ctx}"
    );
    assert_eq!(
        widesim::model_coverage_w::<4>(test, model, n),
        scalar,
        "widesim W=4 {ctx}"
    );
    assert_eq!(
        widesim::model_coverage_w::<8>(test, model, n),
        scalar,
        "widesim W=8 {ctx}"
    );
    assert_eq!(
        widesim::model_coverage(test, model, n),
        scalar,
        "widesim auto {ctx}"
    );
}

/// Every model of the extended taxonomy (classical + dynamic + linked)
/// × every known test: identical reports from every backend at every
/// width, including per-site escape lists.
#[test]
fn full_catalog_matches_on_known_tests() {
    let n = 4;
    let catalog = FaultModel::all_extended();
    for (name, test) in known::all() {
        for &model in &catalog {
            assert_three_way(&test, model, n, &format!("{name} × {model}"));
        }
    }
}

/// Same sweep on a larger memory for a subset of tests, so multi-batch
/// packing (pair faults at n = 6 → 240 lanes: four bitsim batches, two
/// W = 2 blocks, one W = 4 block) is exercised in every backend.
#[test]
fn full_catalog_matches_on_larger_memory() {
    let n = 6;
    for (name, test) in [
        ("MATS", known::mats()),
        ("March C-", known::march_c_minus()),
        ("March G", known::march_g()),
    ] {
        for model in FaultModel::all_extended() {
            assert_three_way(&test, model, n, &format!("{name} × {model} at n={n}"));
        }
    }
}

/// The finest observable: per-resolution × per-scenario-lane mismatch
/// verdicts must be identical across the scalar engine, the 64-lane
/// engine, and the wide engine at every width — over the whole extended
/// catalog. A single disagreeing lane fails this test even if the
/// aggregated detection verdicts agree.
#[test]
fn lane_verdicts_identical_across_backends() {
    let tests = [
        ("MATS+", known::mats_plus()),
        ("March C-", known::march_c_minus()),
        ("March SS", known::march_ss()),
    ];
    for n in [4usize, 6] {
        for (name, test) in &tests {
            for model in FaultModel::all_extended() {
                let ctx = format!("{name} × {model} at n={n}");
                let scalar = engine::lane_mismatches(test, model, n);
                assert_eq!(
                    bitsim::lane_mismatches(test, model, n),
                    scalar,
                    "bitsim {ctx}"
                );
                assert_eq!(
                    widesim::lane_mismatches_w::<2>(test, model, n),
                    scalar,
                    "widesim W=2 {ctx}"
                );
                assert_eq!(
                    widesim::lane_mismatches_w::<4>(test, model, n),
                    scalar,
                    "widesim W=4 {ctx}"
                );
                assert_eq!(
                    widesim::lane_mismatches_w::<8>(test, model, n),
                    scalar,
                    "widesim W=8 {ctx}"
                );
            }
        }
    }
}

/// Lane-level agreement on random March tests and random models.
#[test]
fn random_lane_verdicts_match_scalar() {
    let catalog = FaultModel::all_extended();
    run_cases("lane verdicts ≡ scalar on random tests", 32, |rng| {
        let test = random_march(rng);
        let n = rng.range(2, 6);
        let model = *rng.pick(&catalog);
        let scalar = engine::lane_mismatches(&test, model, n);
        let ctx = format!("{test} × {model} at n={n}");
        assert_eq!(
            bitsim::lane_mismatches(&test, model, n),
            scalar,
            "bitsim {ctx}"
        );
        assert_eq!(
            widesim::lane_mismatches_w::<2>(&test, model, n),
            scalar,
            "widesim W=2 {ctx}"
        );
        assert_eq!(
            widesim::lane_mismatches_w::<4>(&test, model, n),
            scalar,
            "widesim W=4 {ctx}"
        );
        assert_eq!(
            widesim::lane_mismatches_w::<8>(&test, model, n),
            scalar,
            "widesim W=8 {ctx}"
        );
    });
}

/// Deterministic random March tests, random fault subsets, random
/// memory sizes: reports and `covers_all` agree across all backends.
#[test]
fn random_tests_match_scalar_reports() {
    let catalog = FaultModel::all_extended();
    run_cases("packed ≡ scalar on random tests", 48, |rng| {
        let test = random_march(rng);
        let n = rng.range(2, 6);
        let models: Vec<FaultModel> = (0..rng.range(1, 4)).map(|_| *rng.pick(&catalog)).collect();
        let scalar = coverage::coverage_report(&test, &models, n);
        let ctx = format!("{test} over {models:?} at n={n}");
        assert_eq!(
            bitsim::coverage_report(&test, &models, n),
            scalar,
            "bitsim {ctx}"
        );
        assert_eq!(
            widesim::coverage_report_w::<2>(&test, &models, n),
            scalar,
            "widesim W=2 {ctx}"
        );
        assert_eq!(
            widesim::coverage_report_w::<4>(&test, &models, n),
            scalar,
            "widesim W=4 {ctx}"
        );
        assert_eq!(
            widesim::coverage_report_w::<8>(&test, &models, n),
            scalar,
            "widesim W=8 {ctx}"
        );
        let expect = coverage::covers_all(&test, &models, n);
        assert_eq!(
            bitsim::covers_all(&test, &models, n),
            expect,
            "bitsim {ctx}"
        );
        assert_eq!(
            widesim::covers_all(&test, &models, n),
            expect,
            "widesim {ctx}"
        );
    });
}

/// All three verifier backends agree on verification, compaction and
/// non-redundancy for the workloads the pipeline actually runs (Table 3
/// fault lists plus dynamic/linked extensions).
#[test]
fn verifier_backends_agree_on_compaction() {
    let n = 4;
    for list in [
        "SAF",
        "SAF, TF",
        "SAF, TF, ADF",
        "SAF, TF, ADF, CFin",
        "CFid<u,1>, CFid<d,1>",
        "CFin, CFid, CFst",
        "dRDF, dDRDF, dIRF",
        "SAF, dRDF<0>, LCF<1>",
        "LCF",
    ] {
        let models = parse_fault_list(list).unwrap();
        let scalar = SimVerifier::new(n);
        let backends: [Box<dyn Verifier>; 2] = [
            Box::new(BitSimVerifier::new(n)),
            Box::new(WideSimVerifier::new(n)),
        ];
        for (name, test) in known::all() {
            for packed in &backends {
                let ctx = format!("{name} × {list} via {}", packed.name());
                assert_eq!(
                    packed.verify(&test, &models),
                    scalar.verify(&test, &models),
                    "{ctx}"
                );
                assert_eq!(
                    *packed.compact(&test, &models),
                    *scalar.compact(&test, &models),
                    "{ctx}"
                );
                assert_eq!(
                    packed.is_non_redundant(&test, &models),
                    scalar.is_non_redundant(&test, &models),
                    "{ctx}"
                );
            }
        }
    }
}

/// Random tests through all three verifiers end to end (verify +
/// compact), including the sharded wide path at several worker counts.
#[test]
fn random_tests_match_through_verifier_trait() {
    let catalog = FaultModel::all_extended();
    run_cases("verifier backends ≡ on random tests", 24, |rng| {
        let test = random_march(rng);
        let n = rng.range(2, 5);
        let models: Vec<FaultModel> = (0..rng.range(1, 3)).map(|_| *rng.pick(&catalog)).collect();
        let scalar = SimVerifier::new(n);
        let expected = scalar.verify(&test, &models);
        let compacted = scalar.compact(&test, &models);
        let backends: [Box<dyn Verifier>; 2] = [
            Box::new(BitSimVerifier::new(n)),
            Box::new(WideSimVerifier::new(n)),
        ];
        for packed in &backends {
            let ctx = format!("{test} over {models:?} at n={n} via {}", packed.name());
            assert_eq!(packed.verify(&test, &models), expected, "{ctx}");
            assert_eq!(*packed.compact(&test, &models), *compacted, "{ctx}");
            let workers = rng.range(1, 5);
            let run = packed.verify_sharded(&test, &models, workers);
            assert_eq!(run.report, expected, "sharded {ctx} at {workers} workers");
        }
    });
}
