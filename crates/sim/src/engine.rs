//! March test execution and guaranteed-detection analysis.
//!
//! A March test *detects* a fault instance when **every** execution
//! scenario produces at least one mismatching read. Scenarios range over:
//!
//! * the concrete power-up pattern (backgrounds of all-0 and all-1,
//!   crossed with every combination of the fault site's own cells — the
//!   initial memory content is unknown to a real test), and
//! * the address-order resolution of every `⇕` element (an implementation
//!   may sweep either way; coverage must not depend on the choice), and
//! * the power-up value of the stuck-open sense-amplifier latch.

use crate::memory::{FaultyMemory, MemoryBehavior, SiteCells};
use marchgen_faults::FaultModel;
use marchgen_march::{Direction, MarchOp, MarchTest};
use marchgen_model::Bit;

/// A concrete fault instance: a model at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// The fault model.
    pub model: FaultModel,
    /// Where it sits.
    pub cells: SiteCells,
}

impl FaultSite {
    /// Every instance of `model` in an `n`-cell memory: `n` sites for
    /// single-cell models, `n·(n−1)` ordered pairs for coupling models.
    #[must_use]
    pub fn enumerate(model: FaultModel, n: usize) -> Vec<FaultSite> {
        let mut sites = Vec::new();
        if model.is_pair_fault() {
            for a in 0..n {
                for v in 0..n {
                    if a != v {
                        sites.push(FaultSite {
                            model,
                            cells: SiteCells::Pair {
                                aggressor: a,
                                victim: v,
                            },
                        });
                    }
                }
            }
        } else {
            for c in 0..n {
                sites.push(FaultSite {
                    model,
                    cells: SiteCells::Single(c),
                });
            }
        }
        sites
    }
}

/// One observed read during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRecord {
    /// Flat index of the read among the test's per-cell operations
    /// (element-major), identifying the elementary block it closes.
    pub op_index: usize,
    /// Address the read visited.
    pub addr: usize,
    /// Expected (fault-free) value.
    pub expected: Bit,
    /// Value the device produced.
    pub got: Bit,
}

impl ReadRecord {
    /// `true` when the read exposes a fault.
    #[must_use]
    pub fn mismatch(&self) -> bool {
        self.expected != self.got
    }
}

/// Executes `test` on `memory` with the given `⇕` resolution choices
/// (one [`Direction::Up`]/[`Direction::Down`] entry per `Any` element, in
/// order), returning every read performed.
///
/// Elements whose operation list is exactly `[Del]` wait once, globally,
/// as in the March G notation; a `Del` inside a longer element waits at
/// every visited cell.
///
/// # Panics
///
/// Panics if `resolutions` is shorter than the number of `⇕` elements.
#[must_use]
pub fn run(
    test: &MarchTest,
    memory: &mut dyn MemoryBehavior,
    resolutions: &[Direction],
) -> Vec<ReadRecord> {
    let mut records = Vec::new();
    run_with(test, memory, resolutions, |record| records.push(record));
    records
}

/// Streaming variant of [`run`]: every read is handed to `on_read` as it
/// happens instead of being collected, so detection sweeps that only need
/// "was there a mismatch?" pay no per-scenario allocation.
///
/// # Panics
///
/// Panics if `resolutions` is shorter than the number of `⇕` elements.
pub fn run_with(
    test: &MarchTest,
    memory: &mut dyn MemoryBehavior,
    resolutions: &[Direction],
    mut on_read: impl FnMut(ReadRecord),
) {
    let n = memory.len();
    let mut op_base = 0usize;
    let mut res_iter = resolutions.iter();
    for element in test.elements() {
        let dir = match element.direction {
            Direction::Any => *res_iter.next().expect("a resolution per ⇕ element"),
            d => d,
        };
        if element.ops.len() == 1 && element.ops[0] == MarchOp::Delay {
            memory.delay();
            op_base += 1;
            continue;
        }
        let addresses: Box<dyn Iterator<Item = usize>> = match dir {
            Direction::Down => Box::new((0..n).rev()),
            _ => Box::new(0..n),
        };
        for addr in addresses {
            for (k, &op) in element.ops.iter().enumerate() {
                match op {
                    MarchOp::Write(d) => memory.write(addr, d),
                    MarchOp::Delay => memory.delay(),
                    MarchOp::Read(expected) => {
                        let got = memory.read(addr);
                        on_read(ReadRecord {
                            op_index: op_base + k,
                            addr,
                            expected,
                            got,
                        });
                    }
                }
            }
        }
        op_base += element.ops.len();
    }
}

/// All `⇕` resolution vectors to check: exhaustive up to 6 `Any`
/// elements (64 combinations), the four canonical patterns beyond.
#[must_use]
pub fn resolution_vectors(test: &MarchTest) -> Vec<Vec<Direction>> {
    let k = test
        .elements()
        .iter()
        .filter(|e| e.direction == Direction::Any)
        .count();
    if k == 0 {
        return vec![Vec::new()];
    }
    if k <= 6 {
        (0..(1usize << k))
            .map(|mask| {
                (0..k)
                    .map(|b| {
                        if mask & (1 << b) == 0 {
                            Direction::Up
                        } else {
                            Direction::Down
                        }
                    })
                    .collect()
            })
            .collect()
    } else {
        vec![
            vec![Direction::Up; k],
            vec![Direction::Down; k],
            (0..k)
                .map(|b| {
                    if b % 2 == 0 {
                        Direction::Up
                    } else {
                        Direction::Down
                    }
                })
                .collect(),
            (0..k)
                .map(|b| {
                    if b % 2 == 1 {
                        Direction::Up
                    } else {
                        Direction::Down
                    }
                })
                .collect(),
        ]
    }
}

/// The power-up patterns to check for a site: backgrounds of all-0 and
/// all-1, crossed with every combination of the site's own cells.
#[must_use]
pub fn power_up_patterns(site: &FaultSite, n: usize) -> Vec<Vec<Bit>> {
    let involved = site.cells.addresses();
    let mut patterns = Vec::new();
    for bg in Bit::ALL {
        for combo in 0..(1usize << involved.len()) {
            let mut cells = vec![bg; n];
            for (k, &addr) in involved.iter().enumerate() {
                cells[addr] = if combo & (1 << k) == 0 {
                    Bit::Zero
                } else {
                    Bit::One
                };
            }
            if !patterns.contains(&cells) {
                patterns.push(cells);
            }
        }
    }
    patterns
}

/// Latch power-up values worth checking (only latch-reading behaviours —
/// stuck-open — observe it).
pub(crate) fn latch_values(site: &FaultSite) -> &'static [Bit] {
    if marchgen_faults::lowering::behavior(site.model).uses_latch {
        &Bit::ALL
    } else {
        &[Bit::Zero]
    }
}

/// Guaranteed detection: `true` when every scenario (power-up pattern ×
/// `⇕` resolution × latch value) yields at least one mismatching read.
///
/// This is the hot primitive of every coverage sweep, so it avoids the
/// per-scenario churn of [`detecting_scenarios`]: the resolution vectors
/// are computed once per call, one [`FaultyMemory`] buffer is reused via
/// [`FaultyMemory::reset`] across scenarios, reads stream through
/// [`run_with`] without being collected, and the sweep bails on the
/// first scenario with no mismatching read.
#[must_use]
pub fn detects(test: &MarchTest, site: &FaultSite, n: usize) -> bool {
    let resolutions = resolution_vectors(test);
    let patterns = power_up_patterns(site, n);
    let latches = latch_values(site);
    let mut mem = FaultyMemory::new(vec![Bit::Zero; n], site.model, site.cells, Bit::Zero);
    for pattern in &patterns {
        for resolution in &resolutions {
            for &latch in latches {
                mem.reset(pattern, latch);
                let mut mismatched = false;
                run_with(test, &mut mem, resolution, |r| {
                    mismatched = mismatched || r.mismatch();
                });
                if !mismatched {
                    return false;
                }
            }
        }
    }
    true
}

/// Scalar reference for the packed backends' lane-level differential
/// tests: `out[r][l]` is `true` when scenario lane `l` produced at least
/// one mismatching read under `⇕` resolution vector `r`. Lanes are
/// enumerated site-major, then power-up pattern, then latch value — the
/// exact order [`crate::bitsim`] and [`crate::widesim`] pack them in.
#[must_use]
pub fn lane_mismatches(test: &MarchTest, model: FaultModel, n: usize) -> Vec<Vec<bool>> {
    let resolutions = resolution_vectors(test);
    let mut out = vec![Vec::new(); resolutions.len()];
    for site in FaultSite::enumerate(model, n) {
        let mut mem = FaultyMemory::new(vec![Bit::Zero; n], site.model, site.cells, Bit::Zero);
        for pattern in power_up_patterns(&site, n) {
            for &latch in latch_values(&site) {
                for (ri, resolution) in resolutions.iter().enumerate() {
                    mem.reset(&pattern, latch);
                    let mut mismatched = false;
                    run_with(test, &mut mem, resolution, |r| {
                        mismatched = mismatched || r.mismatch();
                    });
                    out[ri].push(mismatched);
                }
            }
        }
    }
    out
}

/// Detection details across scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionOutcome {
    /// Whether every scenario had a mismatch.
    pub all_detected: bool,
    /// Number of scenarios simulated.
    pub scenarios: usize,
    /// Per-scenario sets of mismatching per-cell op indices (elementary
    /// blocks); used by the coverage matrix.
    pub mismatch_ops: Vec<Vec<usize>>,
}

/// Runs every scenario for `site`, recording which reads mismatched.
#[must_use]
pub fn detecting_scenarios(test: &MarchTest, site: &FaultSite, n: usize) -> DetectionOutcome {
    let mut all_detected = true;
    let mut scenarios = 0usize;
    let mut mismatch_ops = Vec::new();
    let resolutions = resolution_vectors(test);
    let latches = latch_values(site);
    let mut mem = FaultyMemory::new(vec![Bit::Zero; n], site.model, site.cells, Bit::Zero);
    for pattern in power_up_patterns(site, n) {
        for resolution in &resolutions {
            for &latch in latches {
                scenarios += 1;
                mem.reset(&pattern, latch);
                let mut ops: Vec<usize> = Vec::new();
                run_with(test, &mut mem, resolution, |r| {
                    if r.mismatch() {
                        ops.push(r.op_index);
                    }
                });
                if ops.is_empty() {
                    all_detected = false;
                }
                mismatch_ops.push(ops);
            }
        }
    }
    DetectionOutcome {
        all_detected,
        scenarios,
        mismatch_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::GoodMemory;
    use marchgen_faults::TransitionDir;
    use marchgen_march::known;

    #[test]
    fn good_memory_never_mismatches_consistent_tests() {
        for (name, test) in known::all() {
            for resolution in resolution_vectors(&test) {
                let mut mem = GoodMemory::filled(5, Bit::One);
                let records = run(&test, &mut mem, &resolution);
                assert!(
                    records.iter().all(|r| !r.mismatch()),
                    "{name} mismatched on a fault-free memory"
                );
            }
        }
    }

    #[test]
    fn mats_detects_stuck_at_everywhere() {
        for v in Bit::ALL {
            for site in FaultSite::enumerate(FaultModel::StuckAt(v), 5) {
                assert!(detects(&known::mats(), &site, 5), "MATS misses {site:?}");
            }
        }
    }

    #[test]
    fn mats_misses_transition_faults() {
        // MATS never verifies the ↓ transition.
        let missed = FaultSite::enumerate(FaultModel::Transition(TransitionDir::Down), 4)
            .into_iter()
            .any(|site| !detects(&known::mats(), &site, 4));
        assert!(missed);
    }

    #[test]
    fn march_c_minus_detects_all_cfid() {
        for dir in TransitionDir::ALL {
            for f in Bit::ALL {
                let model = FaultModel::CouplingIdempotent(dir, f);
                for site in FaultSite::enumerate(model, 4) {
                    assert!(
                        detects(&known::march_c_minus(), &site, 4),
                        "March C- misses {model} at {:?}",
                        site.cells
                    );
                }
            }
        }
    }

    #[test]
    fn mats_plus_misses_some_cfid() {
        let model = FaultModel::CouplingIdempotent(TransitionDir::Down, Bit::Zero);
        let missed = FaultSite::enumerate(model, 4)
            .into_iter()
            .any(|site| !detects(&known::mats_plus(), &site, 4));
        assert!(missed);
    }

    #[test]
    fn march_g_detects_data_retention_and_sof() {
        let g = known::march_g();
        for x in Bit::ALL {
            for site in FaultSite::enumerate(FaultModel::DataRetention(x), 4) {
                assert!(detects(&g, &site, 4), "March G misses DRF<{x}>");
            }
        }
        for site in FaultSite::enumerate(FaultModel::StuckOpen, 4) {
            assert!(
                detects(&g, &site, 4),
                "March G misses SOF at {:?}",
                site.cells
            );
        }
    }

    #[test]
    fn mats_misses_sof() {
        let missed = FaultSite::enumerate(FaultModel::StuckOpen, 4)
            .into_iter()
            .any(|site| !detects(&known::mats(), &site, 4));
        assert!(missed);
    }

    #[test]
    fn resolution_vectors_cover_all_combinations() {
        let t = known::march_x(); // two ⇕ elements
        let vecs = resolution_vectors(&t);
        assert_eq!(vecs.len(), 4);
        let t = known::mats_plus(); // one ⇕
        assert_eq!(resolution_vectors(&t).len(), 2);
    }

    #[test]
    fn power_up_patterns_cover_site_combinations() {
        let site = FaultSite {
            model: FaultModel::CouplingInversion(TransitionDir::Up),
            cells: SiteCells::Pair {
                aggressor: 0,
                victim: 2,
            },
        };
        let pats = power_up_patterns(&site, 4);
        // 2 backgrounds × 4 site combos, minus duplicates (site combo may
        // equal the background) — at least 8 distinct patterns for n=4.
        assert!(pats.len() >= 8, "{}", pats.len());
    }

    #[test]
    fn detection_requires_all_scenarios() {
        // An ⇑-only test that catches CFid<↑,1> with aggressor below the
        // victim but not above: detects() must say "no" for the reversed
        // pair.
        let t: MarchTest = "⇑(w0); ⇑(r0,w1); ⇑(r1)".parse().unwrap();
        let model = FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::One);
        let below = FaultSite {
            model,
            cells: SiteCells::Pair {
                aggressor: 0,
                victim: 2,
            },
        };
        let above = FaultSite {
            model,
            cells: SiteCells::Pair {
                aggressor: 2,
                victim: 0,
            },
        };
        assert!(detects(&t, &below, 4));
        assert!(!detects(&t, &above, 4));
    }

    #[test]
    fn delay_element_applies_once() {
        // DRF<1>: ⇕(w1); Del; ⇕(r1) catches the decayed cell.
        let t: MarchTest = "m(w1); m(Del); m(r1)".parse().unwrap();
        for site in FaultSite::enumerate(FaultModel::DataRetention(Bit::One), 3) {
            assert!(detects(&t, &site, 3));
        }
        // Without the delay the fault never manifests.
        let t: MarchTest = "m(w1); m(r1)".parse().unwrap();
        for site in FaultSite::enumerate(FaultModel::DataRetention(Bit::One), 3) {
            assert!(!detects(&t, &site, 3));
        }
    }
}
