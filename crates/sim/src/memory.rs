//! Behavioural memories: the fault-free array and the single-fault
//! injected array implementing every [`FaultModel`].

use marchgen_faults::{AdfKind, FaultModel};
use marchgen_model::Bit;

/// The behavioural interface a March engine drives.
pub trait MemoryBehavior {
    /// Number of cells.
    fn len(&self) -> usize;

    /// `true` for a zero-cell memory (never constructed here).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes `value` at `addr`.
    fn write(&mut self, addr: usize, value: Bit);

    /// Reads `addr`, returning what the device actually outputs.
    fn read(&mut self, addr: usize) -> Bit;

    /// The wait period `T` (data-retention decay happens here).
    fn delay(&mut self);
}

/// A fault-free memory with a concrete power-up pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoodMemory {
    cells: Vec<Bit>,
}

impl GoodMemory {
    /// Creates a memory with the given power-up contents.
    #[must_use]
    pub fn new(cells: Vec<Bit>) -> GoodMemory {
        GoodMemory { cells }
    }

    /// Creates an `n`-cell memory with every cell at `fill`.
    #[must_use]
    pub fn filled(n: usize, fill: Bit) -> GoodMemory {
        GoodMemory {
            cells: vec![fill; n],
        }
    }

    /// Current content of `addr`.
    #[must_use]
    pub fn get(&self, addr: usize) -> Bit {
        self.cells[addr]
    }
}

impl MemoryBehavior for GoodMemory {
    fn len(&self) -> usize {
        self.cells.len()
    }

    fn write(&mut self, addr: usize, value: Bit) {
        self.cells[addr] = value;
    }

    fn read(&mut self, addr: usize) -> Bit {
        self.cells[addr]
    }

    fn delay(&mut self) {}
}

/// Where a fault instance sits in the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteCells {
    /// A single-cell fault at this address.
    Single(usize),
    /// A two-cell fault: the aggressor (sensitizing) and victim
    /// (corrupted) addresses. Any address order — both `a < v` and
    /// `a > v` instances exist in a real array.
    Pair {
        /// Sensitizing cell.
        aggressor: usize,
        /// Corrupted cell.
        victim: usize,
    },
}

impl SiteCells {
    /// Every address the site involves.
    #[must_use]
    pub fn addresses(&self) -> Vec<usize> {
        match *self {
            SiteCells::Single(c) => vec![c],
            SiteCells::Pair { aggressor, victim } => vec![aggressor, victim],
        }
    }
}

/// A memory with exactly one injected fault instance.
///
/// The semantics mirror the behavioural definitions of the fault catalog
/// (and, for pair faults, the two-cell machines of
/// `marchgen_faults::catalog` — an agreement that is property-tested).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultyMemory {
    cells: Vec<Bit>,
    model: FaultModel,
    site: SiteCells,
    /// Sense-amplifier latch for stuck-open faults: holds the value of
    /// the last read performed on *any* address.
    latch: Bit,
}

impl FaultyMemory {
    /// Creates a faulty memory with the given power-up contents and latch
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if the site addresses are out of range, coincide for a pair
    /// fault, or the site shape does not match the model
    /// (single-cell model with a pair site or vice versa).
    #[must_use]
    pub fn new(cells: Vec<Bit>, model: FaultModel, site: SiteCells, latch: Bit) -> FaultyMemory {
        match site {
            SiteCells::Single(c) => {
                assert!(c < cells.len(), "site address out of range");
                assert!(!model.is_pair_fault(), "{model} needs a pair site");
            }
            SiteCells::Pair { aggressor, victim } => {
                assert!(aggressor < cells.len() && victim < cells.len());
                assert_ne!(aggressor, victim, "pair site cells must differ");
                assert!(model.is_pair_fault(), "{model} needs a single-cell site");
            }
        }
        let mut mem = FaultyMemory {
            cells,
            model,
            site,
            latch,
        };
        mem.power_up();
        mem
    }

    /// Applies power-up consequences of the fault (stuck cells hold their
    /// stuck value from the start).
    fn power_up(&mut self) {
        if let (FaultModel::StuckAt(v), SiteCells::Single(c)) = (self.model, self.site) {
            self.cells[c] = v;
        }
        self.apply_state_coupling();
    }

    fn pair(&self) -> Option<(usize, usize)> {
        match self.site {
            SiteCells::Pair { aggressor, victim } => Some((aggressor, victim)),
            SiteCells::Single(_) => None,
        }
    }

    fn single(&self) -> Option<usize> {
        match self.site {
            SiteCells::Single(c) => Some(c),
            SiteCells::Pair { .. } => None,
        }
    }

    /// CFst is a *condition*, not an event: enforce it after every
    /// operation.
    fn apply_state_coupling(&mut self) {
        if let (FaultModel::CouplingState(s, f), Some((a, v))) = (self.model, self.pair()) {
            if self.cells[a] == s {
                self.cells[v] = f;
            }
        }
    }

    /// Reinitializes the memory in place for a new scenario: the cell
    /// array is overwritten with `pattern`, the latch with `latch`, and
    /// power-up consequences are re-applied. Equivalent to constructing a
    /// fresh [`FaultyMemory`] with the same model and site, without the
    /// per-scenario allocation.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` has a different length than the memory.
    pub fn reset(&mut self, pattern: &[Bit], latch: Bit) {
        assert_eq!(pattern.len(), self.cells.len(), "pattern size mismatch");
        self.cells.copy_from_slice(pattern);
        self.latch = latch;
        self.power_up();
    }

    /// The injected model.
    #[must_use]
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The injected site.
    #[must_use]
    pub fn site(&self) -> SiteCells {
        self.site
    }

    /// Direct view of a cell's stored value, without the read-path fault
    /// effects (used by the linked-fault composition).
    #[must_use]
    pub fn peek(&self, addr: usize) -> Bit {
        self.cells[addr]
    }

    /// Directly sets a cell's stored value, re-applying the invariants
    /// the fault imposes on storage (stuck cells stay stuck, state
    /// coupling re-asserts its condition). Used by the linked-fault
    /// composition to mirror the other fault's corruption.
    pub fn poke(&mut self, addr: usize, value: Bit) {
        self.cells[addr] = value;
        if let (FaultModel::StuckAt(v), SiteCells::Single(c)) = (self.model, self.site) {
            if c == addr {
                self.cells[addr] = v;
            }
        }
        self.apply_state_coupling();
    }
}

impl MemoryBehavior for FaultyMemory {
    fn len(&self) -> usize {
        self.cells.len()
    }

    fn write(&mut self, addr: usize, value: Bit) {
        match self.model {
            FaultModel::StuckAt(v) => {
                if self.single() == Some(addr) {
                    self.cells[addr] = v; // writes cannot move a stuck cell
                } else {
                    self.cells[addr] = value;
                }
            }
            FaultModel::Transition(dir) => {
                let blocked = self.single() == Some(addr)
                    && self.cells[addr] == dir.from_value()
                    && value == dir.to_value();
                if !blocked {
                    self.cells[addr] = value;
                }
            }
            FaultModel::StuckOpen => {
                if self.single() != Some(addr) {
                    self.cells[addr] = value;
                } // writes to the open cell are lost
            }
            FaultModel::AddressDecoder(AdfKind::Write) => {
                self.cells[addr] = value;
                if let Some((a, v)) = self.pair() {
                    if addr == a {
                        self.cells[v] = value; // the decoder also selects the victim
                    }
                }
            }
            FaultModel::CouplingInversion(dir) => {
                let trigger = self.pair().is_some_and(|(a, _)| addr == a)
                    && self.cells[addr] == dir.from_value()
                    && value == dir.to_value();
                self.cells[addr] = value;
                if trigger {
                    let (_, v) = self.pair().expect("pair fault");
                    self.cells[v] = self.cells[v].flip();
                }
            }
            FaultModel::CouplingIdempotent(dir, f) => {
                let trigger = self.pair().is_some_and(|(a, _)| addr == a)
                    && self.cells[addr] == dir.from_value()
                    && value == dir.to_value();
                self.cells[addr] = value;
                if trigger {
                    let (_, v) = self.pair().expect("pair fault");
                    self.cells[v] = f;
                }
            }
            _ => self.cells[addr] = value,
        }
        self.apply_state_coupling();
    }

    fn read(&mut self, addr: usize) -> Bit {
        let out = match self.model {
            FaultModel::StuckOpen if self.single() == Some(addr) => self.latch,
            FaultModel::AddressDecoder(AdfKind::Read) => match self.pair() {
                Some((a, v)) if addr == a => self.cells[v],
                _ => self.cells[addr],
            },
            FaultModel::ReadDestructive(x)
                if self.single() == Some(addr) && self.cells[addr] == x =>
            {
                self.cells[addr] = x.flip();
                x.flip()
            }
            FaultModel::DeceptiveReadDestructive(x)
                if self.single() == Some(addr) && self.cells[addr] == x =>
            {
                self.cells[addr] = x.flip();
                x
            }
            FaultModel::IncorrectRead(x)
                if self.single() == Some(addr) && self.cells[addr] == x =>
            {
                x.flip()
            }
            _ => self.cells[addr],
        };
        self.latch = out;
        self.apply_state_coupling();
        out
    }

    fn delay(&mut self) {
        if let (FaultModel::DataRetention(x), Some(c)) = (self.model, self.single()) {
            if self.cells[c] == x {
                self.cells[c] = x.flip();
            }
        }
        self.apply_state_coupling();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::TransitionDir;

    fn zeros(n: usize) -> Vec<Bit> {
        vec![Bit::Zero; n]
    }

    #[test]
    fn good_memory_roundtrip() {
        let mut m = GoodMemory::filled(4, Bit::Zero);
        m.write(2, Bit::One);
        assert_eq!(m.read(2), Bit::One);
        assert_eq!(m.read(0), Bit::Zero);
        m.delay();
        assert_eq!(m.get(2), Bit::One);
    }

    #[test]
    fn stuck_at_ignores_writes() {
        let mut m = FaultyMemory::new(
            zeros(3),
            FaultModel::StuckAt(Bit::Zero),
            SiteCells::Single(1),
            Bit::Zero,
        );
        m.write(1, Bit::One);
        assert_eq!(m.read(1), Bit::Zero);
        m.write(0, Bit::One);
        assert_eq!(m.read(0), Bit::One);
    }

    #[test]
    fn transition_fault_blocks_one_direction() {
        let mut m = FaultyMemory::new(
            zeros(2),
            FaultModel::Transition(TransitionDir::Up),
            SiteCells::Single(0),
            Bit::Zero,
        );
        m.write(0, Bit::One); // 0→1 blocked
        assert_eq!(m.read(0), Bit::Zero);
        // a cell that made it to 1 by other means can go down fine
        let mut m = FaultyMemory::new(
            vec![Bit::One, Bit::Zero],
            FaultModel::Transition(TransitionDir::Up),
            SiteCells::Single(0),
            Bit::Zero,
        );
        m.write(0, Bit::Zero);
        assert_eq!(m.read(0), Bit::Zero);
        m.write(0, Bit::One); // now blocked again
        assert_eq!(m.read(0), Bit::Zero);
    }

    #[test]
    fn stuck_open_returns_latch() {
        let mut m = FaultyMemory::new(
            zeros(3),
            FaultModel::StuckOpen,
            SiteCells::Single(1),
            Bit::One, // adversarial power-up latch
        );
        assert_eq!(m.read(1), Bit::One, "open cell reads the latch");
        m.write(0, Bit::Zero);
        assert_eq!(m.read(0), Bit::Zero); // latch now 0
        m.write(1, Bit::One); // lost
        assert_eq!(m.read(1), Bit::Zero, "latch still holds the previous read");
    }

    #[test]
    fn adf_write_reaches_victim() {
        let mut m = FaultyMemory::new(
            zeros(4),
            FaultModel::AddressDecoder(AdfKind::Write),
            SiteCells::Pair {
                aggressor: 2,
                victim: 0,
            },
            Bit::Zero,
        );
        m.write(0, Bit::One);
        m.write(2, Bit::Zero);
        assert_eq!(m.read(0), Bit::Zero, "write to 2 also cleared 0");
    }

    #[test]
    fn adf_read_returns_other_cell() {
        let mut m = FaultyMemory::new(
            zeros(4),
            FaultModel::AddressDecoder(AdfKind::Read),
            SiteCells::Pair {
                aggressor: 1,
                victim: 3,
            },
            Bit::Zero,
        );
        m.write(3, Bit::One);
        m.write(1, Bit::Zero);
        assert_eq!(m.read(1), Bit::One, "read of 1 is routed to 3");
    }

    #[test]
    fn cfid_forces_victim() {
        let mut m = FaultyMemory::new(
            zeros(3),
            FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::One),
            SiteCells::Pair {
                aggressor: 0,
                victim: 2,
            },
            Bit::Zero,
        );
        m.write(0, Bit::One); // ↑ on the aggressor
        assert_eq!(m.read(2), Bit::One, "victim forced to 1");
        // Re-writing 1 over 1 is not a transition: victim stays.
        m.write(2, Bit::Zero);
        m.write(0, Bit::One);
        assert_eq!(m.read(2), Bit::Zero);
    }

    #[test]
    fn cfin_flips_victim() {
        let mut m = FaultyMemory::new(
            vec![Bit::Zero, Bit::One],
            FaultModel::CouplingInversion(TransitionDir::Up),
            SiteCells::Pair {
                aggressor: 0,
                victim: 1,
            },
            Bit::Zero,
        );
        m.write(0, Bit::One);
        assert_eq!(m.read(1), Bit::Zero);
        m.write(0, Bit::Zero);
        m.write(0, Bit::One);
        assert_eq!(m.read(1), Bit::One, "flips again on the next ↑");
    }

    #[test]
    fn cfst_is_a_continuous_condition() {
        let mut m = FaultyMemory::new(
            zeros(2),
            FaultModel::CouplingState(Bit::One, Bit::Zero),
            SiteCells::Pair {
                aggressor: 0,
                victim: 1,
            },
            Bit::Zero,
        );
        m.write(0, Bit::One); // condition active
        m.write(1, Bit::One); // cannot stick
        assert_eq!(m.read(1), Bit::Zero);
        m.write(0, Bit::Zero); // condition released
        m.write(1, Bit::One);
        assert_eq!(m.read(1), Bit::One);
    }

    #[test]
    fn read_fault_family() {
        // RDF: wrong value, cell flipped.
        let mut m = FaultyMemory::new(
            zeros(1),
            FaultModel::ReadDestructive(Bit::Zero),
            SiteCells::Single(0),
            Bit::Zero,
        );
        assert_eq!(m.read(0), Bit::One);
        assert_eq!(m.read(0), Bit::One, "cell now really holds 1");
        // DRDF: correct value, cell flipped.
        let mut m = FaultyMemory::new(
            zeros(1),
            FaultModel::DeceptiveReadDestructive(Bit::Zero),
            SiteCells::Single(0),
            Bit::Zero,
        );
        assert_eq!(m.read(0), Bit::Zero);
        assert_eq!(m.read(0), Bit::One, "second read sees the flip");
        // IRF: wrong value, cell intact.
        let mut m = FaultyMemory::new(
            zeros(1),
            FaultModel::IncorrectRead(Bit::Zero),
            SiteCells::Single(0),
            Bit::Zero,
        );
        assert_eq!(m.read(0), Bit::One);
        assert_eq!(m.read(0), Bit::One, "every read of 0 lies");
        m.write(0, Bit::One);
        assert_eq!(m.read(0), Bit::One, "reads of 1 are fine");
    }

    #[test]
    fn data_retention_decays_on_delay() {
        let mut m = FaultyMemory::new(
            vec![Bit::One],
            FaultModel::DataRetention(Bit::One),
            SiteCells::Single(0),
            Bit::Zero,
        );
        assert_eq!(m.read(0), Bit::One);
        m.delay();
        assert_eq!(m.read(0), Bit::Zero);
    }

    #[test]
    #[should_panic(expected = "pair site")]
    fn site_shape_is_validated() {
        let _ = FaultyMemory::new(
            zeros(2),
            FaultModel::CouplingInversion(TransitionDir::Up),
            SiteCells::Single(0),
            Bit::Zero,
        );
    }
}
