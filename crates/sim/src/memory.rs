//! Behavioural memories: the fault-free array and the single-fault
//! injected array implementing every [`FaultModel`].
//!
//! [`FaultyMemory`] is a *generic interpreter* over the declarative
//! [`FaultBehavior`] rule table produced by
//! [`marchgen_faults::lowering::behavior`] — it contains no per-variant
//! fault knowledge of its own. The tests below pin the interpreted
//! semantics against the behavioural definitions of the catalog.

use marchgen_faults::{
    lowering, FaultBehavior, FaultModel, ReadOutput, Role, StoreEffect, WriteEffect,
};
use marchgen_model::Bit;

/// The behavioural interface a March engine drives.
pub trait MemoryBehavior {
    /// Number of cells.
    fn len(&self) -> usize;

    /// `true` for a zero-cell memory (never constructed here).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes `value` at `addr`.
    fn write(&mut self, addr: usize, value: Bit);

    /// Reads `addr`, returning what the device actually outputs.
    fn read(&mut self, addr: usize) -> Bit;

    /// The wait period `T` (data-retention decay happens here).
    fn delay(&mut self);
}

/// A fault-free memory with a concrete power-up pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoodMemory {
    cells: Vec<Bit>,
}

impl GoodMemory {
    /// Creates a memory with the given power-up contents.
    #[must_use]
    pub fn new(cells: Vec<Bit>) -> GoodMemory {
        GoodMemory { cells }
    }

    /// Creates an `n`-cell memory with every cell at `fill`.
    #[must_use]
    pub fn filled(n: usize, fill: Bit) -> GoodMemory {
        GoodMemory {
            cells: vec![fill; n],
        }
    }

    /// Current content of `addr`.
    #[must_use]
    pub fn get(&self, addr: usize) -> Bit {
        self.cells[addr]
    }
}

impl MemoryBehavior for GoodMemory {
    fn len(&self) -> usize {
        self.cells.len()
    }

    fn write(&mut self, addr: usize, value: Bit) {
        self.cells[addr] = value;
    }

    fn read(&mut self, addr: usize) -> Bit {
        self.cells[addr]
    }

    fn delay(&mut self) {}
}

/// Where a fault instance sits in the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteCells {
    /// A single-cell fault at this address.
    Single(usize),
    /// A two-cell fault: the aggressor (sensitizing) and victim
    /// (corrupted) addresses. Any address order — both `a < v` and
    /// `a > v` instances exist in a real array.
    Pair {
        /// Sensitizing cell.
        aggressor: usize,
        /// Corrupted cell.
        victim: usize,
    },
}

impl SiteCells {
    /// Every address the site involves.
    #[must_use]
    pub fn addresses(&self) -> Vec<usize> {
        match *self {
            SiteCells::Single(c) => vec![c],
            SiteCells::Pair { aggressor, victim } => vec![aggressor, victim],
        }
    }
}

/// A memory with exactly one injected fault instance.
///
/// The semantics mirror the behavioural definitions of the fault catalog
/// (and, for pair faults, the two-cell machines of
/// `marchgen_faults::catalog` — an agreement that is property-tested).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultyMemory {
    cells: Vec<Bit>,
    model: FaultModel,
    behavior: FaultBehavior,
    site: SiteCells,
    /// Sense-amplifier latch for stuck-open faults: holds the value of
    /// the last read performed on *any* address.
    latch: Bit,
    /// Operation history for dynamic faults: the immediately preceding
    /// operation, when it was a write (address, value). Cleared by any
    /// read or delay.
    last_write: Option<(usize, Bit)>,
}

impl FaultyMemory {
    /// Creates a faulty memory with the given power-up contents and latch
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if the site addresses are out of range, coincide for a pair
    /// fault, or the site shape does not match the model
    /// (single-cell model with a pair site or vice versa).
    #[must_use]
    pub fn new(cells: Vec<Bit>, model: FaultModel, site: SiteCells, latch: Bit) -> FaultyMemory {
        match site {
            SiteCells::Single(c) => {
                assert!(c < cells.len(), "site address out of range");
                assert!(!model.is_pair_fault(), "{model} needs a pair site");
            }
            SiteCells::Pair { aggressor, victim } => {
                assert!(aggressor < cells.len() && victim < cells.len());
                assert_ne!(aggressor, victim, "pair site cells must differ");
                assert!(model.is_pair_fault(), "{model} needs a single-cell site");
            }
        }
        let mut mem = FaultyMemory {
            cells,
            model,
            behavior: lowering::behavior(model),
            site,
            latch,
            last_write: None,
        };
        mem.power_up();
        mem
    }

    /// Applies power-up consequences of the fault (stuck cells hold their
    /// stuck value from the start).
    fn power_up(&mut self) {
        if let (Some(v), Some(c)) = (self.behavior.powerup_force, self.single()) {
            self.cells[c] = v;
        }
        self.apply_invariant();
    }

    fn pair(&self) -> Option<(usize, usize)> {
        match self.site {
            SiteCells::Pair { aggressor, victim } => Some((aggressor, victim)),
            SiteCells::Single(_) => None,
        }
    }

    fn single(&self) -> Option<usize> {
        match self.site {
            SiteCells::Single(c) => Some(c),
            SiteCells::Pair { .. } => None,
        }
    }

    /// State coupling is a *condition*, not an event: enforce the
    /// behaviour's invariant after every operation.
    fn apply_invariant(&mut self) {
        if let (Some(inv), Some((a, v))) = (self.behavior.invariant, self.pair()) {
            if self.cells[a] == inv.when {
                self.cells[v] = inv.force;
            }
        }
    }

    /// The address a rule role resolves to on this site.
    fn role_addr(&self, role: Role) -> Option<usize> {
        match role {
            Role::Single => self.single(),
            Role::Aggressor => self.pair().map(|(a, _)| a),
        }
    }

    /// Reinitializes the memory in place for a new scenario: the cell
    /// array is overwritten with `pattern`, the latch with `latch`, and
    /// power-up consequences are re-applied. Equivalent to constructing a
    /// fresh [`FaultyMemory`] with the same model and site, without the
    /// per-scenario allocation.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` has a different length than the memory.
    pub fn reset(&mut self, pattern: &[Bit], latch: Bit) {
        assert_eq!(pattern.len(), self.cells.len(), "pattern size mismatch");
        self.cells.copy_from_slice(pattern);
        self.latch = latch;
        self.last_write = None;
        self.power_up();
    }

    /// The injected model.
    #[must_use]
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The injected site.
    #[must_use]
    pub fn site(&self) -> SiteCells {
        self.site
    }

    /// Direct view of a cell's stored value, without the read-path fault
    /// effects (used by the linked-fault composition).
    #[must_use]
    pub fn peek(&self, addr: usize) -> Bit {
        self.cells[addr]
    }

    /// Directly sets a cell's stored value, re-applying the invariants
    /// the fault imposes on storage (stuck cells stay stuck, state
    /// coupling re-asserts its condition). Used by the linked-fault
    /// composition to mirror the other fault's corruption.
    pub fn poke(&mut self, addr: usize, value: Bit) {
        self.cells[addr] = value;
        if let (Some(v), Some(c)) = (self.behavior.powerup_force, self.single()) {
            if c == addr {
                self.cells[addr] = v;
            }
        }
        self.apply_invariant();
    }
}

impl MemoryBehavior for FaultyMemory {
    fn len(&self) -> usize {
        self.cells.len()
    }

    fn write(&mut self, addr: usize, value: Bit) {
        let pre = self.cells[addr];
        // Pass 1: rules on the written cell itself (block / force).
        let mut blocked = false;
        let mut force: Option<Bit> = None;
        for ri in 0..self.behavior.write_rules.len() {
            let rule = self.behavior.write_rules[ri];
            if self.role_addr(rule.at) != Some(addr)
                || rule.value.is_some_and(|v| v != value)
                || rule.pre.is_some_and(|p| p != pre)
            {
                continue;
            }
            match rule.effect {
                WriteEffect::Block => blocked = true,
                WriteEffect::Force(v) => force = Some(v),
                WriteEffect::CopyToVictim
                | WriteEffect::FlipVictim
                | WriteEffect::ForceVictim(_) => {}
            }
        }
        if !blocked {
            self.cells[addr] = force.unwrap_or(value);
        }
        // Pass 2: coupled-victim effects, armed on the *pre-write*
        // content of the aggressor (re-writing 1 over 1 is not a
        // transition), applied after the aggressor's own store.
        for ri in 0..self.behavior.write_rules.len() {
            let rule = self.behavior.write_rules[ri];
            if self.role_addr(rule.at) != Some(addr)
                || rule.value.is_some_and(|v| v != value)
                || rule.pre.is_some_and(|p| p != pre)
            {
                continue;
            }
            let victim = match self.pair() {
                Some((_, v)) => v,
                None => continue,
            };
            match rule.effect {
                WriteEffect::CopyToVictim => self.cells[victim] = value,
                WriteEffect::FlipVictim => self.cells[victim] = self.cells[victim].flip(),
                WriteEffect::ForceVictim(f) => self.cells[victim] = f,
                WriteEffect::Block | WriteEffect::Force(_) => {}
            }
        }
        self.last_write = Some((addr, value));
        self.apply_invariant();
    }

    fn read(&mut self, addr: usize) -> Bit {
        let cur = self.cells[addr];
        let mut out = cur;
        for ri in 0..self.behavior.read_rules.len() {
            let rule = self.behavior.read_rules[ri];
            if self.role_addr(rule.at) != Some(addr)
                || rule.holds.is_some_and(|h| h != cur)
                || rule
                    .after_write
                    .is_some_and(|x| self.last_write != Some((addr, x)))
            {
                continue;
            }
            out = match rule.output {
                ReadOutput::Stored => cur,
                ReadOutput::Complement => cur.flip(),
                ReadOutput::Latch => self.latch,
                ReadOutput::Victim => {
                    let (_, v) = self.pair().expect("victim output needs a pair site");
                    self.cells[v]
                }
            };
            if rule.store == StoreEffect::Flip {
                self.cells[addr] = cur.flip();
            }
            break; // first armed rule wins
        }
        self.last_write = None;
        self.latch = out;
        self.apply_invariant();
        out
    }

    fn delay(&mut self) {
        if let (Some(x), Some(c)) = (self.behavior.delay_flip, self.single()) {
            if self.cells[c] == x {
                self.cells[c] = x.flip();
            }
        }
        self.last_write = None;
        self.apply_invariant();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::{AdfKind, TransitionDir};

    fn zeros(n: usize) -> Vec<Bit> {
        vec![Bit::Zero; n]
    }

    #[test]
    fn good_memory_roundtrip() {
        let mut m = GoodMemory::filled(4, Bit::Zero);
        m.write(2, Bit::One);
        assert_eq!(m.read(2), Bit::One);
        assert_eq!(m.read(0), Bit::Zero);
        m.delay();
        assert_eq!(m.get(2), Bit::One);
    }

    #[test]
    fn stuck_at_ignores_writes() {
        let mut m = FaultyMemory::new(
            zeros(3),
            FaultModel::StuckAt(Bit::Zero),
            SiteCells::Single(1),
            Bit::Zero,
        );
        m.write(1, Bit::One);
        assert_eq!(m.read(1), Bit::Zero);
        m.write(0, Bit::One);
        assert_eq!(m.read(0), Bit::One);
    }

    #[test]
    fn transition_fault_blocks_one_direction() {
        let mut m = FaultyMemory::new(
            zeros(2),
            FaultModel::Transition(TransitionDir::Up),
            SiteCells::Single(0),
            Bit::Zero,
        );
        m.write(0, Bit::One); // 0→1 blocked
        assert_eq!(m.read(0), Bit::Zero);
        // a cell that made it to 1 by other means can go down fine
        let mut m = FaultyMemory::new(
            vec![Bit::One, Bit::Zero],
            FaultModel::Transition(TransitionDir::Up),
            SiteCells::Single(0),
            Bit::Zero,
        );
        m.write(0, Bit::Zero);
        assert_eq!(m.read(0), Bit::Zero);
        m.write(0, Bit::One); // now blocked again
        assert_eq!(m.read(0), Bit::Zero);
    }

    #[test]
    fn stuck_open_returns_latch() {
        let mut m = FaultyMemory::new(
            zeros(3),
            FaultModel::StuckOpen,
            SiteCells::Single(1),
            Bit::One, // adversarial power-up latch
        );
        assert_eq!(m.read(1), Bit::One, "open cell reads the latch");
        m.write(0, Bit::Zero);
        assert_eq!(m.read(0), Bit::Zero); // latch now 0
        m.write(1, Bit::One); // lost
        assert_eq!(m.read(1), Bit::Zero, "latch still holds the previous read");
    }

    #[test]
    fn adf_write_reaches_victim() {
        let mut m = FaultyMemory::new(
            zeros(4),
            FaultModel::AddressDecoder(AdfKind::Write),
            SiteCells::Pair {
                aggressor: 2,
                victim: 0,
            },
            Bit::Zero,
        );
        m.write(0, Bit::One);
        m.write(2, Bit::Zero);
        assert_eq!(m.read(0), Bit::Zero, "write to 2 also cleared 0");
    }

    #[test]
    fn adf_read_returns_other_cell() {
        let mut m = FaultyMemory::new(
            zeros(4),
            FaultModel::AddressDecoder(AdfKind::Read),
            SiteCells::Pair {
                aggressor: 1,
                victim: 3,
            },
            Bit::Zero,
        );
        m.write(3, Bit::One);
        m.write(1, Bit::Zero);
        assert_eq!(m.read(1), Bit::One, "read of 1 is routed to 3");
    }

    #[test]
    fn cfid_forces_victim() {
        let mut m = FaultyMemory::new(
            zeros(3),
            FaultModel::CouplingIdempotent(TransitionDir::Up, Bit::One),
            SiteCells::Pair {
                aggressor: 0,
                victim: 2,
            },
            Bit::Zero,
        );
        m.write(0, Bit::One); // ↑ on the aggressor
        assert_eq!(m.read(2), Bit::One, "victim forced to 1");
        // Re-writing 1 over 1 is not a transition: victim stays.
        m.write(2, Bit::Zero);
        m.write(0, Bit::One);
        assert_eq!(m.read(2), Bit::Zero);
    }

    #[test]
    fn cfin_flips_victim() {
        let mut m = FaultyMemory::new(
            vec![Bit::Zero, Bit::One],
            FaultModel::CouplingInversion(TransitionDir::Up),
            SiteCells::Pair {
                aggressor: 0,
                victim: 1,
            },
            Bit::Zero,
        );
        m.write(0, Bit::One);
        assert_eq!(m.read(1), Bit::Zero);
        m.write(0, Bit::Zero);
        m.write(0, Bit::One);
        assert_eq!(m.read(1), Bit::One, "flips again on the next ↑");
    }

    #[test]
    fn cfst_is_a_continuous_condition() {
        let mut m = FaultyMemory::new(
            zeros(2),
            FaultModel::CouplingState(Bit::One, Bit::Zero),
            SiteCells::Pair {
                aggressor: 0,
                victim: 1,
            },
            Bit::Zero,
        );
        m.write(0, Bit::One); // condition active
        m.write(1, Bit::One); // cannot stick
        assert_eq!(m.read(1), Bit::Zero);
        m.write(0, Bit::Zero); // condition released
        m.write(1, Bit::One);
        assert_eq!(m.read(1), Bit::One);
    }

    #[test]
    fn read_fault_family() {
        // RDF: wrong value, cell flipped.
        let mut m = FaultyMemory::new(
            zeros(1),
            FaultModel::ReadDestructive(Bit::Zero),
            SiteCells::Single(0),
            Bit::Zero,
        );
        assert_eq!(m.read(0), Bit::One);
        assert_eq!(m.read(0), Bit::One, "cell now really holds 1");
        // DRDF: correct value, cell flipped.
        let mut m = FaultyMemory::new(
            zeros(1),
            FaultModel::DeceptiveReadDestructive(Bit::Zero),
            SiteCells::Single(0),
            Bit::Zero,
        );
        assert_eq!(m.read(0), Bit::Zero);
        assert_eq!(m.read(0), Bit::One, "second read sees the flip");
        // IRF: wrong value, cell intact.
        let mut m = FaultyMemory::new(
            zeros(1),
            FaultModel::IncorrectRead(Bit::Zero),
            SiteCells::Single(0),
            Bit::Zero,
        );
        assert_eq!(m.read(0), Bit::One);
        assert_eq!(m.read(0), Bit::One, "every read of 0 lies");
        m.write(0, Bit::One);
        assert_eq!(m.read(0), Bit::One, "reads of 1 are fine");
    }

    #[test]
    fn data_retention_decays_on_delay() {
        let mut m = FaultyMemory::new(
            vec![Bit::One],
            FaultModel::DataRetention(Bit::One),
            SiteCells::Single(0),
            Bit::Zero,
        );
        assert_eq!(m.read(0), Bit::One);
        m.delay();
        assert_eq!(m.read(0), Bit::Zero);
    }

    #[test]
    fn dynamic_read_faults_need_the_write_read_sequence() {
        // dRDF<0>: w0 immediately followed by r0 flips and lies.
        let mut m = FaultyMemory::new(
            zeros(2),
            FaultModel::DynamicReadDestructive(Bit::Zero),
            SiteCells::Single(0),
            Bit::Zero,
        );
        assert_eq!(m.read(0), Bit::Zero, "plain read of 0 is fine");
        m.write(0, Bit::Zero);
        assert_eq!(m.read(0), Bit::One, "w0:r0 sequence excites the fault");
        assert_eq!(m.peek(0), Bit::One, "cell really flipped");
        // An intervening op on another address breaks the sequence.
        m.write(0, Bit::Zero);
        m.write(1, Bit::One);
        assert_eq!(m.read(0), Bit::Zero, "sequence broken by other write");
        // An intervening read breaks it too.
        m.write(0, Bit::Zero);
        let _ = m.read(1);
        assert_eq!(m.read(0), Bit::Zero, "sequence broken by a read");

        // dDRDF<1>: w1:r1 answers correctly but flips the cell.
        let mut m = FaultyMemory::new(
            zeros(1),
            FaultModel::DynamicDeceptiveReadDestructive(Bit::One),
            SiteCells::Single(0),
            Bit::Zero,
        );
        m.write(0, Bit::One);
        assert_eq!(m.read(0), Bit::One, "deceptive: first read is correct");
        assert_eq!(m.read(0), Bit::Zero, "second read sees the flip");

        // dIRF<0>: w0:r0 lies, cell intact.
        let mut m = FaultyMemory::new(
            zeros(1),
            FaultModel::DynamicIncorrectRead(Bit::Zero),
            SiteCells::Single(0),
            Bit::Zero,
        );
        m.write(0, Bit::Zero);
        assert_eq!(m.read(0), Bit::One, "w0:r0 lies");
        assert_eq!(m.read(0), Bit::Zero, "cell was never corrupted");
    }

    #[test]
    fn linked_idempotent_couples_both_directions() {
        // LCF<1> = CFid⟨↑,1⟩ ∘ CFid⟨↓,0⟩ on one aggressor/victim pair.
        let mut m = FaultyMemory::new(
            zeros(2),
            FaultModel::LinkedIdempotent(Bit::One),
            SiteCells::Pair {
                aggressor: 0,
                victim: 1,
            },
            Bit::Zero,
        );
        m.write(0, Bit::One); // ↑-link forces victim to 1
        assert_eq!(m.read(1), Bit::One);
        m.write(0, Bit::Zero); // ↓-link forces victim back to 0
        assert_eq!(m.read(1), Bit::Zero, "the two links mask each other");
        // Re-writing the held value is not a transition.
        m.write(1, Bit::One);
        m.write(0, Bit::Zero);
        assert_eq!(m.read(1), Bit::One);
    }

    #[test]
    #[should_panic(expected = "pair site")]
    fn site_shape_is_validated() {
        let _ = FaultyMemory::new(
            zeros(2),
            FaultModel::CouplingInversion(TransitionDir::Up),
            SiteCells::Single(0),
            Bit::Zero,
        );
    }
}
