//! Linked (interacting) fault pairs — the phenomenon behind March LR and
//! the paper's "more complex user-defined fault models" outlook: two
//! simultaneously present faults can **mask** each other, so a test that
//! detects each fault alone may miss their combination.
//!
//! The textbook example: two inversion couplings sharing a victim. An
//! ascending element `⇑(r0,w1)` triggers both aggressors before reaching
//! the victim; the victim flips twice and reads back clean.

use crate::engine::{power_up_patterns, resolution_vectors, run, FaultSite};
use crate::memory::{FaultyMemory, MemoryBehavior, SiteCells};
use marchgen_march::MarchTest;
use marchgen_model::Bit;

/// Two fault instances present at once. The first fault's behaviour is
/// applied before the second on every operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkedPair {
    /// First fault.
    pub a: FaultSite,
    /// Second fault.
    pub b: FaultSite,
}

/// A memory with two injected faults, composed operation-wise: every
/// access is replayed on both single-fault memories and the cell array
/// views are *reconciled* against the fault-free expectation — a cell
/// whose value deviates from what a fault-free memory would hold carries
/// the deviating fault's effect, and the reconciled value is mirrored
/// back into both views.
///
/// The composition is exact for pairs whose storage mechanisms do not
/// deviate on the *same cell in the same operation* (the classical
/// linked-fault setting). When both deviate at once, fault `a` wins —
/// arbitrary but fixed, and documented.
#[derive(Debug, Clone)]
pub struct LinkedMemory {
    cells: Vec<Bit>,
    a: FaultyMemory,
    b: FaultyMemory,
}

impl LinkedMemory {
    /// Creates a linked-fault memory with the given power-up contents.
    #[must_use]
    pub fn new(cells: Vec<Bit>, pair: &LinkedPair, latch: Bit) -> LinkedMemory {
        LinkedMemory {
            a: FaultyMemory::new(cells.clone(), pair.a.model, pair.a.cells, latch),
            b: FaultyMemory::new(cells.clone(), pair.b.model, pair.b.cells, latch),
            cells,
        }
    }

    /// Reconciles both views after an operation. `expected[c]` is the
    /// value a fault-free memory would hold at `c` after the operation.
    fn reconcile(&mut self, expected: &[Bit]) {
        for (addr, &want) in expected.iter().enumerate() {
            let pa = self.a.peek(addr);
            let pb = self.b.peek(addr);
            let next = if pa != want {
                pa // fault a's storage deviates here
            } else if pb != want {
                pb // fault b's storage deviates here
            } else {
                want
            };
            self.cells[addr] = next;
            self.a.poke(addr, next);
            self.b.poke(addr, next);
        }
    }

    /// The fault-free expectation after applying `op` to the current
    /// shared view.
    fn expectation(&self, write: Option<(usize, Bit)>) -> Vec<Bit> {
        let mut e = self.cells.clone();
        if let Some((addr, value)) = write {
            e[addr] = value;
        }
        e
    }
}

impl MemoryBehavior for LinkedMemory {
    fn len(&self) -> usize {
        self.cells.len()
    }

    fn write(&mut self, addr: usize, value: Bit) {
        let expected = self.expectation(Some((addr, value)));
        self.a.write(addr, value);
        self.b.write(addr, value);
        self.reconcile(&expected);
    }

    fn read(&mut self, addr: usize) -> Bit {
        let expected = self.expectation(None);
        let shared_before = self.cells[addr];
        let va = self.a.read(addr);
        let vb = self.b.read(addr);
        // A read either fault corrupts is corrupted; resolution is
        // against the pre-read shared view (sense-path deviation).
        let out = if va != shared_before {
            va
        } else if vb != shared_before {
            vb
        } else {
            shared_before
        };
        self.reconcile(&expected);
        out
    }

    fn delay(&mut self) {
        let expected = self.expectation(None);
        self.a.delay();
        self.b.delay();
        self.reconcile(&expected);
    }
}

/// Guaranteed detection of a linked pair: every scenario produces a
/// mismatching read.
#[must_use]
pub fn detects_linked(test: &MarchTest, pair: &LinkedPair, n: usize) -> bool {
    let mut patterns = power_up_patterns(&pair.a, n);
    for p in power_up_patterns(&pair.b, n) {
        if !patterns.contains(&p) {
            patterns.push(p);
        }
    }
    for pattern in patterns {
        for resolution in resolution_vectors(test) {
            let mut mem = LinkedMemory::new(pattern.clone(), pair, Bit::Zero);
            let records = run(test, &mut mem, &resolution);
            if records.iter().all(|r| !r.mismatch()) {
                return false;
            }
        }
    }
    true
}

/// Linked pairs of two instances of `model_a`/`model_b` sharing a victim
/// cell, with both aggressors on the same side — the classical masking
/// topology.
#[must_use]
pub fn shared_victim_pairs(
    model_a: marchgen_faults::FaultModel,
    model_b: marchgen_faults::FaultModel,
    n: usize,
) -> Vec<LinkedPair> {
    let mut pairs = Vec::new();
    for victim in 0..n {
        for a1 in 0..n {
            for a2 in 0..n {
                if a1 == a2 || a1 == victim || a2 == victim {
                    continue;
                }
                pairs.push(LinkedPair {
                    a: FaultSite {
                        model: model_a,
                        cells: SiteCells::Pair {
                            aggressor: a1,
                            victim,
                        },
                    },
                    b: FaultSite {
                        model: model_b,
                        cells: SiteCells::Pair {
                            aggressor: a2,
                            victim,
                        },
                    },
                });
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::{parse_fault_list, FaultModel, TransitionDir};
    use marchgen_march::known;

    fn cfin_up() -> FaultModel {
        FaultModel::CouplingInversion(TransitionDir::Up)
    }

    /// The masking phenomenon: March X detects every single CFin⟨↑⟩
    /// instance, yet some linked shared-victim pair escapes it.
    #[test]
    fn linked_cfin_masks_march_x() {
        let n = 4;
        let single = parse_fault_list("CFin<u>").unwrap();
        assert!(crate::coverage::covers_all(&known::march_x(), &single, n));
        let escaped = shared_victim_pairs(cfin_up(), cfin_up(), n)
            .into_iter()
            .any(|pair| !detects_linked(&known::march_x(), &pair, n));
        assert!(escaped, "expected a masked linked CFin pair under March X");
    }

    /// A single fault "linked" with itself degenerates to the plain
    /// single-fault behaviour.
    #[test]
    fn self_linked_pair_behaves_like_single() {
        let n = 4;
        let site = FaultSite {
            model: cfin_up(),
            cells: SiteCells::Pair {
                aggressor: 0,
                victim: 2,
            },
        };
        let pair = LinkedPair { a: site, b: site };
        assert_eq!(
            detects_linked(&known::march_x(), &pair, n),
            crate::engine::detects(&known::march_x(), &site, n)
        );
    }

    /// Linked stuck-at faults at different cells never mask each other.
    #[test]
    fn linked_saf_cannot_mask() {
        let n = 4;
        let t = known::mats();
        for c1 in 0..n {
            for c2 in 0..n {
                if c1 == c2 {
                    continue;
                }
                let pair = LinkedPair {
                    a: FaultSite {
                        model: FaultModel::StuckAt(Bit::Zero),
                        cells: SiteCells::Single(c1),
                    },
                    b: FaultSite {
                        model: FaultModel::StuckAt(Bit::One),
                        cells: SiteCells::Single(c2),
                    },
                };
                assert!(detects_linked(&t, &pair, n), "{pair:?}");
            }
        }
    }

    /// The classical impossibility result, reproduced: a linked pair of
    /// CFin⟨↑⟩ sharing a victim with both aggressors on the *same side*
    /// masks itself under **every** March test — the two inversions fire
    /// inside one sweep segment with no victim access in between. Pairs
    /// with aggressors on opposite sides are split by the victim visit
    /// and stay detectable.
    #[test]
    fn same_side_linked_cfin_is_march_untestable() {
        let n = 4;
        let same_side = |p: &LinkedPair| -> bool {
            let (
                SiteCells::Pair {
                    aggressor: a1,
                    victim,
                },
                SiteCells::Pair { aggressor: a2, .. },
            ) = (p.a.cells, p.b.cells)
            else {
                unreachable!("constructed as pairs")
            };
            (a1 < victim) == (a2 < victim)
        };
        for (name, test) in [
            ("March X", known::march_x()),
            ("March C-", known::march_c_minus()),
            ("March SS", known::march_ss()),
        ] {
            for pair in shared_victim_pairs(cfin_up(), cfin_up(), n) {
                let detected = detects_linked(&test, &pair, n);
                if same_side(&pair) {
                    assert!(
                        !detected,
                        "{name}: same-side pair {pair:?} unexpectedly detected"
                    );
                } else {
                    assert!(detected, "{name}: opposite-side pair {pair:?} escaped");
                }
            }
        }
    }
}
