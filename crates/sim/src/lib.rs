//! # marchgen-sim
//!
//! The **memory fault simulator** of paper Section 6: the oracle that
//! validates every generated March test.
//!
//! > *"All generated March Tests have been verified using an ad hoc
//! > memory fault simulator able to validate their correctness w.r.t.
//! > the target BFE list. The fault simulator is also used to check the
//! > non-redundancy of each generated March Test."*
//!
//! Components:
//!
//! * [`memory`] — the behavioural memory trait, the fault-free memory and
//!   the fault-injected memory covering every [`FaultModel`](marchgen_faults::FaultModel) (including
//!   the stuck-open sense-amplifier latch, which is not expressible as a
//!   two-cell Mealy override),
//! * [`engine`] — March execution over every address-order resolution of
//!   `⇕` elements and every relevant power-up pattern; a fault counts as
//!   **detected** only when every scenario produces at least one
//!   mismatching read (guaranteed detection),
//! * [`coverage`] — per-model site sweeps (`n·(n−1)` ordered pairs for
//!   coupling faults) and aggregated reports,
//! * [`bitsim`] — the bit-parallel sweep: up to 64 scenario lanes packed
//!   into one `u64` per memory word, exact-agreement verified against
//!   the scalar engine and exposed as [`BitSimVerifier`],
//! * [`widesim`] — the wide-lane sweep: `[u64; W]` lane blocks (W ∈
//!   {2,4,8}, auto-vectorized) carrying 128–512 scenario lanes per
//!   memory word, plus the deterministic shard plan behind the
//!   thread-fanned [`WideSimVerifier`],
//! * [`matrix`] — the Coverage Matrix over elementary blocks (Section 6),
//! * [`set_cover`] — exact set covering over the matrix: the paper's
//!   non-redundancy proof,
//! * [`redundancy`] — the operational double-check: no operation can be
//!   deleted without losing coverage.
//!
//! # Example
//!
//! ```
//! use marchgen_march::known;
//! use marchgen_faults::parse_fault_list;
//! use marchgen_sim::coverage::covers_all;
//!
//! let faults = parse_fault_list("SAF, TF, CFin, CFid").unwrap();
//! assert!(covers_all(&known::march_c_minus(), &faults, 6));
//! assert!(!covers_all(&known::mats(), &faults, 6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitsim;
pub mod coverage;
pub mod diagnosis;
pub mod engine;
pub mod linked;
pub mod matrix;
pub mod memory;
pub mod redundancy;
pub mod set_cover;
pub mod verify;
pub mod widesim;

pub use coverage::{coverage_report, covers_all, CoverageReport, ModelCoverage};
pub use engine::{detects, FaultSite};
pub use matrix::CoverageMatrix;
pub use memory::SiteCells;
pub use verify::{BitSimVerifier, SimVerifier, Verifier, VerifyRun, WideSimVerifier};
