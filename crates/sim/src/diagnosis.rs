//! Diagnostic analysis — the direction of the paper's reference \[6\]
//! (Niggemeyer, Redeker, Rudnick: *"Diagnostic Testing of Embedded
//! Memories based on Output Tracing"*): beyond detecting a fault, a March
//! test's **syndrome** (which reads fail, and where, relative to the
//! fault site) can identify *which* fault model is present.
//!
//! A syndrome here is the canonical-scenario fingerprint of a fault
//! site: for a fixed scenario suite (deterministic power-up patterns and
//! `⇕` resolutions), the set of per-cell operation indices whose reads
//! mismatch, together with the failing address's role (the site itself,
//! below it, above it). Sites of the same model at different addresses
//! map to the same *positional* syndrome, so syndromes classify
//! **models**, not addresses.

use crate::engine::{power_up_patterns, resolution_vectors, run, FaultSite};
use crate::memory::{FaultyMemory, SiteCells};
use marchgen_faults::FaultModel;
use marchgen_march::MarchTest;
use marchgen_model::Bit;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// The failing address's position relative to the fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailRole {
    /// The mismatch is at a site cell (the faulty/victim cell itself).
    AtSite,
    /// The mismatch is at a lower address than every site cell.
    Below,
    /// The mismatch is at a higher address than every site cell.
    Above,
    /// Anything else (between pair cells).
    Between,
}

/// A positional syndrome: the ordered set of `(op index, role)` fail
/// coordinates accumulated over the scenario suite.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Syndrome {
    entries: BTreeSet<(usize, FailRole)>,
}

impl Syndrome {
    /// `true` when no read ever failed (the fault escaped every
    /// scenario).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct fail coordinates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterates the fail coordinates.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, FailRole)> {
        self.entries.iter()
    }
}

impl fmt::Display for Syndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (k, (op, role)) in self.entries.iter().enumerate() {
            if k > 0 {
                f.write_str(", ")?;
            }
            let r = match role {
                FailRole::AtSite => "@",
                FailRole::Below => "<",
                FailRole::Above => ">",
                FailRole::Between => "~",
            };
            write!(f, "op{op}{r}")?;
        }
        f.write_str("}")
    }
}

fn role_of(addr: usize, cells: &SiteCells) -> FailRole {
    let addrs = cells.addresses();
    if addrs.contains(&addr) {
        FailRole::AtSite
    } else if addrs.iter().all(|&a| addr < a) {
        FailRole::Below
    } else if addrs.iter().all(|&a| addr > a) {
        FailRole::Above
    } else {
        FailRole::Between
    }
}

/// Computes the positional syndrome of one fault site under `test`.
#[must_use]
pub fn syndrome(test: &MarchTest, site: &FaultSite, n: usize) -> Syndrome {
    let mut entries = BTreeSet::new();
    let latches = latch_suite(site.model);
    for pattern in power_up_patterns(site, n) {
        for resolution in resolution_vectors(test) {
            for &latch in latches {
                let mut mem = FaultyMemory::new(pattern.clone(), site.model, site.cells, latch);
                for record in run(test, &mut mem, &resolution) {
                    if record.mismatch() {
                        entries.insert((record.op_index, role_of(record.addr, &site.cells)));
                    }
                }
            }
        }
    }
    Syndrome { entries }
}

fn latch_suite(model: FaultModel) -> &'static [Bit] {
    if marchgen_faults::lowering::behavior(model).uses_latch {
        &Bit::ALL
    } else {
        &[Bit::Zero]
    }
}

/// The canonical per-model syndrome: union over a fixed representative
/// site set (first cell / first ordered pair in both orders), so that
/// the classification is address-independent.
#[must_use]
pub fn model_syndrome(test: &MarchTest, model: FaultModel, n: usize) -> Syndrome {
    assert!(n >= 3, "diagnosis needs at least 3 cells");
    let sites: Vec<FaultSite> = if model.is_pair_fault() {
        vec![
            FaultSite {
                model,
                cells: SiteCells::Pair {
                    aggressor: 1,
                    victim: n - 2,
                },
            },
            FaultSite {
                model,
                cells: SiteCells::Pair {
                    aggressor: n - 2,
                    victim: 1,
                },
            },
        ]
    } else {
        vec![FaultSite {
            model,
            cells: SiteCells::Single(1),
        }]
    };
    let mut merged = Syndrome::default();
    for site in sites {
        merged.entries.extend(syndrome(test, &site, n).entries);
    }
    merged
}

/// The diagnosability report of a test over a set of fault models.
#[derive(Debug, Clone)]
pub struct DiagnosisReport {
    /// Model → syndrome.
    pub syndromes: Vec<(FaultModel, Syndrome)>,
    /// Groups of models sharing a syndrome (indistinguishable classes).
    pub classes: Vec<Vec<FaultModel>>,
}

impl DiagnosisReport {
    /// Diagnostic resolution: distinguishable classes / models (1.0 =
    /// every model identified uniquely).
    #[must_use]
    pub fn resolution(&self) -> f64 {
        if self.syndromes.is_empty() {
            return 1.0;
        }
        self.classes.len() as f64 / self.syndromes.len() as f64
    }

    /// `true` when every pair of models is told apart.
    #[must_use]
    pub fn fully_diagnostic(&self) -> bool {
        self.classes.iter().all(|c| c.len() == 1)
    }
}

impl fmt::Display for DiagnosisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "diagnosis: {} models, {} classes (resolution {:.2})",
            self.syndromes.len(),
            self.classes.len(),
            self.resolution()
        )?;
        for class in &self.classes {
            let names: Vec<String> = class.iter().map(|m| m.to_string()).collect();
            writeln!(f, "  [{}]", names.join(" = "))?;
        }
        Ok(())
    }
}

/// Builds the diagnosability report of `test` against `models`.
#[must_use]
pub fn diagnose(test: &MarchTest, models: &[FaultModel], n: usize) -> DiagnosisReport {
    let syndromes: Vec<(FaultModel, Syndrome)> = models
        .iter()
        .map(|&m| (m, model_syndrome(test, m, n)))
        .collect();
    let mut by_syndrome: BTreeMap<Syndrome, Vec<FaultModel>> = BTreeMap::new();
    for (m, s) in &syndromes {
        by_syndrome.entry(s.clone()).or_default().push(*m);
    }
    DiagnosisReport {
        syndromes,
        classes: by_syndrome.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::{parse_fault_list, TransitionDir};
    use marchgen_march::known;

    #[test]
    fn undetected_faults_have_empty_syndromes() {
        // MATS has no delay: a retention fault never manifests, so its
        // syndrome is empty. (TF↓ would be wrong here: MATS misses it
        // only in *some* scenarios, and syndromes record possible fails.)
        let s = model_syndrome(&known::mats(), FaultModel::DataRetention(Bit::One), 4);
        assert!(s.is_empty());
        let _ = TransitionDir::Up; // keep the import exercised
    }

    #[test]
    fn detected_faults_have_nonempty_syndromes() {
        let s = model_syndrome(&known::march_c_minus(), FaultModel::StuckAt(Bit::Zero), 4);
        assert!(!s.is_empty());
        assert!(s.to_string().contains("op"), "{s}");
    }

    #[test]
    fn sa0_and_sa1_are_distinguished_by_any_read_pair() {
        let report = diagnose(
            &known::mats(),
            &[
                FaultModel::StuckAt(Bit::Zero),
                FaultModel::StuckAt(Bit::One),
            ],
            4,
        );
        assert!(report.fully_diagnostic(), "{report}");
    }

    #[test]
    fn richer_tests_diagnose_no_worse() {
        let models = parse_fault_list("SAF, TF, CFid").unwrap();
        let small = diagnose(&known::mats_plus_plus(), &models, 4);
        let large = diagnose(&known::march_ss(), &models, 4);
        assert!(
            large.classes.len() >= small.classes.len(),
            "March SS ({}) vs MATS++ ({})",
            large.classes.len(),
            small.classes.len()
        );
    }

    #[test]
    fn syndromes_are_address_independent_for_single_faults() {
        let t = known::march_c_minus();
        let m = FaultModel::StuckAt(Bit::One);
        let a = syndrome(
            &t,
            &FaultSite {
                model: m,
                cells: SiteCells::Single(1),
            },
            4,
        );
        let b = syndrome(
            &t,
            &FaultSite {
                model: m,
                cells: SiteCells::Single(2),
            },
            4,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn report_display_lists_classes() {
        let models = parse_fault_list("SAF").unwrap();
        let report = diagnose(&known::mats(), &models, 4);
        let s = report.to_string();
        assert!(s.contains("classes"), "{s}");
    }
}
