//! Fault-model coverage sweeps and reports.

use crate::engine::{detects, FaultSite};
use marchgen_faults::FaultModel;
use marchgen_march::MarchTest;
use std::fmt;

/// Coverage of one fault model by one test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCoverage {
    /// The model swept.
    pub model: FaultModel,
    /// Instances simulated (`n` or `n·(n−1)`).
    pub total_sites: usize,
    /// Instances with guaranteed detection.
    pub detected_sites: usize,
    /// The escaped instances, if any.
    pub escapes: Vec<FaultSite>,
}

impl ModelCoverage {
    /// `true` when every instance is caught.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.detected_sites == self.total_sites
    }

    /// Detected fraction in percent.
    #[must_use]
    pub fn percent(&self) -> f64 {
        if self.total_sites == 0 {
            100.0
        } else {
            100.0 * self.detected_sites as f64 / self.total_sites as f64
        }
    }
}

impl fmt::Display for ModelCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}/{} ({:.0}%)",
            self.model,
            self.detected_sites,
            self.total_sites,
            self.percent()
        )
    }
}

/// Coverage of a whole fault list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Per-model results, in fault-list order.
    pub models: Vec<ModelCoverage>,
    /// Memory size used for the sweep.
    pub memory_size: usize,
}

impl CoverageReport {
    /// `true` when every model is fully covered.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.models.iter().all(ModelCoverage::complete)
    }

    /// Total instances simulated.
    #[must_use]
    pub fn total_sites(&self) -> usize {
        self.models.iter().map(|m| m.total_sites).sum()
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "coverage on {} cells:", self.memory_size)?;
        for m in &self.models {
            writeln!(f, "  {m}")?;
        }
        Ok(())
    }
}

/// Sweeps every instance of `model` in an `n`-cell memory.
#[must_use]
pub fn model_coverage(test: &MarchTest, model: FaultModel, n: usize) -> ModelCoverage {
    let sites = FaultSite::enumerate(model, n);
    let total_sites = sites.len();
    let mut escapes = Vec::new();
    for site in sites {
        if !detects(test, &site, n) {
            escapes.push(site);
        }
    }
    ModelCoverage {
        model,
        total_sites,
        detected_sites: total_sites - escapes.len(),
        escapes,
    }
}

/// Full report over a fault list.
#[must_use]
pub fn coverage_report(test: &MarchTest, models: &[FaultModel], n: usize) -> CoverageReport {
    CoverageReport {
        models: models.iter().map(|&m| model_coverage(test, m, n)).collect(),
        memory_size: n,
    }
}

/// `true` when `test` has guaranteed detection of every instance of every
/// listed model.
#[must_use]
pub fn covers_all(test: &MarchTest, models: &[FaultModel], n: usize) -> bool {
    models
        .iter()
        .all(|&m| model_coverage(test, m, n).complete())
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::parse_fault_list;
    use marchgen_march::known;

    /// The classical coverage table: each library test against the fault
    /// lists it is documented to cover (van de Goor).
    #[test]
    fn classical_coverage_claims() {
        let n = 4;
        let cases: Vec<(&str, MarchTest, &str)> = vec![
            ("MATS", known::mats(), "SAF"),
            ("MATS++", known::mats_plus_plus(), "SAF, TF"),
            ("March X", known::march_x(), "SAF, TF, CFin"),
            (
                "March C-",
                known::march_c_minus(),
                "SAF, TF, ADF, CFin, CFid, CFst",
            ),
            ("March Y", known::march_y(), "SAF, TF, CFin"),
            ("March B", known::march_b(), "SAF, TF, CFin"),
            (
                "March SS",
                known::march_ss(),
                "SAF, TF, CFin, CFid, CFst, RDF, DRDF, IRF",
            ),
            ("March G", known::march_g(), "SAF, TF, SOF, CFin, DRF"),
        ];
        for (name, test, faults) in cases {
            let models = parse_fault_list(faults).unwrap();
            let report = coverage_report(&test, &models, n);
            assert!(report.complete(), "{name} should cover {faults}:\n{report}");
        }
    }

    /// Negative controls: documented *gaps* of the classical tests.
    #[test]
    fn classical_coverage_gaps() {
        let n = 4;
        let gaps: Vec<(&str, MarchTest, &str)> = vec![
            ("MATS", known::mats(), "TF"),
            ("MATS+", known::mats_plus(), "TF"),
            ("MATS++", known::mats_plus_plus(), "CFin"),
            ("March X", known::march_x(), "CFid"),
            ("March C-", known::march_c_minus(), "SOF"),
            ("March C-", known::march_c_minus(), "DRF"),
        ];
        for (name, test, faults) in gaps {
            let models = parse_fault_list(faults).unwrap();
            assert!(
                !covers_all(&test, &models, n),
                "{name} unexpectedly covers {faults}"
            );
        }
    }

    #[test]
    fn report_accounting() {
        let models = parse_fault_list("SAF, CFin").unwrap();
        let report = coverage_report(&known::march_c_minus(), &models, 4);
        // SAF: 4 sites ×2 models; CFin: 12 ordered pairs ×2 directions.
        assert_eq!(report.total_sites(), 4 + 4 + 12 + 12);
        assert!(report.complete());
        let s = report.to_string();
        assert!(s.contains("SA0"), "{s}");
    }

    #[test]
    fn escapes_are_reported() {
        let models = parse_fault_list("TF").unwrap();
        let report = coverage_report(&known::mats(), &models, 4);
        assert!(!report.complete());
        let down = &report.models[1];
        assert!(!down.escapes.is_empty());
        assert!(down.percent() < 100.0);
    }
}
