//! The **Coverage Matrix** of paper Section 6.
//!
//! > *"Each March test is split into elementary blocks. An elementary
//! > block is a portion of March Test composed by a fault excitation and
//! > a fault observation. These blocks are used to build a Coverage
//! > Matrix (CM). The rows of the matrix represent the elementary blocks
//! > whereas the columns the target BFEs."*
//!
//! We identify an elementary block by its closing **observation**: each
//! read operation of the test (per-cell operation index) is one block,
//! the excitation being whatever preceding operations sensitized the
//! fault it catches. `CM[block][site] = 1` when that read exposes the
//! fault site in *every* execution scenario — i.e. the block alone
//! suffices. Columns that are only covered by different blocks in
//! different scenarios (possible with `⇕` elements) are recorded as
//! `scenario_split` and excluded from the set-covering statement, which
//! otherwise would understate coverage.

use crate::engine::{detecting_scenarios, FaultSite};
use crate::set_cover::SetCover;
use marchgen_faults::FaultModel;
use marchgen_march::{MarchOp, MarchTest};
use std::fmt;

/// The coverage matrix of a test against a set of fault sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageMatrix {
    /// Per-cell op indices of the blocks (the test's reads), row order.
    pub blocks: Vec<usize>,
    /// The fault sites, column order.
    pub sites: Vec<FaultSite>,
    /// `entries[row][col]`.
    pub entries: Vec<Vec<bool>>,
    /// Columns detected overall but by no single block across all
    /// scenarios.
    pub scenario_split: Vec<usize>,
    /// Columns not detected at all.
    pub uncovered: Vec<usize>,
}

impl CoverageMatrix {
    /// Builds the matrix for `test` against every instance of `models` in
    /// an `n`-cell memory.
    #[must_use]
    pub fn build(test: &MarchTest, models: &[FaultModel], n: usize) -> CoverageMatrix {
        let seq = test.per_cell_sequence();
        let blocks: Vec<usize> = seq
            .iter()
            .enumerate()
            .filter_map(|(k, op)| {
                if matches!(op, MarchOp::Read(_)) {
                    Some(k)
                } else {
                    None
                }
            })
            .collect();
        let sites: Vec<FaultSite> = models
            .iter()
            .flat_map(|&m| FaultSite::enumerate(m, n))
            .collect();
        let mut entries = vec![vec![false; sites.len()]; blocks.len()];
        let mut scenario_split = Vec::new();
        let mut uncovered = Vec::new();
        for (col, site) in sites.iter().enumerate() {
            let outcome = detecting_scenarios(test, site, n);
            if !outcome.all_detected {
                uncovered.push(col);
                continue;
            }
            // Blocks that mismatch in every scenario.
            let mut constant_blocks = Vec::new();
            for (row, &op_index) in blocks.iter().enumerate() {
                if outcome
                    .mismatch_ops
                    .iter()
                    .all(|ops| ops.contains(&op_index))
                {
                    constant_blocks.push(row);
                }
            }
            if constant_blocks.is_empty() {
                scenario_split.push(col);
            } else {
                for row in constant_blocks {
                    entries[row][col] = true;
                }
            }
        }
        CoverageMatrix {
            blocks,
            sites,
            entries,
            scenario_split,
            uncovered,
        }
    }

    /// `true` when every column has a one (after removing scenario-split
    /// columns, which are detected but not attributable to one block).
    #[must_use]
    pub fn all_columns_covered(&self) -> bool {
        self.uncovered.is_empty()
    }

    /// The set-covering instance over the attributable columns.
    #[must_use]
    pub fn to_set_cover(&self) -> SetCover {
        let attributable: Vec<usize> = (0..self.sites.len())
            .filter(|c| !self.scenario_split.contains(c) && !self.uncovered.contains(c))
            .collect();
        let remap: std::collections::HashMap<usize, usize> = attributable
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let sets = self
            .entries
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter_map(|(c, &v)| if v { remap.get(&c).copied() } else { None })
                    .collect()
            })
            .collect();
        SetCover::new(attributable.len(), sets)
    }

    /// The paper's non-redundancy statement: the minimum set cover needs
    /// *every* block that covers anything. Returns the verdict plus the
    /// minimum cover size and the number of useful blocks.
    #[must_use]
    pub fn non_redundancy(&self) -> NonRedundancy {
        let useful_blocks = self
            .entries
            .iter()
            .filter(|row| row.iter().any(|&v| v))
            .count();
        let minimum = self.to_set_cover().minimum().map_or(0, |c| c.len());
        NonRedundancy {
            minimum_cover: minimum,
            useful_blocks,
            non_redundant: minimum == useful_blocks && self.uncovered.is_empty(),
        }
    }
}

/// Result of the set-covering non-redundancy check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonRedundancy {
    /// Minimum number of blocks covering every attributable column.
    pub minimum_cover: usize,
    /// Blocks that cover at least one column.
    pub useful_blocks: usize,
    /// The paper's verdict: minimum cover = all useful blocks.
    pub non_redundant: bool,
}

impl fmt::Display for CoverageMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CM: {} blocks × {} sites ({} split, {} uncovered)",
            self.blocks.len(),
            self.sites.len(),
            self.scenario_split.len(),
            self.uncovered.len()
        )?;
        for (row, ops) in self.blocks.iter().enumerate() {
            write!(f, "  block@op{ops:<3} ")?;
            for v in &self.entries[row] {
                f.write_str(if *v { "1" } else { "." })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::parse_fault_list;
    use marchgen_march::known;

    #[test]
    fn mats_matrix_for_saf_is_non_redundant() {
        let models = parse_fault_list("SAF").unwrap();
        let cm = CoverageMatrix::build(&known::mats(), &models, 3);
        assert!(cm.all_columns_covered());
        // MATS has two reads; SA0 needs r1, SA1 needs r0: both blocks used.
        let verdict = cm.non_redundancy();
        assert_eq!(verdict.useful_blocks, 2);
        assert!(verdict.non_redundant, "{cm}");
    }

    #[test]
    fn march_c_has_a_redundant_block_for_basic_faults() {
        // March C (11n) = March C− plus a historically redundant ⇕(r0):
        // for the classic five-model list the set covering needs fewer
        // blocks than the useful-block count of March C−'s equivalent
        // coverage... at minimum, the verdict must not be *better* than
        // March C−'s.
        let models = parse_fault_list("SAF, TF, CFin, CFid").unwrap();
        let cm_minus = CoverageMatrix::build(&known::march_c_minus(), &models, 3);
        assert!(cm_minus.all_columns_covered());
        let v_minus = cm_minus.non_redundancy();
        let cm_c = CoverageMatrix::build(&known::march_c(), &models, 3);
        assert!(cm_c.all_columns_covered());
        let v_c = cm_c.non_redundancy();
        assert!(v_c.minimum_cover <= v_minus.useful_blocks + 1);
        assert!(
            v_c.minimum_cover <= v_c.useful_blocks,
            "minimum cover can never exceed useful blocks"
        );
    }

    #[test]
    fn uncovered_columns_are_reported() {
        let models = parse_fault_list("CFid<u,0>").unwrap();
        let cm = CoverageMatrix::build(&known::mats(), &models, 3);
        assert!(!cm.all_columns_covered());
        assert!(!cm.non_redundancy().non_redundant);
    }

    #[test]
    fn display_shows_grid() {
        let models = parse_fault_list("SAF").unwrap();
        let cm = CoverageMatrix::build(&known::mats(), &models, 3);
        let s = cm.to_string();
        assert!(s.contains("block@op"), "{s}");
        assert!(s.contains('1'), "{s}");
    }
}
