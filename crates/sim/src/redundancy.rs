//! Operation-deletion redundancy analysis: the operational counterpart of
//! the paper's set-covering check. A March test is *operationally
//! non-redundant* w.r.t. a fault list when no single operation can be
//! removed (keeping the test well-formed) without losing coverage.
//!
//! A simulator-guided compactor built on the same primitive is exposed as
//! [`compact`]: it is **not** part of the paper's flow (the generated
//! tests are already minimal) but serves as an independent check that the
//! generator's outputs cannot be shortened.
//!
//! Every analysis also comes in a `_with` variant taking the coverage
//! oracle as a closure, so alternative verification backends (notably the
//! bit-parallel [`bitsim`](crate::bitsim) sweep) reuse the deletion
//! machinery unchanged.

use crate::engine::{detects, FaultSite};
use marchgen_faults::FaultModel;
use marchgen_march::{MarchElement, MarchTest};
use std::borrow::Cow;

/// Every well-formed test obtained by deleting exactly one operation
/// (empty elements are dropped; read-inconsistent candidates are
/// skipped). Returned with the flat per-cell index of the deleted op.
#[must_use]
pub fn single_deletions(test: &MarchTest) -> Vec<(usize, MarchTest)> {
    let mut out = Vec::new();
    let mut flat = 0usize;
    for (ei, element) in test.elements().iter().enumerate() {
        for oi in 0..element.ops.len() {
            let mut elements: Vec<MarchElement> = test.elements().to_vec();
            elements[ei].ops.remove(oi);
            if elements[ei].ops.is_empty() {
                elements.remove(ei);
            }
            let candidate = MarchTest::new(elements);
            if candidate.check_consistency().is_ok() {
                out.push((flat + oi, candidate));
            }
        }
        flat += element.ops.len();
    }
    out
}

/// The fault sites of every listed model, enumerated once — hoisting
/// this out of the per-candidate loop is what keeps the deletion sweeps
/// allocation-free on the hot path.
fn all_sites(models: &[FaultModel], n: usize) -> Vec<FaultSite> {
    models
        .iter()
        .flat_map(|&m| FaultSite::enumerate(m, n))
        .collect()
}

/// [`redundant_ops`] with a caller-provided coverage oracle.
#[must_use]
pub fn redundant_ops_with(test: &MarchTest, covers: &dyn Fn(&MarchTest) -> bool) -> Vec<usize> {
    single_deletions(test)
        .into_iter()
        .filter(|(_, cand)| covers(cand))
        .map(|(idx, _)| idx)
        .collect()
}

/// The per-cell indices of operations whose deletion keeps full coverage
/// — an empty result is the non-redundancy verdict.
#[must_use]
pub fn redundant_ops(test: &MarchTest, models: &[FaultModel], n: usize) -> Vec<usize> {
    let sites = all_sites(models, n);
    redundant_ops_with(test, &|cand| sites.iter().all(|s| detects(cand, s, n)))
}

/// [`is_non_redundant`] with a caller-provided coverage oracle.
#[must_use]
pub fn is_non_redundant_with(test: &MarchTest, covers: &dyn Fn(&MarchTest) -> bool) -> bool {
    redundant_ops_with(test, covers).is_empty()
}

/// `true` when no single-operation deletion preserves coverage.
#[must_use]
pub fn is_non_redundant(test: &MarchTest, models: &[FaultModel], n: usize) -> bool {
    redundant_ops(test, models, n).is_empty()
}

/// [`compact`] with a caller-provided coverage oracle. Returns
/// [`Cow::Borrowed`] when no operation could be deleted (including when
/// the input does not cover the list to begin with), so the
/// already-minimal common case costs no clone.
#[must_use]
pub fn compact_with<'a>(
    test: &'a MarchTest,
    covers: &dyn Fn(&MarchTest) -> bool,
) -> Cow<'a, MarchTest> {
    if !covers(test) {
        return Cow::Borrowed(test);
    }
    let mut current: Option<MarchTest> = None;
    loop {
        let view = current.as_ref().unwrap_or(test);
        let Some((_, shorter)) = single_deletions(view)
            .into_iter()
            .find(|(_, cand)| covers(cand))
        else {
            return match current {
                Some(owned) => Cow::Owned(owned),
                None => Cow::Borrowed(test),
            };
        };
        current = Some(shorter);
    }
}

/// Simulator-guided compaction: repeatedly deletes any operation whose
/// removal keeps full coverage, until a fixed point. Requires the input
/// to cover the fault list; returns the input unchanged (borrowed)
/// otherwise.
#[must_use]
pub fn compact<'a>(test: &'a MarchTest, models: &[FaultModel], n: usize) -> Cow<'a, MarchTest> {
    let sites = all_sites(models, n);
    compact_with(test, &|cand| sites.iter().all(|s| detects(cand, s, n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::covers_all;
    use marchgen_faults::parse_fault_list;
    use marchgen_march::known;

    #[test]
    fn mats_is_non_redundant_for_saf() {
        let models = parse_fault_list("SAF").unwrap();
        assert!(is_non_redundant(&known::mats(), &models, 3));
    }

    #[test]
    fn march_c_minus_is_redundant_for_saf_alone() {
        // 10n is far more than SAF needs: many deletions survive.
        let models = parse_fault_list("SAF").unwrap();
        let redundant = redundant_ops(&known::march_c_minus(), &models, 3);
        assert!(!redundant.is_empty());
    }

    #[test]
    fn compact_shrinks_oversized_tests() {
        let models = parse_fault_list("SAF").unwrap();
        let oversized = known::march_c_minus();
        let compacted = compact(&oversized, &models, 3);
        assert!(matches!(compacted, Cow::Owned(_)));
        assert!(covers_all(&compacted, &models, 3));
        assert!(
            compacted.complexity() <= 4,
            "SAF needs at most MATS (4n), got {compacted}"
        );
    }

    #[test]
    fn compact_keeps_already_minimal_tests_without_cloning() {
        let models = parse_fault_list("SAF").unwrap();
        let minimal = known::mats();
        let compacted = compact(&minimal, &models, 3);
        assert!(
            matches!(compacted, Cow::Borrowed(_)),
            "an already-minimal test must come back borrowed"
        );
        assert_eq!(compacted.complexity(), known::mats().complexity());
    }

    #[test]
    fn compact_requires_initial_coverage() {
        let models = parse_fault_list("CFid").unwrap();
        let input = known::mats();
        let out = compact(&input, &models, 3);
        assert!(matches!(out, Cow::Borrowed(_)));
        assert_eq!(*out, known::mats());
    }

    #[test]
    fn deletions_stay_well_formed() {
        for (_, cand) in single_deletions(&known::march_b()) {
            assert_eq!(cand.check_consistency(), Ok(()));
        }
    }

    #[test]
    fn with_variants_match_default_oracle() {
        let models = parse_fault_list("SAF, TF").unwrap();
        let test = known::march_c_minus();
        let oracle = |cand: &MarchTest| covers_all(cand, &models, 3);
        assert_eq!(
            redundant_ops_with(&test, &oracle),
            redundant_ops(&test, &models, 3)
        );
        assert_eq!(*compact_with(&test, &oracle), *compact(&test, &models, 3));
    }
}
