//! Operation-deletion redundancy analysis: the operational counterpart of
//! the paper's set-covering check. A March test is *operationally
//! non-redundant* w.r.t. a fault list when no single operation can be
//! removed (keeping the test well-formed) without losing coverage.
//!
//! A simulator-guided compactor built on the same primitive is exposed as
//! [`compact`]: it is **not** part of the paper's flow (the generated
//! tests are already minimal) but serves as an independent check that the
//! generator's outputs cannot be shortened.

use crate::coverage::covers_all;
use marchgen_faults::FaultModel;
use marchgen_march::{MarchElement, MarchTest};

/// Every well-formed test obtained by deleting exactly one operation
/// (empty elements are dropped; read-inconsistent candidates are
/// skipped). Returned with the flat per-cell index of the deleted op.
#[must_use]
pub fn single_deletions(test: &MarchTest) -> Vec<(usize, MarchTest)> {
    let mut out = Vec::new();
    let mut flat = 0usize;
    for (ei, element) in test.elements().iter().enumerate() {
        for oi in 0..element.ops.len() {
            let mut elements: Vec<MarchElement> = test.elements().to_vec();
            elements[ei].ops.remove(oi);
            if elements[ei].ops.is_empty() {
                elements.remove(ei);
            }
            let candidate = MarchTest::new(elements);
            if candidate.check_consistency().is_ok() {
                out.push((flat + oi, candidate));
            }
        }
        flat += element.ops.len();
    }
    out
}

/// The per-cell indices of operations whose deletion keeps full coverage
/// — an empty result is the non-redundancy verdict.
#[must_use]
pub fn redundant_ops(test: &MarchTest, models: &[FaultModel], n: usize) -> Vec<usize> {
    single_deletions(test)
        .into_iter()
        .filter(|(_, cand)| covers_all(cand, models, n))
        .map(|(idx, _)| idx)
        .collect()
}

/// `true` when no single-operation deletion preserves coverage.
#[must_use]
pub fn is_non_redundant(test: &MarchTest, models: &[FaultModel], n: usize) -> bool {
    redundant_ops(test, models, n).is_empty()
}

/// Simulator-guided compaction: repeatedly deletes any operation whose
/// removal keeps full coverage, until a fixed point. Requires the input
/// to cover the fault list; returns the input unchanged otherwise.
#[must_use]
pub fn compact(test: &MarchTest, models: &[FaultModel], n: usize) -> MarchTest {
    if !covers_all(test, models, n) {
        return test.clone();
    }
    let mut current = test.clone();
    loop {
        let Some((_, shorter)) = single_deletions(&current)
            .into_iter()
            .find(|(_, cand)| covers_all(cand, models, n))
        else {
            return current;
        };
        current = shorter;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marchgen_faults::parse_fault_list;
    use marchgen_march::known;

    #[test]
    fn mats_is_non_redundant_for_saf() {
        let models = parse_fault_list("SAF").unwrap();
        assert!(is_non_redundant(&known::mats(), &models, 3));
    }

    #[test]
    fn march_c_minus_is_redundant_for_saf_alone() {
        // 10n is far more than SAF needs: many deletions survive.
        let models = parse_fault_list("SAF").unwrap();
        let redundant = redundant_ops(&known::march_c_minus(), &models, 3);
        assert!(!redundant.is_empty());
    }

    #[test]
    fn compact_shrinks_oversized_tests() {
        let models = parse_fault_list("SAF").unwrap();
        let compacted = compact(&known::march_c_minus(), &models, 3);
        assert!(covers_all(&compacted, &models, 3));
        assert!(
            compacted.complexity() <= 4,
            "SAF needs at most MATS (4n), got {compacted}"
        );
    }

    #[test]
    fn compact_keeps_already_minimal_tests() {
        let models = parse_fault_list("SAF").unwrap();
        let compacted = compact(&known::mats(), &models, 3);
        assert_eq!(compacted.complexity(), known::mats().complexity());
    }

    #[test]
    fn compact_requires_initial_coverage() {
        let models = parse_fault_list("CFid").unwrap();
        let out = compact(&known::mats(), &models, 3);
        assert_eq!(out, known::mats());
    }

    #[test]
    fn deletions_stay_well_formed() {
        for (_, cand) in single_deletions(&known::march_b()) {
            assert_eq!(cand.check_consistency(), Ok(()));
        }
    }
}
