//! Wide-lane fault simulation: **W × 64 scenario lanes per memory
//! word**, with W ∈ {2, 4, 8} picked at runtime from the scenario count.
//!
//! # Why wider than [`crate::bitsim`]
//!
//! The 64-lane engine already transposes the scalar scenario sweep into
//! bitwise formulas, but a pair-fault model on an 8-cell memory is
//! 56 sites × 8 power-up patterns = 448 scenario lanes — seven separate
//! 64-lane batches, each re-running the full March control flow and the
//! per-rule interpreter loop. This module generalizes the same
//! per-address mask layout to `[u64; W]` **lane words**: one March
//! execution advances up to 512 scenarios, and the rule-table overhead
//! (shared control flow, rule dispatch, address iteration) is amortized
//! over W machine words at a time. All lane-word operations are written
//! as straight-line per-word loops over fixed-size arrays, which the
//! compiler auto-vectorizes to SSE2/AVX2 — std only, no nightly
//! `portable_simd`.
//!
//! # Layout and semantics
//!
//! Identical to [`crate::bitsim`], word-for-word: lane `l` of a block is
//! bit `l % 64` of word `l / 64`; lanes are enumerated site-major, then
//! power-up pattern, then latch value (the scalar engine's scenario
//! order, shared via [`crate::bitsim`]'s lane enumeration); fault
//! semantics are a generic interpretation of the model's
//! [`FaultBehavior`] rule table with **no per-variant matches** (the
//! `fault-layer-lint` CI job keeps it that way); a site is **detected**
//! only when every one of its lanes mismatches under every `⇕`
//! resolution vector.
//!
//! The width is chosen per sweep by [`width_for`]: ≤ 128 lanes run at
//! W = 2, ≤ 256 at W = 4, everything larger at W = 8 — so small
//! workloads don't drag padding words through the interpreter.
//!
//! # Sharded verification
//!
//! [`shard_plan`] cuts a multi-model verification sweep into
//! deterministic units — per fault model, contiguous site ranges sized
//! to at most one 512-lane block — that
//! [`WideSimVerifier`](crate::verify::WideSimVerifier) fans out across
//! worker threads. The plan depends only on the fault list and memory
//! size, never on the worker count, so the per-shard timing vector in
//! `Diagnostics` has a reproducible length and the merged report is
//! byte-identical at any parallelism.

use crate::bitsim::{lanes_for, Lane};
use crate::coverage::{CoverageReport, ModelCoverage};
use crate::engine::{latch_values, power_up_patterns, resolution_vectors, FaultSite};
use crate::memory::SiteCells;
use marchgen_faults::{
    lowering, FaultBehavior, FaultModel, ReadOutput, Role, StoreEffect, WriteEffect,
};
use marchgen_march::{Direction, MarchOp, MarchTest};
use marchgen_model::Bit;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// Target scenario lanes per verification shard: one full-width block.
const SHARD_LANES: usize = 64 * 8;

/// A `W`-word block of scenario lanes: lane `l` is bit `l % 64` of word
/// `l / 64`. All operations are per-word loops over the fixed-size
/// array — the shape the compiler auto-vectorizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LaneWord<const W: usize>([u64; W]);

impl<const W: usize> LaneWord<W> {
    const ZERO: LaneWord<W> = LaneWord([0; W]);
    const ONES: LaneWord<W> = LaneWord([!0; W]);

    /// Broadcast of a scalar bit across all `W × 64` lanes.
    fn splat(bit: Bit) -> LaneWord<W> {
        match bit {
            Bit::Zero => Self::ZERO,
            Bit::One => Self::ONES,
        }
    }

    /// The mask with exactly the first `n` lanes set.
    fn first_n(n: usize) -> LaneWord<W> {
        let mut out = [0u64; W];
        for (k, word) in out.iter_mut().enumerate() {
            let lo = k * 64;
            *word = if n >= lo + 64 {
                !0
            } else if n > lo {
                (1u64 << (n - lo)) - 1
            } else {
                0
            };
        }
        LaneWord(out)
    }

    fn set(&mut self, lane: usize) {
        self.0[lane / 64] |= 1u64 << (lane % 64);
    }

    fn get(self, lane: usize) -> bool {
        self.0[lane / 64] & (1u64 << (lane % 64)) != 0
    }

    fn is_zero(self) -> bool {
        let mut any = 0u64;
        for k in 0..W {
            any |= self.0[k];
        }
        any == 0
    }
}

impl<const W: usize> BitAnd for LaneWord<W> {
    type Output = LaneWord<W>;
    fn bitand(mut self, rhs: LaneWord<W>) -> LaneWord<W> {
        for k in 0..W {
            self.0[k] &= rhs.0[k];
        }
        self
    }
}

impl<const W: usize> BitOr for LaneWord<W> {
    type Output = LaneWord<W>;
    fn bitor(mut self, rhs: LaneWord<W>) -> LaneWord<W> {
        for k in 0..W {
            self.0[k] |= rhs.0[k];
        }
        self
    }
}

impl<const W: usize> BitXor for LaneWord<W> {
    type Output = LaneWord<W>;
    fn bitxor(mut self, rhs: LaneWord<W>) -> LaneWord<W> {
        for k in 0..W {
            self.0[k] ^= rhs.0[k];
        }
        self
    }
}

impl<const W: usize> Not for LaneWord<W> {
    type Output = LaneWord<W>;
    fn not(mut self) -> LaneWord<W> {
        for k in 0..W {
            self.0[k] = !self.0[k];
        }
        self
    }
}

impl<const W: usize> BitAndAssign for LaneWord<W> {
    fn bitand_assign(&mut self, rhs: LaneWord<W>) {
        *self = *self & rhs;
    }
}

impl<const W: usize> BitOrAssign for LaneWord<W> {
    fn bitor_assign(&mut self, rhs: LaneWord<W>) {
        *self = *self | rhs;
    }
}

impl<const W: usize> BitXorAssign for LaneWord<W> {
    fn bitxor_assign(&mut self, rhs: LaneWord<W>) {
        *self = *self ^ rhs;
    }
}

/// A packed batch of up to `W × 64` scenario lanes sharing one fault
/// model — [`crate::bitsim`]'s `LaneBatch` with every `u64` widened to a
/// [`LaneWord`]. Like it, the batch is a generic interpreter over the
/// model's [`FaultBehavior`] rule table: fault semantics are lane-word
/// formulas derived from the rules, with no per-variant matches.
struct WideBatch<const W: usize> {
    n: usize,
    behavior: FaultBehavior,
    /// Post-power-up packed contents, restored on every [`Self::reset`].
    init: Vec<LaneWord<W>>,
    latch_init: LaneWord<W>,
    /// Per address: lanes whose single-cell site is that address.
    single_mask: Vec<LaneWord<W>>,
    /// Per address: lanes whose aggressor is that address.
    aggr_mask: Vec<LaneWord<W>>,
    /// Per aggressor address: victim addresses with their lane masks.
    victims_of: Vec<Vec<(usize, LaneWord<W>)>>,
    /// Distinct (aggressor address, lane mask) groups — CFst condition.
    aggr_groups: Vec<(usize, LaneWord<W>)>,
    /// Distinct (victim address, lane mask) groups — CFst assignment.
    vict_groups: Vec<(usize, LaneWord<W>)>,
    // Execution state.
    cells: Vec<LaneWord<W>>,
    latch: LaneWord<W>,
    /// Operation history for dynamic faults: shared control flow, so one
    /// scalar slot serves every lane (see `LaneBatch::last_write`).
    last_write: Option<(usize, Bit)>,
    mismatch: LaneWord<W>,
}

impl<const W: usize> WideBatch<W> {
    /// Packs `lanes` (at most `W × 64`) into one batch.
    fn new(model: FaultModel, n: usize, lanes: &[Lane]) -> WideBatch<W> {
        assert!(lanes.len() <= 64 * W, "a batch holds at most 64·W lanes");
        let mut single_mask = vec![LaneWord::<W>::ZERO; n];
        let mut aggr_mask = vec![LaneWord::<W>::ZERO; n];
        let mut victims_of: Vec<Vec<(usize, LaneWord<W>)>> = vec![Vec::new(); n];
        let mut init = vec![LaneWord::<W>::ZERO; n];
        let mut latch_init = LaneWord::<W>::ZERO;
        for (l, lane) in lanes.iter().enumerate() {
            match lane.cells {
                SiteCells::Single(c) => single_mask[c].set(l),
                SiteCells::Pair { aggressor, victim } => {
                    aggr_mask[aggressor].set(l);
                    match victims_of[aggressor].iter_mut().find(|(v, _)| *v == victim) {
                        Some((_, mask)) => mask.set(l),
                        None => {
                            let mut mask = LaneWord::<W>::ZERO;
                            mask.set(l);
                            victims_of[aggressor].push((victim, mask));
                        }
                    }
                }
            }
            for (addr, &value) in lane.pattern.iter().enumerate() {
                if value == Bit::One {
                    init[addr].set(l);
                }
            }
            if lane.latch == Bit::One {
                latch_init.set(l);
            }
        }
        let aggr_groups: Vec<(usize, LaneWord<W>)> = aggr_mask
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_zero())
            .map(|(a, &m)| (a, m))
            .collect();
        let mut vict_groups: Vec<(usize, LaneWord<W>)> = Vec::new();
        for groups in &victims_of {
            for &(v, m) in groups {
                match vict_groups.iter_mut().find(|(addr, _)| *addr == v) {
                    Some((_, mask)) => *mask |= m,
                    None => vict_groups.push((v, m)),
                }
            }
        }
        let mut batch = WideBatch {
            n,
            behavior: lowering::behavior(model),
            init,
            latch_init,
            single_mask,
            aggr_mask,
            victims_of,
            aggr_groups,
            vict_groups,
            cells: vec![LaneWord::<W>::ZERO; n],
            latch: LaneWord::<W>::ZERO,
            last_write: None,
            mismatch: LaneWord::<W>::ZERO,
        };
        // Apply power-up consequences once, into the restorable image
        // (mirrors `FaultyMemory::power_up`).
        batch.cells.copy_from_slice(&batch.init);
        if let Some(v) = batch.behavior.powerup_force {
            let vb = LaneWord::<W>::splat(v);
            for addr in 0..n {
                let sm = batch.single_mask[addr];
                batch.cells[addr] = (batch.cells[addr] & !sm) | (vb & sm);
            }
        }
        batch.apply_invariant();
        batch.init.copy_from_slice(&batch.cells);
        batch
    }

    /// Restores the power-up state for a fresh scenario execution.
    fn reset(&mut self) {
        self.cells.copy_from_slice(&self.init);
        self.latch = self.latch_init;
        self.last_write = None;
        self.mismatch = LaneWord::<W>::ZERO;
    }

    /// State coupling is a *condition*, not an event: enforce the
    /// behaviour's invariant after every operation, lane-wise.
    fn apply_invariant(&mut self) {
        if let Some(inv) = self.behavior.invariant {
            let mut cond = LaneWord::<W>::ZERO;
            for &(a, m) in &self.aggr_groups {
                let held = if inv.when == Bit::One {
                    self.cells[a]
                } else {
                    !self.cells[a]
                };
                cond |= held & m;
            }
            for &(v, m) in &self.vict_groups {
                let active = cond & m;
                self.cells[v] = if inv.force == Bit::One {
                    self.cells[v] | active
                } else {
                    self.cells[v] & !active
                };
            }
        }
    }

    /// Lanes at which `role` resolves to `addr`.
    fn role_mask(&self, role: Role, addr: usize) -> LaneWord<W> {
        match role {
            Role::Single => self.single_mask[addr],
            Role::Aggressor => self.aggr_mask[addr],
        }
    }

    /// Lanes whose word `w` matches an optional bit trigger.
    fn value_held(w: LaneWord<W>, trigger: Option<Bit>) -> LaneWord<W> {
        match trigger {
            None => LaneWord::<W>::ONES,
            Some(Bit::One) => w,
            Some(Bit::Zero) => !w,
        }
    }

    /// Lane-parallel `write(addr, value)`: a generic interpretation of
    /// the behaviour's write rules (same two-pass order as
    /// `FaultyMemory::write`).
    fn write(&mut self, addr: usize, value: Bit) {
        let vb = LaneWord::<W>::splat(value);
        let cur = self.cells[addr];
        // Pass 1: rules on the written cell itself (block / force).
        let mut blocked = LaneWord::<W>::ZERO;
        let mut force_mask = LaneWord::<W>::ZERO;
        let mut force_val = LaneWord::<W>::ZERO;
        for ri in 0..self.behavior.write_rules.len() {
            let rule = self.behavior.write_rules[ri];
            if rule.value.is_some_and(|v| v != value) {
                continue;
            }
            let armed = self.role_mask(rule.at, addr) & Self::value_held(cur, rule.pre);
            match rule.effect {
                WriteEffect::Block => blocked |= armed,
                WriteEffect::Force(v) => {
                    force_mask |= armed;
                    if v == Bit::One {
                        force_val |= armed;
                    } else {
                        force_val &= !armed;
                    }
                }
                WriteEffect::CopyToVictim
                | WriteEffect::FlipVictim
                | WriteEffect::ForceVictim(_) => {}
            }
        }
        self.cells[addr] =
            (cur & blocked) | (force_val & force_mask & !blocked) | (vb & !blocked & !force_mask);
        // Pass 2: coupled-victim effects, armed on the pre-write content.
        for ri in 0..self.behavior.write_rules.len() {
            let rule = self.behavior.write_rules[ri];
            if rule.value.is_some_and(|v| v != value) {
                continue;
            }
            let armed = self.role_mask(rule.at, addr) & Self::value_held(cur, rule.pre);
            if armed.is_zero() {
                continue;
            }
            match rule.effect {
                WriteEffect::CopyToVictim => {
                    for k in 0..self.victims_of[addr].len() {
                        let (v, m) = self.victims_of[addr][k];
                        let hit = m & armed;
                        self.cells[v] = (self.cells[v] & !hit) | (vb & hit);
                    }
                }
                WriteEffect::FlipVictim => {
                    for k in 0..self.victims_of[addr].len() {
                        let (v, m) = self.victims_of[addr][k];
                        self.cells[v] ^= m & armed;
                    }
                }
                WriteEffect::ForceVictim(f) => {
                    for k in 0..self.victims_of[addr].len() {
                        let (v, m) = self.victims_of[addr][k];
                        let forced = m & armed;
                        self.cells[v] = if f == Bit::One {
                            self.cells[v] | forced
                        } else {
                            self.cells[v] & !forced
                        };
                    }
                }
                WriteEffect::Block | WriteEffect::Force(_) => {}
            }
        }
        self.last_write = Some((addr, value));
        self.apply_invariant();
    }

    /// Lane-parallel `read(addr)`: a generic interpretation of the
    /// behaviour's read rules (first armed rule wins per lane),
    /// returning the per-lane device outputs.
    fn read(&mut self, addr: usize) -> LaneWord<W> {
        let cur = self.cells[addr];
        let mut out = cur;
        let mut taken = LaneWord::<W>::ZERO;
        for ri in 0..self.behavior.read_rules.len() {
            let rule = self.behavior.read_rules[ri];
            let dyn_ok = match rule.after_write {
                None => LaneWord::<W>::ONES,
                Some(x) if self.last_write == Some((addr, x)) => LaneWord::<W>::ONES,
                Some(_) => LaneWord::<W>::ZERO,
            };
            let m =
                self.role_mask(rule.at, addr) & Self::value_held(cur, rule.holds) & dyn_ok & !taken;
            if m.is_zero() {
                continue;
            }
            taken |= m;
            match rule.output {
                ReadOutput::Stored => {}
                ReadOutput::Complement => out = (out & !m) | (!cur & m),
                ReadOutput::Latch => out = (out & !m) | (self.latch & m),
                ReadOutput::Victim => {
                    out &= !m;
                    for k in 0..self.victims_of[addr].len() {
                        let (v, vm) = self.victims_of[addr][k];
                        out |= self.cells[v] & vm & m;
                    }
                }
            }
            if rule.store == StoreEffect::Flip {
                self.cells[addr] ^= m;
            }
        }
        self.last_write = None;
        self.latch = out;
        self.apply_invariant();
        out
    }

    /// Lane-parallel wait period (mirrors `FaultyMemory::delay`).
    fn delay(&mut self) {
        if let Some(x) = self.behavior.delay_flip {
            for addr in 0..self.n {
                let sm = self.single_mask[addr];
                if sm.is_zero() {
                    continue;
                }
                let cur = self.cells[addr];
                let holds_x = if x == Bit::One { cur } else { !cur };
                self.cells[addr] = cur ^ (sm & holds_x);
            }
        }
        self.last_write = None;
        self.apply_invariant();
    }

    /// Executes `test` once across all lanes under one `⇕` resolution
    /// vector, returning the lanes that produced at least one
    /// mismatching read. Control flow mirrors [`crate::engine::run`].
    fn run(&mut self, test: &MarchTest, resolution: &[Direction]) -> LaneWord<W> {
        self.reset();
        let mut res_iter = resolution.iter();
        for element in test.elements() {
            let dir = match element.direction {
                Direction::Any => *res_iter.next().expect("a resolution per ⇕ element"),
                d => d,
            };
            if element.ops.len() == 1 && element.ops[0] == MarchOp::Delay {
                self.delay();
                continue;
            }
            match dir {
                Direction::Down => {
                    for addr in (0..self.n).rev() {
                        self.visit(addr, &element.ops);
                    }
                }
                _ => {
                    for addr in 0..self.n {
                        self.visit(addr, &element.ops);
                    }
                }
            }
        }
        self.mismatch
    }

    fn visit(&mut self, addr: usize, ops: &[MarchOp]) {
        for &op in ops {
            match op {
                MarchOp::Write(d) => self.write(addr, d),
                MarchOp::Delay => self.delay(),
                MarchOp::Read(expected) => {
                    let got = self.read(addr);
                    self.mismatch |= got ^ LaneWord::<W>::splat(expected);
                }
            }
        }
    }
}

/// Runs the packed sweep at a fixed width, returning per-site detection
/// verdicts (in [`FaultSite::enumerate`] order). With `early_exit`, the
/// sweep stops at the first undetected scenario — only the boolean
/// "every site detected" remains meaningful then.
fn sweep_lanes<const W: usize>(
    test: &MarchTest,
    model: FaultModel,
    n: usize,
    site_count: usize,
    lanes: &[Lane],
    early_exit: bool,
) -> Vec<bool> {
    let resolutions = resolution_vectors(test);
    let mut detected = vec![true; site_count];
    for chunk in lanes.chunks(64 * W) {
        let full = LaneWord::<W>::first_n(chunk.len());
        let mut batch = WideBatch::<W>::new(model, n, chunk);
        let mut all = full;
        for resolution in &resolutions {
            all &= batch.run(test, resolution);
            // Some lane already has a clean scenario: its site can never
            // reach guaranteed detection.
            if early_exit && all != full {
                for (l, lane) in chunk.iter().enumerate() {
                    if !all.get(l) {
                        detected[lane.site_index] = false;
                    }
                }
                return detected;
            }
        }
        for (l, lane) in chunk.iter().enumerate() {
            if !all.get(l) {
                detected[lane.site_index] = false;
            }
        }
    }
    detected
}

/// The runtime-selected lane-block width for a sweep of `lanes`
/// scenarios: W = 2 up to 128 lanes, W = 4 up to 256, W = 8 beyond —
/// the smallest supported width whose single block fits the workload,
/// so narrow sweeps don't pay for padding words.
#[must_use]
pub fn width_for(lanes: usize) -> usize {
    if lanes <= 128 {
        2
    } else if lanes <= 256 {
        4
    } else {
        8
    }
}

/// Auto-width sweep over an explicit site list (no early exit) — the
/// work unit of one verification shard. Verdicts are in `sites` order
/// and independent of the chosen width.
#[must_use]
pub fn site_verdicts(
    test: &MarchTest,
    model: FaultModel,
    n: usize,
    sites: &[FaultSite],
) -> Vec<bool> {
    let lanes = lanes_for(sites, n);
    match width_for(lanes.len()) {
        2 => sweep_lanes::<2>(test, model, n, sites.len(), &lanes, false),
        4 => sweep_lanes::<4>(test, model, n, sites.len(), &lanes, false),
        _ => sweep_lanes::<8>(test, model, n, sites.len(), &lanes, false),
    }
}

fn sweep(
    test: &MarchTest,
    model: FaultModel,
    n: usize,
    sites: &[FaultSite],
    early_exit: bool,
) -> Vec<bool> {
    let lanes = lanes_for(sites, n);
    match width_for(lanes.len()) {
        2 => sweep_lanes::<2>(test, model, n, sites.len(), &lanes, early_exit),
        4 => sweep_lanes::<4>(test, model, n, sites.len(), &lanes, early_exit),
        _ => sweep_lanes::<8>(test, model, n, sites.len(), &lanes, early_exit),
    }
}

/// Wide-lane equivalent of [`crate::coverage::model_coverage`], at the
/// auto-selected width.
#[must_use]
pub fn model_coverage(test: &MarchTest, model: FaultModel, n: usize) -> ModelCoverage {
    let sites = FaultSite::enumerate(model, n);
    let detected = sweep(test, model, n, &sites, false);
    coverage_from_verdicts(model, &sites, &detected)
}

/// [`model_coverage`] pinned to a specific width `W` — the differential
/// suite runs the full matrix at every supported width, so lane-packing
/// bugs cannot hide behind the auto selection.
#[must_use]
pub fn model_coverage_w<const W: usize>(
    test: &MarchTest,
    model: FaultModel,
    n: usize,
) -> ModelCoverage {
    let sites = FaultSite::enumerate(model, n);
    let lanes = lanes_for(&sites, n);
    let detected = sweep_lanes::<W>(test, model, n, sites.len(), &lanes, false);
    coverage_from_verdicts(model, &sites, &detected)
}

/// Assembles a [`ModelCoverage`] from per-site verdicts in enumeration
/// order — the merge step shared by the inline and sharded sweeps.
#[must_use]
pub fn coverage_from_verdicts(
    model: FaultModel,
    sites: &[FaultSite],
    detected: &[bool],
) -> ModelCoverage {
    let escapes: Vec<FaultSite> = sites
        .iter()
        .zip(detected)
        .filter(|&(_, &ok)| !ok)
        .map(|(&site, _)| site)
        .collect();
    ModelCoverage {
        model,
        total_sites: sites.len(),
        detected_sites: sites.len() - escapes.len(),
        escapes,
    }
}

/// Wide-lane equivalent of [`crate::coverage::coverage_report`].
#[must_use]
pub fn coverage_report(test: &MarchTest, models: &[FaultModel], n: usize) -> CoverageReport {
    CoverageReport {
        models: models.iter().map(|&m| model_coverage(test, m, n)).collect(),
        memory_size: n,
    }
}

/// [`coverage_report`] pinned to width `W` (see [`model_coverage_w`]).
#[must_use]
pub fn coverage_report_w<const W: usize>(
    test: &MarchTest,
    models: &[FaultModel],
    n: usize,
) -> CoverageReport {
    CoverageReport {
        models: models
            .iter()
            .map(|&m| model_coverage_w::<W>(test, m, n))
            .collect(),
        memory_size: n,
    }
}

/// Wide-lane equivalent of [`crate::coverage::covers_all`], with early
/// exit on the first escaped scenario — the compaction fast path.
#[must_use]
pub fn covers_all(test: &MarchTest, models: &[FaultModel], n: usize) -> bool {
    covers_all_sites(test, &crate::bitsim::enumerate_sites(models, n), n)
}

/// [`covers_all`] over pre-enumerated site lists (see
/// [`crate::bitsim::enumerate_sites`]) — the same hoist the other
/// backends apply for the compaction deletion loop.
#[must_use]
pub fn covers_all_sites(
    test: &MarchTest,
    site_lists: &[(FaultModel, Vec<FaultSite>)],
    n: usize,
) -> bool {
    site_lists
        .iter()
        .all(|(model, sites)| sweep(test, *model, n, sites, true).iter().all(|&ok| ok))
}

/// Per-resolution, per-lane mismatch verdicts at width `W` — the wide
/// engine's side of the lane-level differential (see
/// [`crate::bitsim::lane_mismatches`] and
/// [`crate::engine::lane_mismatches`] for the 64-lane and scalar
/// counterparts; all three must agree on every single lane).
#[must_use]
pub fn lane_mismatches_w<const W: usize>(
    test: &MarchTest,
    model: FaultModel,
    n: usize,
) -> Vec<Vec<bool>> {
    let sites = FaultSite::enumerate(model, n);
    let lanes = lanes_for(&sites, n);
    let resolutions = resolution_vectors(test);
    let mut out = vec![vec![false; lanes.len()]; resolutions.len()];
    let mut base = 0usize;
    for chunk in lanes.chunks(64 * W) {
        let mut batch = WideBatch::<W>::new(model, n, chunk);
        for (ri, resolution) in resolutions.iter().enumerate() {
            let mismatch = batch.run(test, resolution);
            for l in 0..chunk.len() {
                out[ri][base + l] = mismatch.get(l);
            }
        }
        base += chunk.len();
    }
    out
}

/// Scenario lanes one instance sweep of `model` enumerates on an
/// `n`-cell memory (sites × power-up patterns × latch values) — counted
/// without materializing the lanes.
#[must_use]
pub fn model_lanes(model: FaultModel, n: usize) -> usize {
    FaultSite::enumerate(model, n)
        .iter()
        .map(|site| power_up_patterns(site, n).len() * latch_values(site).len())
        .sum()
}

/// The largest per-model scenario lane count across `models` — the
/// quantity the `auto` verifier choice keys on: ≤ 64 lanes fit one
/// bitsim batch, anything wider wants this engine.
#[must_use]
pub fn max_model_lanes(models: &[FaultModel], n: usize) -> usize {
    models.iter().map(|&m| model_lanes(m, n)).max().unwrap_or(0)
}

/// One unit of parallel verification work: a contiguous site range of
/// one fault model, sized by [`shard_plan`] to at most one full-width
/// lane block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyShard {
    /// Index into the fault list the plan was built over.
    pub model_index: usize,
    /// Range into that model's [`FaultSite::enumerate`] site list.
    pub sites: std::ops::Range<usize>,
}

/// The deterministic shard plan for a verification sweep over `models`
/// on an `n`-cell memory: per model, contiguous site ranges whose lane
/// counts stay within one 512-lane block. The plan depends only on the
/// fault list and the memory size — never on the worker count — so the
/// per-shard timing vector recorded in `Diagnostics` has a reproducible
/// length, and concatenating shard verdicts in plan order reproduces
/// the unsharded sweep exactly.
#[must_use]
pub fn shard_plan(models: &[FaultModel], n: usize) -> Vec<VerifyShard> {
    let mut plan = Vec::new();
    for (model_index, &model) in models.iter().enumerate() {
        let sites = FaultSite::enumerate(model, n);
        let mut lo = 0usize;
        let mut lanes = 0usize;
        for (k, site) in sites.iter().enumerate() {
            let site_lanes = power_up_patterns(site, n).len() * latch_values(site).len();
            if lanes + site_lanes > SHARD_LANES && lanes > 0 {
                plan.push(VerifyShard {
                    model_index,
                    sites: lo..k,
                });
                lo = k;
                lanes = 0;
            }
            lanes += site_lanes;
        }
        if lo < sites.len() || sites.is_empty() {
            plan.push(VerifyShard {
                model_index,
                sites: lo..sites.len(),
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bitsim, coverage};
    use marchgen_faults::parse_fault_list;
    use marchgen_march::known;
    use marchgen_testkit::run_cases;

    #[test]
    fn lane_word_mask_primitives() {
        assert_eq!(LaneWord::<2>::splat(Bit::Zero), LaneWord::<2>::ZERO);
        assert_eq!(LaneWord::<2>::splat(Bit::One), LaneWord::<2>::ONES);
        assert_eq!(LaneWord::<2>::first_n(128), LaneWord::<2>::ONES);
        assert_eq!(LaneWord::<4>::first_n(0), LaneWord::<4>::ZERO);
        let m = LaneWord::<2>::first_n(70);
        assert_eq!(m.0, [!0u64, (1 << 6) - 1]);
        for lane in [0usize, 63, 64, 69] {
            assert!(m.get(lane));
        }
        for lane in [70usize, 127] {
            assert!(!m.get(lane));
        }
        let mut set = LaneWord::<8>::ZERO;
        set.set(300);
        assert!(set.get(300));
        assert!(!(set & !set).get(300));
        assert!((set | !set) == LaneWord::<8>::ONES);
    }

    #[test]
    fn width_selection_by_lane_count() {
        assert_eq!(width_for(1), 2);
        assert_eq!(width_for(128), 2);
        assert_eq!(width_for(129), 4);
        assert_eq!(width_for(256), 4);
        assert_eq!(width_for(257), 8);
        assert_eq!(width_for(448), 8);
    }

    #[test]
    fn matches_scalar_and_bitsim_on_classical_claims() {
        let n = 4;
        for (list, test) in [
            ("SAF, TF", known::mats_plus_plus()),
            ("SAF, TF, ADF, CFin, CFid, CFst", known::march_c_minus()),
            ("SAF, TF, SOF, CFin, DRF", known::march_g()),
            ("RDF, DRDF, IRF", known::march_ss()),
        ] {
            let models = parse_fault_list(list).unwrap();
            let scalar = coverage::coverage_report(&test, &models, n);
            assert_eq!(coverage_report(&test, &models, n), scalar, "{list}");
            assert_eq!(bitsim::coverage_report(&test, &models, n), scalar, "{list}");
            assert!(covers_all(&test, &models, n));
        }
    }

    #[test]
    fn matches_scalar_on_gaps_including_escape_lists() {
        let n = 4;
        for (list, test) in [
            ("TF", known::mats()),
            ("CFid", known::march_x()),
            ("SOF", known::march_c_minus()),
            ("DRF", known::march_c_minus()),
        ] {
            let models = parse_fault_list(list).unwrap();
            let scalar = coverage::coverage_report(&test, &models, n);
            let packed = coverage_report(&test, &models, n);
            assert_eq!(packed, scalar, "{list}");
            assert!(!packed.complete());
            assert!(!covers_all(&test, &models, n));
        }
    }

    #[test]
    fn multi_block_sweep_matches_narrow_widths() {
        // n = 8 pair faults: 56 sites × 8 patterns = 448 lanes — one
        // W = 8 block, two W = 4 blocks, four W = 2 blocks.
        let n = 8;
        let models = parse_fault_list("CFin<u>").unwrap();
        let test = known::march_c_minus();
        let scalar = coverage::coverage_report(&test, &models, n);
        assert_eq!(coverage_report_w::<2>(&test, &models, n), scalar);
        assert_eq!(coverage_report_w::<4>(&test, &models, n), scalar);
        assert_eq!(coverage_report_w::<8>(&test, &models, n), scalar);
        assert_eq!(coverage_report(&test, &models, n), scalar);
    }

    /// Lane-packing invariant: every scenario lane lands in exactly one
    /// role mask — per address, single/aggressor masks partition the
    /// packed lanes, and victim groups tile their aggressor's mask.
    #[test]
    fn lane_packing_masks_partition_scenarios() {
        let catalog = FaultModel::all_extended();
        run_cases("lane-packing partition", 32, |rng| {
            let n = rng.range(2, 7);
            let model = *rng.pick(&catalog);
            let sites = FaultSite::enumerate(model, n);
            // A random contiguous site group, as the shard planner cuts.
            let lo = rng.range(0, sites.len());
            let hi = rng.range(lo + 1, sites.len() + 1);
            let lanes = lanes_for(&sites[lo..hi], n);
            let batch = WideBatch::<4>::new(model, n, &lanes);
            let full = LaneWord::<4>::first_n(lanes.len());
            let mut union = LaneWord::<4>::ZERO;
            for addr in 0..n {
                for other in 0..n {
                    if other != addr {
                        assert!(
                            (batch.single_mask[addr] & batch.single_mask[other]).is_zero(),
                            "single masks overlap at {addr}/{other}"
                        );
                        assert!(
                            (batch.aggr_mask[addr] & batch.aggr_mask[other]).is_zero(),
                            "aggressor masks overlap at {addr}/{other}"
                        );
                    }
                }
                assert!(
                    (batch.single_mask[addr] & batch.aggr_mask[addr]).is_zero(),
                    "a lane is both single and aggressor at {addr}"
                );
                union |= batch.single_mask[addr] | batch.aggr_mask[addr];
                // Victim groups tile the aggressor mask exactly.
                let mut victims = LaneWord::<4>::ZERO;
                for (k, &(_, m)) in batch.victims_of[addr].iter().enumerate() {
                    for &(_, other) in &batch.victims_of[addr][..k] {
                        assert!((m & other).is_zero(), "victim groups overlap at {addr}");
                    }
                    victims |= m;
                }
                if !batch.aggr_mask[addr].is_zero() {
                    assert_eq!(
                        victims, batch.aggr_mask[addr],
                        "victims ≠ aggressors at {addr}"
                    );
                } else {
                    assert!(victims.is_zero());
                }
            }
            assert_eq!(
                union, full,
                "every scenario in exactly one lane, no padding"
            );
        });
    }

    /// Padding lanes are inert: running a consistent test over a
    /// partially filled block never raises a mismatch above the packed
    /// lane count.
    #[test]
    fn padding_lanes_stay_inert() {
        let catalog = FaultModel::all_extended();
        run_cases("padding lanes inert", 24, |rng| {
            let n = rng.range(2, 6);
            let model = *rng.pick(&catalog);
            let sites = FaultSite::enumerate(model, n);
            let take = rng.range(1, sites.len() + 1);
            let lanes = lanes_for(&sites[..take], n);
            let full = LaneWord::<8>::first_n(lanes.len());
            let mut batch = WideBatch::<8>::new(model, n, &lanes);
            let test = known::march_c_minus();
            for resolution in resolution_vectors(&test) {
                let mismatch = batch.run(&test, &resolution);
                assert!(
                    (mismatch & !full).is_zero(),
                    "padding lanes mismatched for {model} at n={n}"
                );
            }
        });
    }

    /// The shard plan covers every site of every model exactly once, in
    /// order, independent of anything but the fault list and memory
    /// size.
    #[test]
    fn shard_plan_partitions_every_model() {
        for (list, n) in [
            ("SAF, TF", 4usize),
            ("CFin, CFid, CFst", 8),
            ("SAF, CFin", 12),
        ] {
            let models = parse_fault_list(list).unwrap();
            let plan = shard_plan(&models, n);
            for (model_index, &model) in models.iter().enumerate() {
                let sites = FaultSite::enumerate(model, n);
                let ranges: Vec<_> = plan
                    .iter()
                    .filter(|s| s.model_index == model_index)
                    .collect();
                assert!(!ranges.is_empty(), "{list}: model {model} unplanned");
                assert_eq!(ranges[0].sites.start, 0);
                assert_eq!(ranges.last().unwrap().sites.end, sites.len());
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].sites.end, pair[1].sites.start, "contiguous");
                }
                for shard in &ranges {
                    let lanes: usize = sites[shard.sites.clone()]
                        .iter()
                        .map(|s| power_up_patterns(s, n).len() * latch_values(s).len())
                        .sum();
                    assert!(lanes <= SHARD_LANES, "{list}: shard over capacity");
                }
            }
            // Sharded verdicts concatenated in plan order ≡ unsharded.
            let test = known::march_c_minus();
            for (model_index, &model) in models.iter().enumerate() {
                let sites = FaultSite::enumerate(model, n);
                let whole = site_verdicts(&test, model, n, &sites);
                let mut stitched = Vec::new();
                for shard in plan.iter().filter(|s| s.model_index == model_index) {
                    stitched.extend(site_verdicts(&test, model, n, &sites[shard.sites.clone()]));
                }
                assert_eq!(stitched, whole, "{list} × {model} at n={n}");
            }
        }
    }

    #[test]
    fn lane_counts_match_materialized_enumeration() {
        for n in [2usize, 4, 8] {
            for model in FaultModel::all_extended() {
                let sites = FaultSite::enumerate(model, n);
                assert_eq!(
                    model_lanes(model, n),
                    lanes_for(&sites, n).len(),
                    "{model} at n={n}"
                );
            }
        }
    }
}
